"""Setuptools shim.

The offline build environment has no ``wheel`` package, so PEP 660
editable installs cannot build; this shim lets ``pip install -e .`` fall
back to the legacy ``setup.py develop`` path. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
