#!/usr/bin/env python3
"""Backhaul budget: compute, compress or ship? (paper Sec. 6).

Renders one second of duty-cycled three-technology traffic and accounts
the uplink bits for three gateway strategies:

1. ship the raw 8-bit I/Q stream (the strawman: 16 Mbit/s, always);
2. detect-and-ship 2x-max-frame segments (GalioT's design);
3. detect, requantize and zlib the segments (the Sec.-6 refinement);

then pushes strategy 3 through a modelled 10 Mbit/s home uplink and
reports utilization and per-segment delay.

Run:  python examples/backhaul_budget.py
"""

import numpy as np

from repro.gateway import (
    BackhaulLink,
    GalioTGateway,
    SegmentCodec,
)
from repro.net import Device, poisson_scene
from repro.phy import create_modem

FS = 1e6


def main() -> None:
    rng = np.random.default_rng(3)
    modems = [create_modem(name) for name in ("lora", "xbee", "zwave")]
    devices = [
        Device(
            device_id=i,
            technology=m.name,
            modem=m,
            mean_interval_s=0.5,
            payload_range=(8, 16),
            snr_db=12.0,
        )
        for i, m in enumerate(modems)
    ]
    capture, truth = poisson_scene(devices, FS, duration_s=1.0, rng=rng)
    print(f"scene: {len(truth.packets)} packets in 1.0 s of 1 MHz capture\n")

    raw_bits = len(capture) * 2 * 8
    print(f"1) ship raw I/Q        : {raw_bits / 1e6:7.2f} Mbit "
          "(16 Mbit/s forever, regardless of traffic)")

    gateway = GalioTGateway(modems, FS, detector="universal", use_edge=False)
    report = gateway.process(capture, rng)
    segment_bits = sum(s.length * 2 * 8 for s in report.shipped)
    print(f"2) detect-and-ship     : {segment_bits / 1e6:7.2f} Mbit "
          f"({len(report.shipped)} segments)")

    codec = SegmentCodec(bits=8)
    compressed_bits = 0
    for segment in report.shipped:
        blob, _ = codec.compress(segment)
        compressed_bits += blob.n_bits
    print(f"3) + requantize + zlib : {compressed_bits / 1e6:7.2f} Mbit "
          f"(x{raw_bits / max(compressed_bits, 1):.1f} less than raw)\n")

    link = BackhaulLink(rate_bps=10e6, latency_s=0.02)
    for segment in report.shipped:
        blob, _ = codec.compress(segment)
        link.ship(blob.n_bits, at_time=segment.start / FS)
    print(f"over a 10 Mbit/s uplink: utilization "
          f"{100 * link.utilization(1.0):.1f}%, "
          f"worst segment delay "
          f"{max(s.delay for s in link.shipments) * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
