#!/usr/bin/env python3
"""Capture interchange: write a scene to disk, reload it, decode it.

GalioT's cloud decodes I/Q files, so interoperating with standard SDR
tooling matters. This example renders a collision scene, persists it as
a GNU Radio ``.cfile`` plus a SigMF-flavoured sidecar (carrying the
ground truth as annotations), reloads the pair as a fresh process would,
and runs the cloud decoder on the samples from disk. It also writes the
same capture in rtl_sdr's offset-uint8 format to show the 8-bit wire
format round-trips too.

Run:  python examples/replay_capture.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.cloud import CloudDecoder
from repro.io import load_scene, read_rtl_u8, save_scene, write_rtl_u8
from repro.net import collision_scene
from repro.phy import create_modem

FS = 1e6


def main() -> None:
    rng = np.random.default_rng(21)
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]

    capture, truth = collision_scene(
        [modems[0], modems[1]], [12.0, 12.0], FS, rng, payload_len=10
    )
    print(f"rendered a LoRa+XBee collision: {len(truth.packets)} packets, "
          f"{truth.duration * 1e3:.0f} ms\n")

    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp) / "collision_868MHz"
        data_path, meta_path = save_scene(
            base, capture, truth, description="example collision capture"
        )
        print(f"wrote {data_path.name} "
              f"({data_path.stat().st_size / 1e6:.1f} MB) + {meta_path.name}")

        # ... a different process, later:
        samples, loaded = load_scene(base)
        print(f"reloaded: {len(samples)} samples, "
              f"{len(loaded.packets)} annotated packets")
        for p in loaded.packets:
            print(f"  truth: {p.technology:6s} start={p.start} "
                  f"payload={p.payload.hex()}")

        decoder = CloudDecoder.galiot(modems, loaded.sample_rate)
        report = decoder.decode(samples)
        got = {(r.technology, r.payload) for r in report.results}
        want = {(p.technology, p.payload) for p in loaded.packets}
        print(f"\ndecoded from disk: {len(got & want)}/{len(want)} "
              f"({[r.method for r in report.results]})")

        # rtl_sdr wire format (8-bit offset) round-trip:
        u8_path = Path(tmp) / "collision.u8iq"
        write_rtl_u8(u8_path, capture)
        eight_bit = read_rtl_u8(u8_path)
        report8 = decoder.decode(eight_bit)
        got8 = {(r.technology, r.payload) for r in report8.results}
        print(f"decoded from 8-bit rtl_sdr format: {len(got8 & want)}/{len(want)}")


if __name__ == "__main__":
    main()
