#!/usr/bin/env python3
"""Detection sweep: energy vs universal vs optimal across SNR.

Reproduces the Figure 3(b) experiment at a configurable size and prints
an ASCII bar chart of the detection ratio per SNR band — energy
detection collapsing below 0 dB while the universal preamble keeps
tracking the optimal per-technology bank.

Run:  python examples/detection_sweep.py [--trials N]
"""

import argparse

from repro.experiments import format_table, run_fig3b


def bar(value: float, width: int = 32) -> str:
    filled = int(round(value * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=2,
                        help="scenes per SNR band (default 2)")
    args = parser.parse_args()

    print("running the Figure 3(b) detection sweep "
          f"({args.trials} scenes x 5 packets per band)...\n")
    result = run_fig3b(trials_per_band=args.trials)
    print(format_table(result.table()))

    print("\nratio of packets detected (ASCII view):")
    for i, (lo, hi) in enumerate(result.bands):
        print(f"\n  SNR {lo:+.0f}..{hi:+.0f} dB")
        for name in ("energy", "universal", "optimal"):
            value = result.ratios[name][i]
            print(f"    {name:10s} |{bar(value)}| {value:.2f}")

    below = [i for i, (lo, hi) in enumerate(result.bands) if hi <= -10]
    uni = sum(result.ratios["universal"][i] for i in below) / len(below)
    eng = sum(result.ratios["energy"][i] for i in below) / len(below)
    print(f"\nbelow -10 dB: universal detects {100 * (uni - eng):.0f}% more "
          f"packets than energy detection (paper: +50.89%)")


if __name__ == "__main__":
    main()
