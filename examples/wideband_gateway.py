#!/usr/bin/env python3
"""Wideband gateway: channelize a 4 MHz band, dispatch under SLAs.

Sec. 6 of the paper asks how a GalioT gateway should scale past one
RTL-SDR's bandwidth. This example exercises two of the design-space
answers implemented in this repo:

1. an FFT **channelizer** splits a 4 MHz capture into four 1 MHz
   sub-channels in software (the "replicated front-ends" option);
2. an SLA-aware **dispatcher** places each detected segment on an edge
   box or the cloud so latency-critical technologies (Z-Wave commands)
   meet their deadlines while bulk traffic (LoRa telemetry) takes the
   cheap path.

Run:  python examples/wideband_gateway.py
"""

import numpy as np

from repro.cloud import CloudService, ComputeNode, Dispatcher, SlaPolicy
from repro.dsp import frequency_shift, to_rate
from repro.gateway import (
    ChannelPlan,
    Channelizer,
    GalioTGateway,
)
from repro.phy import create_modem

WIDE_FS = 4e6
CH_BW = 1e6


def build_wide_scene(plan, rng):
    """Three packets on three different 1 MHz channels of the band."""
    placements = [
        ("zwave", 0, 0.02, b"unlock front door"),
        ("xbee", 1, 0.05, b"meter reading 0042"),
        ("lora", 3, 0.01, b"soil moisture 17%"),
    ]
    duration = 0.45
    wide = np.zeros(int(WIDE_FS * duration), complex)
    truth = []
    for tech, channel, t0, payload in placements:
        modem = create_modem(tech)
        wave = to_rate(modem.modulate(payload), modem.sample_rate, WIDE_FS)
        wave = frequency_shift(wave, plan.centers_hz[channel], WIDE_FS)
        start = int(t0 * WIDE_FS)
        wide[start : start + len(wave)] += wave[: len(wide) - start]
        truth.append((tech, channel, payload))
    wide += 0.02 * (rng.normal(size=len(wide)) + 1j * rng.normal(size=len(wide)))
    return wide, truth


def main() -> None:
    rng = np.random.default_rng(9)
    plan = ChannelPlan.uniform(WIDE_FS, CH_BW, 4)
    wide, truth = build_wide_scene(plan, rng)
    print(f"wideband capture: {len(wide)/WIDE_FS*1e3:.0f} ms at "
          f"{WIDE_FS/1e6:.0f} MHz, {plan.n_channels} channels\n")

    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    channels = Channelizer(plan, mode="fft").split(wide)

    # Per-channel GalioT gateway front ends (shared software!).
    gateway = GalioTGateway(modems, CH_BW, detector="universal", use_edge=False)
    cloud = CloudService(modems, CH_BW)
    dispatcher = Dispatcher(
        nodes=[
            ComputeNode("edge-pi", speed=2.0, rtt_s=0.002, cost=0.0),
            ComputeNode("cloud", speed=80.0, rtt_s=0.060, cost=1.0),
        ],
        policy=SlaPolicy(
            deadlines_s={"zwave": 0.15, "xbee": 0.5, "lora": 3.0}
        ),
    )

    decoded = []
    for channel, baseband in channels.items():
        report = gateway.process(baseband, rng)
        for segment in report.shipped:
            hint = None
            results = cloud.process_segment(segment)
            if results:
                hint = results[0].technology
            assignment = dispatcher.dispatch(
                segment, at_time=segment.start / CH_BW, technology_hint=hint
            )
            for r in results:
                decoded.append((r.technology, channel, r.payload, assignment))

    print("decoded across the band:")
    for tech, channel, payload, assignment in decoded:
        sla = "met" if assignment.meets_sla else "MISSED"
        print(f"  ch{channel} [{tech:6s}] {payload!r:28} "
              f"-> {assignment.node} (SLA {sla}, "
              f"{1e3 * (assignment.completes_at - assignment.submitted_at):.0f} ms)")

    got = {(t, p) for t, _, p, _ in decoded}
    want = {(t, p) for t, _, p in truth}
    print(f"\nrecovered {len(got & want)}/{len(want)} packets; "
          f"SLA miss rate {100 * dispatcher.sla_miss_rate:.0f}%")


if __name__ == "__main__":
    main()
