#!/usr/bin/env python3
"""Streaming: the gateway as it would actually run, chunk by chunk.

A deployed GalioT gateway never sees "a capture" — the SDR hands it an
endless sequence of USB buffers. This example feeds a three-packet scene
to :class:`~repro.gateway.streaming.StreamingGateway` in 256k-sample
chunks (one packet is deliberately bisected by a chunk boundary), shows
that the incremental reports merge to exactly the monolithic result, and
prints the end-to-end telemetry stage breakdown.

Run:  python examples/streaming_gateway.py
"""

import numpy as np

from repro.gateway import (
    GalioTGateway,
    GatewayReport,
    StreamingGateway,
    iter_chunks,
)
from repro.net import SceneBuilder
from repro.phy import create_modem
from repro.telemetry import Telemetry, format_snapshot

FS = 1e6
CHUNK = 262_144  # one RTL-SDR USB buffer's worth of complex samples


def main() -> None:
    rng = np.random.default_rng(7)
    modems = [create_modem(name) for name in ("lora", "xbee", "zwave")]

    # 1 s of band with three packets; the XBee packet at sample 260_000
    # straddles the first chunk boundary (262_144).
    scene = SceneBuilder(FS, duration_s=1.0)
    by = {m.name: m for m in modems}
    scene.add_packet(by["zwave"], b"packet A", 40_000, 12, rng,
                     snr_mode="capture")
    scene.add_packet(by["xbee"], b"packet B", 260_000, 12, rng,
                     snr_mode="capture")
    scene.add_packet(by["lora"], b"packet C", 650_000, 12, rng,
                     snr_mode="capture")
    capture, truth = scene.render(rng)

    # Freeze the detector's operating point on a noise-only calibration
    # capture: a continuously-running gateway thresholds against its
    # measured noise floor, not against each buffer's contents — and a
    # frozen threshold is what makes chunked and monolithic processing
    # produce identical results.
    noise = (rng.normal(size=200_000) + 1j * rng.normal(size=200_000)) \
        * np.sqrt(truth.noise_power / 2)
    telemetry = Telemetry()
    gateway = GalioTGateway(modems, FS, use_edge=False, telemetry=telemetry)
    threshold = gateway.detector.calibrate(noise)
    print(f"calibrated detection threshold: {threshold:.2f}\n")

    # Drive the stream. Each chunk report carries whatever that chunk
    # *completed*: events once their suppression outcome is provably
    # final, segments once their last sample has arrived.
    stream = StreamingGateway(gateway)
    reports = []
    for n, report in enumerate(stream.run(iter_chunks(capture, CHUNK))):
        reports.append(report)
        what = f"chunk {n}" if n * CHUNK < len(capture) else "finalize"
        print(f"{what:>8}: +{len(report.events):2d} events "
              f"+{len(report.segments)} segments "
              f"+{report.shipped_bits:7d} bits shipped")
    merged = GatewayReport.merged(reports)

    # The contract: identical to one monolithic pass over the capture.
    mono = GalioTGateway(modems, FS, use_edge=False,
                         threshold=threshold).process(capture)
    assert [e.index for e in merged.events] == [e.index for e in mono.events]
    assert merged.shipped_bits == mono.shipped_bits
    print(f"\nstreaming == monolithic: {len(merged.events)} events, "
          f"{len(merged.segments)} segments, {merged.shipped_bits} bits "
          f"({merged.backhaul_saving:.1f}x backhaul saving)\n")

    print(format_snapshot(telemetry.snapshot()))


if __name__ == "__main__":
    main()
