#!/usr/bin/env python3
"""Quickstart: one XBee frame through the full GalioT pipeline.

Builds a 1 MHz scene with a single XBee transmission, runs the gateway
(RTL-SDR front end -> universal-preamble detection -> segment extraction
-> compression) and decodes the shipped segment at the cloud.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cloud import CloudService
from repro.gateway import GalioTGateway, RtlSdrConfig, RtlSdrModel
from repro.net import SceneBuilder
from repro.phy import create_modem

FS = 1e6  # the paper's RTL-SDR capture rate


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. The gateway is configured with a list of technologies — adding
    #    one later is the paper's "software update".
    modems = [create_modem(name) for name in ("lora", "xbee", "zwave")]

    # 2. Synthesize what the antenna sees: 0.3 s of 868 MHz band with
    #    one XBee frame 10 dB above the noise floor.
    scene = SceneBuilder(FS, duration_s=0.3)
    xbee = next(m for m in modems if m.name == "xbee")
    payload = b"hello from an XBee node"
    scene.add_packet(xbee, payload, start=60_000, snr_db=10.0, rng=rng,
                     snr_mode="capture")
    capture, truth = scene.render(rng)

    # 3. The gateway: cheap front end + one universal-preamble correlation.
    gateway = GalioTGateway(
        modems,
        FS,
        detector="universal",
        front_end=RtlSdrModel(RtlSdrConfig(adc_bits=8, dc_offset=0.002)),
        use_edge=False,  # ship everything to the cloud for this demo
    )
    report = gateway.process(capture, rng)
    print(f"detections        : {len(report.events)}")
    print(f"segments shipped  : {len(report.shipped)}")
    print(f"backhaul bits     : {report.shipped_bits} "
          f"(raw stream would be {report.raw_bits}; "
          f"saving x{report.backhaul_saving:.1f})")

    # 4. The cloud: joint decoding (Algorithm 1).
    cloud = CloudService(modems, FS)
    for segment in report.shipped:
        for result in cloud.process_segment(segment):
            print(f"decoded [{result.technology}/{result.method}] "
                  f"payload={result.payload!r}")
            assert result.payload == payload

    print("quickstart OK")


if __name__ == "__main__":
    main()
