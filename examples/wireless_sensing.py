#!/usr/bin/env python3
"""Multi-technology wireless sensing (paper Sec. 6, future work).

Simulates a room where three heterogeneous IoT devices chirp away for a
"minute" of wall-clock time. Halfway through, a person enters and the
multipath channel of every device shifts. Each decoded packet yields a
free channel snapshot; pooling the snapshots across technologies lets
the cloud detect the occupancy change that no single wimpy device could
report on its own.

Run:  python examples/wireless_sensing.py
"""

import numpy as np

from repro.cloud import try_decode
from repro.net import SceneBuilder
from repro.phy import create_modem
from repro.sensing import OccupancyDetector, snapshot_from_frame

FS = 1e6
PERSON_ENTERS_AT = 30.0  # seconds


def channel_amplitude(t: float, base: float, rng) -> float:
    """Static multipath before the event, shifted + jittery after."""
    if t < PERSON_ENTERS_AT:
        return base * (1 + 0.01 * rng.normal())
    return base * 1.5 * (1 + 0.04 * rng.normal())


def main() -> None:
    rng = np.random.default_rng(12)
    devices = [
        (0, create_modem("lora"), 1.0),
        (1, create_modem("xbee"), 0.7),
        (2, create_modem("zwave"), 1.3),
    ]

    print("collecting per-packet channel snapshots from 3 technologies...")
    snapshots = []
    t = 0.0
    while t < 60.0:
        device_id, modem, base = devices[int(rng.integers(len(devices)))]
        amplitude = channel_amplitude(t, base, rng)
        scene = SceneBuilder(FS, modem.frame_airtime(8) + 0.01, noise_power=1e-4)
        scene.add_packet(modem, b"sense-me", 2000, 35, rng, snr_mode="capture")
        capture, _ = scene.render(rng)
        capture = capture * amplitude
        frame = try_decode(modem, capture, FS)
        if frame is not None:
            snapshots.append(
                snapshot_from_frame(
                    capture, FS, modem, frame, time_s=t, device_id=device_id
                )
            )
        t += float(rng.exponential(1.2))

    print(f"{len(snapshots)} snapshots collected "
          f"({len({s.technology for s in snapshots})} technologies)\n")

    detector = OccupancyDetector(window_s=8.0, threshold=2.5)
    events = detector.detect(snapshots)
    if not events:
        print("no channel change detected (try a different seed)")
        return
    for event in events:
        print(
            f"occupancy change detected: t = {event.start_s:.1f}..."
            f"{event.end_s:.1f} s (score {event.score:.1f}, "
            f"{event.n_snapshots} snapshots)"
        )
    print(f"\nground truth: person entered at t = {PERSON_ENTERS_AT:.1f} s")


if __name__ == "__main__":
    main()
