#!/usr/bin/env python3
"""Smart-home scenario: cross-technology collisions, SIC vs GalioT.

Six duty-cycled devices (2x LoRa, 2x XBee, 2x Z-Wave) "wake up and
transmit" around one gateway for a few simulated seconds. The same
traffic is decoded twice — once with the classic SIC strawman and once
with GalioT's Algorithm 1 — and the script reports delivery ratio,
throughput and the retransmission count that drives battery drain.

Run:  python examples/smart_home_collisions.py
"""

import numpy as np

from repro.cloud import CloudService
from repro.gateway import GalioTGateway
from repro.net import Device, NetworkSimulator
from repro.phy import create_modem

FS = 1e6


def build_devices(modems, rng):
    devices = []
    device_id = 0
    for modem in modems:
        for _ in range(2):
            devices.append(
                Device(
                    device_id=device_id,
                    technology=modem.name,
                    modem=modem,
                    mean_interval_s=0.45,  # busy cell: collisions happen
                    payload_range=(8, 14),
                    snr_db=float(rng.uniform(11, 16)),
                )
            )
            device_id += 1
    return devices


def run(mode: str, devices, modems, rounds: int, seed: int):
    gateway = GalioTGateway(modems, FS, detector="universal", use_edge=True)
    cloud = CloudService(
        modems,
        FS,
        use_kill_filters=(mode == "galiot"),
        strict_order=(mode == "sic"),
    )
    sim = NetworkSimulator(
        devices, gateway, cloud, FS, round_s=0.5, max_attempts=3
    )
    return sim.run(rounds=rounds, rng=np.random.default_rng(seed))


def main() -> None:
    rng = np.random.default_rng(11)
    modems = [create_modem(name) for name in ("lora", "xbee", "zwave")]
    devices = build_devices(modems, rng)

    print("simulating identical traffic under both cloud decoders...\n")
    results = {}
    for mode in ("sic", "galiot"):
        results[mode] = run(mode, devices, modems, rounds=3, seed=2024)
        r = results[mode]
        label = "SIC baseline" if mode == "sic" else "GalioT      "
        print(
            f"{label}: delivered {r.delivered_frames}/{r.offered_frames} "
            f"({100 * r.delivery_ratio:.0f}%), "
            f"throughput {r.throughput_bps:.0f} bit/s, "
            f"transmissions {r.transmissions} "
            f"({r.mac.attempts_per_delivery:.2f} per delivery)"
        )

    sic, galiot = results["sic"], results["galiot"]
    if sic.throughput_bps > 0:
        print(
            f"\nGalioT throughput gain: "
            f"x{galiot.throughput_bps / sic.throughput_bps:.2f} "
            f"(the paper reports x7.46 on its testbed)"
        )
    saved = sic.transmissions - galiot.transmissions
    print(f"transmissions saved by collision decoding: {saved} "
          f"(fewer retransmissions = longer battery life)")


if __name__ == "__main__":
    main()
