#!/usr/bin/env python3
"""Extensibility demo: add a technology with a "software update".

The paper's core economic argument: a commercial multi-technology
gateway adds radio support with new *hardware* NIC modules; GalioT adds
it by registering one more modem. This script starts a gateway on the
prototype trio, then "updates" it to also hear SigFox — and shows both
that the new technology is detected/decoded and that detection cost did
not grow (still one universal-preamble correlation).

Run:  python examples/add_a_technology.py
"""

import numpy as np

from repro.cloud import CloudService
from repro.gateway import GalioTGateway
from repro.net import SceneBuilder
from repro.phy import create_modem

FS = 1e6


def render_scene(rng, include_sigfox: bool):
    scene = SceneBuilder(FS, 1.7)
    scene.add_packet(
        create_modem("xbee"), b"legacy frame", 100_000, 10, rng,
        snr_mode="capture",
    )
    if include_sigfox:
        # SigFox is 100 bit/s: even a 4-byte frame takes ~1 s of air.
        scene.add_packet(
            create_modem("sigfox"), b"new!", 450_000, 6, rng,
            snr_mode="capture",
        )
    return scene.render(rng)


def run(modem_names, capture, rng):
    modems = [create_modem(n) for n in modem_names]
    gateway = GalioTGateway(modems, FS, detector="universal", use_edge=False)
    cloud = CloudService(modems, FS)
    report = gateway.process(capture, rng)
    decoded = []
    for segment in report.shipped:
        decoded.extend(cloud.process_segment(segment))
    return gateway, decoded


def main() -> None:
    rng = np.random.default_rng(5)
    capture, _ = render_scene(rng, include_sigfox=True)

    print("gateway v1 (lora/xbee/zwave):")
    gw1, decoded1 = run(("lora", "xbee", "zwave"), capture, rng)
    print(f"  correlations per capture: {gw1.detector.n_correlations}")
    print(f"  decoded: {[(r.technology, r.payload) for r in decoded1]}")
    assert all(r.technology != "sigfox" for r in decoded1)

    print("\napplying the software update: register 'sigfox'...\n")

    print("gateway v2 (lora/xbee/zwave/sigfox):")
    gw2, decoded2 = run(("lora", "xbee", "zwave", "sigfox"), capture, rng)
    print(f"  correlations per capture: {gw2.detector.n_correlations} "
          "(unchanged — the universal preamble absorbed the new entry)")
    print(f"  decoded: {[(r.technology, r.payload) for r in decoded2]}")
    got = {r.technology for r in decoded2}
    assert "sigfox" in got, "the updated gateway should hear SigFox"
    print("\nsoftware-update extensibility demonstrated")


if __name__ == "__main__":
    main()
