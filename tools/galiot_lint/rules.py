"""The GL00x rule set: each rule is one AST check with a docstring.

Every rule yields ``(line, col, message)`` triples for one parsed
module. Rules are deliberately *narrow* — they encode conventions
specific to this repo's signal plumbing rather than general Python
style (ruff owns that), so a finding is almost always a real contract
gap rather than noise.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

__all__ = ["ModuleContext", "Rule", "ALL_RULES", "rules_by_code"]

#: Parameter names that, by repo convention, always carry I/Q or raw
#: capture buffers across a subsystem boundary.
IQ_PARAM_NAMES = frozenset({"iq", "samples", "capture"})

#: Ambiguous numeric parameter names and their unit-suffixed fixes.
AMBIGUOUS_PARAMS = {
    "fs": "sample_rate_hz",
    "rate": "rate_hz (or bit_rate_bps, sample_rate_hz, ...)",
    "freq": "freq_hz",
    "sr": "sample_rate_hz",
    "dur": "duration_s",
}

#: Guard callables GL001 accepts as dtype normalization at a boundary.
GUARD_CALLS = frozenset({"ensure_iq", "ensure_real"})
GUARD_DECORATORS = frozenset({"iq_contract", "real_contract"})
NORMALIZING_CALLS = frozenset({"asarray", "ascontiguousarray", "array"})


@dataclass(frozen=True)
class ModuleContext:
    """Where the module being linted lives (scoping for GL005 etc.)."""

    path: Path
    module_name: str
    package_parts: tuple[str, ...]


class Rule:
    """Base class: one code, one check over a parsed module."""

    code: str = "GL000"
    name: str = "base-rule"

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        raise NotImplementedError

    @classmethod
    def explain(cls) -> str:
        """Full rule documentation (the class docstring)."""
        return cls.__doc__ or "(undocumented)"


# ---------------------------------------------------------------------------
# shared AST helpers


def _decorator_name(node: ast.expr) -> str:
    """Terminal name of a decorator expression (unwrapping calls)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _call_name(node: ast.Call) -> str:
    """Terminal name of a call's callee."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def _is_private(name: str) -> bool:
    """Underscore-prefixed but not a dunder (``__init__`` is public API)."""
    return name.startswith("_") and not (
        name.startswith("__") and name.endswith("__")
    )


#: Packages whose modules are scripts/fixtures, not public API surface.
_SCRIPT_PACKAGES = frozenset({"tests", "benchmarks"})


def _is_script_context(context: ModuleContext) -> bool:
    """Test/benchmark modules: entry scripts, not ``repro.*`` API.

    The API-surface rules (GL001 boundary guards, GL004 annotation
    coverage) target the importable library; pytest/pytest-benchmark
    driver functions have no callers to protect.
    """
    return (
        bool(set(context.package_parts) & _SCRIPT_PACKAGES)
        or context.module_name.startswith("test_")
        or context.module_name.startswith("bench_")
        or context.module_name == "conftest"
    )


def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[FunctionNode, ast.ClassDef | None]]:
    """Module-level and class-level function defs (not nested closures)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield member, node


def _is_stub_body(func: FunctionNode) -> bool:
    """True for abstract/docstring-only bodies with nothing to guard."""
    body = list(func.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]  # drop the docstring
    if not body:
        return True
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Raise)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


def _all_args(func: FunctionNode) -> list[ast.arg]:
    """Positional-only, positional and keyword-only args, in order."""
    a = func.args
    return [*a.posonlyargs, *a.args, *a.kwonlyargs]


def _is_method(parent: ast.ClassDef | None, func: FunctionNode) -> bool:
    if parent is None:
        return False
    return not any(
        _decorator_name(d) == "staticmethod" for d in func.decorator_list
    )


def _name_mentions_iq(name: str) -> bool:
    return name in IQ_PARAM_NAMES or "iq" in name.split("_")


def _subtree_mentions_iq(node: ast.AST) -> bool:
    return any(
        isinstance(n, ast.Name) and _name_mentions_iq(n.id)
        for n in ast.walk(node)
    )


def _is_float_narrowing_call(node: ast.AST) -> bool:
    """``np.float32(...)`` / ``np.float64(...)`` (or bare name) calls."""
    return (
        isinstance(node, ast.Call)
        and _call_name(node) in {"float32", "float64"}
    )


# ---------------------------------------------------------------------------
# rules


class IqBoundaryGuard(Rule):
    """GL001: an I/Q boundary function lacks a dtype guard.

    A public function whose signature takes raw signal buffers (a
    parameter named ``iq``, ``samples`` or ``capture``) is a subsystem
    boundary: whatever dtype the caller hands over propagates silently
    through every downstream numpy expression. Such functions must
    either normalize the buffer on entry — ``np.asarray(x, dtype=...)``
    / ``repro.contracts.ensure_iq`` — or carry an
    ``@iq_contract`` / ``@real_contract`` decorator so the sanitize
    modes can validate the buffer where it *enters*.

    Abstract/stub bodies (interface definitions) and test/benchmark
    scripts (no external callers) are exempt.
    """

    code = "GL001"
    name = "iq-boundary-guard"

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        if _is_script_context(context):
            return
        for func, _parent in _iter_functions(tree):
            if _is_private(func.name):
                continue
            hit = [a for a in _all_args(func) if a.arg in IQ_PARAM_NAMES]
            if not hit or _is_stub_body(func):
                continue
            decorators = {_decorator_name(d) for d in func.decorator_list}
            if decorators & (GUARD_DECORATORS | {"abstractmethod", "overload"}):
                continue
            if self._body_has_guard(func):
                continue
            names = ", ".join(repr(a.arg) for a in hit)
            yield (
                func.lineno,
                func.col_offset,
                f"{func.name}() takes I/Q buffer(s) {names} without a "
                "dtype guard: add @iq_contract/@real_contract or "
                "normalize via np.asarray(..., dtype=...)/ensure_iq()",
            )

    @staticmethod
    def _body_has_guard(func: FunctionNode) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in GUARD_CALLS:
                return True
            if name in NORMALIZING_CALLS and any(
                kw.arg == "dtype" for kw in node.keywords
            ):
                return True
        return False


class AmbiguousUnitParam(Rule):
    """GL002: numeric parameter named without its unit.

    ``fs``, ``rate``, ``freq`` say nothing about Hz vs. samples vs.
    bits/s — the classic source of silent unit mixups in SDR code. The
    repo convention is unit-suffixed names: ``sample_rate_hz``,
    ``duration_s``, ``offset_samples``. Public signatures must follow
    it; keep a deprecated keyword alias when renaming an established
    API.
    """

    code = "GL002"
    name = "ambiguous-unit-param"

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        for func, _parent in _iter_functions(tree):
            if _is_private(func.name):
                continue
            for arg in _all_args(func):
                suggestion = AMBIGUOUS_PARAMS.get(arg.arg)
                if suggestion is not None:
                    yield (
                        arg.lineno,
                        arg.col_offset,
                        f"parameter {arg.arg!r} of {func.name}() is "
                        f"ambiguous: use a unit-suffixed name "
                        f"(e.g. {suggestion})",
                    )


class FloatLiteralInIqExpr(Rule):
    """GL003: float32/float64 narrowing mixed into an I/Q expression.

    ``np.float32(x) * iq`` (or ``np.float64(iq)``) silently truncates
    the imaginary rail or forces a dtype round-trip in the middle of a
    complex pipeline. Scale factors belong in Python floats (numpy
    promotes them correctly) or explicit ``complex64/complex128``
    casts.
    """

    code = "GL003"
    name = "float-literal-in-iq-expr"

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp):
                pairs = ((node.left, node.right), (node.right, node.left))
                for cast_side, other in pairs:
                    if _is_float_narrowing_call(cast_side) and (
                        _subtree_mentions_iq(other)
                    ):
                        yield (
                            node.lineno,
                            node.col_offset,
                            "float32/float64 literal arithmetic in a "
                            "complex I/Q expression: use a plain float "
                            "or an explicit complex cast",
                        )
                        break
            elif _is_float_narrowing_call(node):
                assert isinstance(node, ast.Call)
                if any(_subtree_mentions_iq(a) for a in node.args):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "casting an I/Q buffer to float32/float64 drops "
                        "the imaginary rail: use np.complex64/complex128 "
                        "or take .real explicitly",
                    )


class PublicMissingAnnotations(Rule):
    """GL004: public function missing type annotations.

    Every public function and method in ``repro.*`` must annotate all
    parameters and its return type — the annotations are what make the
    I/Q plumbing auditable (and what mypy checks on the strict
    modules). ``self``/``cls``, ``*args``/``**kwargs``, dunder return
    types and test/benchmark scripts are exempt.
    """

    code = "GL004"
    name = "public-missing-annotations"

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        if _is_script_context(context):
            return
        for func, parent in _iter_functions(tree):
            if _is_private(func.name):
                continue
            args = _all_args(func)
            if _is_method(parent, func) and args:
                args = args[1:]  # self / cls
            for arg in args:
                if arg.annotation is None:
                    yield (
                        arg.lineno,
                        arg.col_offset,
                        f"parameter {arg.arg!r} of public "
                        f"{func.name}() lacks a type annotation",
                    )
            is_dunder = func.name.startswith("__") and func.name.endswith("__")
            if func.returns is None and not is_dunder:
                yield (
                    func.lineno,
                    func.col_offset,
                    f"public {func.name}() lacks a return type annotation",
                )


class PrivateTelemetryRegistry(Rule):
    """GL005: pipeline stage constructs its own ``Telemetry`` registry.

    Telemetry must be *threaded*: every instrumented stage accepts a
    registry parameter defaulting to the shared no-op ``NULL`` so one
    gateway-level registry observes the whole pipeline (the PR 1
    regression this rule guards). A stage calling ``Telemetry()``
    itself silently forks the metrics. Composition roots (``cli``,
    ``experiments``) and tests are exempt.
    """

    code = "GL005"
    name = "private-telemetry-registry"

    _ALLOWED_MODULES = frozenset({"cli", "telemetry", "conftest"})
    _ALLOWED_PACKAGES = frozenset({"experiments", "tests", "benchmarks"})

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        if context.module_name in self._ALLOWED_MODULES:
            return
        if set(context.package_parts) & self._ALLOWED_PACKAGES:
            return
        if context.module_name.startswith("test_"):
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _call_name(node) == "Telemetry":
                yield (
                    node.lineno,
                    node.col_offset,
                    "stage constructs its own Telemetry() registry: "
                    "accept `telemetry: Telemetry = NULL` and let the "
                    "composition root thread one registry through",
                )


class DataclassBareMutable(Rule):
    """GL006: bare or mutable ``dict``/``list`` annotation in a dataclass.

    ``extra: dict`` hides the value schema from mypy and every reader;
    annotate the content (``dict[str, object]`` at minimum). Mutable
    literals as defaults (including via ``field(default=[])``) alias
    one object across instances.
    """

    code = "GL006"
    name = "dataclass-bare-mutable"

    _BARE = frozenset({"dict", "list", "set", "Dict", "List", "Set"})

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(
                _decorator_name(d) == "dataclass" for d in node.decorator_list
            ):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                yield from self._check_field(node, stmt)

    def _check_field(
        self, cls: ast.ClassDef, stmt: ast.AnnAssign
    ) -> Iterator[tuple[int, int, str]]:
        ann = stmt.annotation
        if isinstance(ann, ast.Name) and ann.id in self._BARE:
            yield (
                ann.lineno,
                ann.col_offset,
                f"dataclass {cls.name} field annotated bare "
                f"{ann.id!r}: annotate the contents "
                f"(e.g. {ann.id.lower()}[str, object])",
            )
        value = stmt.value
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            yield (
                value.lineno,
                value.col_offset,
                f"dataclass {cls.name} field uses a mutable literal "
                "default: use field(default_factory=...)",
            )
        elif isinstance(value, ast.Call) and _call_name(value) == "field":
            for kw in value.keywords:
                if kw.arg == "default" and isinstance(
                    kw.value, (ast.List, ast.Dict, ast.Set)
                ):
                    yield (
                        kw.value.lineno,
                        kw.value.col_offset,
                        f"dataclass {cls.name} field(default=...) holds a "
                        "mutable literal: use default_factory",
                    )


ALL_RULES: tuple[type[Rule], ...] = (
    IqBoundaryGuard,
    AmbiguousUnitParam,
    FloatLiteralInIqExpr,
    PublicMissingAnnotations,
    PrivateTelemetryRegistry,
    DataclassBareMutable,
)


def rules_by_code() -> dict[str, type[Rule]]:
    """Mapping ``"GL001" -> rule class`` for selection and ``--explain``."""
    return {rule.code: rule for rule in ALL_RULES}
