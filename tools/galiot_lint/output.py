"""Report renderers: ruff-style text, JSON, and SARIF 2.1.0.

SARIF is the format GitHub's code-scanning upload understands, which
turns lint findings into inline PR annotations; the emitted document is
the minimal valid subset (one run, one tool, physical locations with
1-based lines/columns).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .engine import Finding

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(findings: list[Finding]) -> str:
    """One ``path:line:col: CODE message`` line per finding."""
    return "\n".join(f.render() for f in findings)


def render_json(findings: list[Finding]) -> str:
    """Machine-readable list of finding objects."""
    doc = [
        {
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "code": f.code,
            "message": f.message,
            "fixable": f.fix is not None,
        }
        for f in findings
    ]
    return json.dumps(doc, indent=2)


def _rel_uri(path: str, root: Path) -> str:
    try:
        return Path(path).resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return Path(path).as_posix()


def render_sarif(
    findings: list[Finding],
    root: Path,
    rule_docs: dict[str, str],
    version: str,
) -> str:
    """SARIF 2.1.0 document for GitHub code-scanning annotations."""
    used_codes = sorted({f.code for f in findings} | set(rule_docs))
    rules = []
    for code in used_codes:
        doc = rule_docs.get(code, "")
        short = doc.strip().splitlines()[0] if doc.strip() else code
        rules.append(
            {
                "id": code,
                "shortDescription": {"text": short},
                "fullDescription": {"text": doc.strip() or short},
                "defaultConfiguration": {"level": "error"},
            }
        )
    index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = [
        {
            "ruleId": f.code,
            "ruleIndex": index.get(f.code, 0),
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _rel_uri(f.path, root),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "galiot-lint",
                        "version": version,
                        "informationUri": (
                            "https://github.com/"  # repo-relative tool
                        ),
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": root.resolve().as_uri() + "/"}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)
