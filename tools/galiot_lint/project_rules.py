"""Cross-module rules: checks that need the whole-project model.

A :class:`ProjectRule` runs once per lint invocation against the
:class:`~galiot_lint.semantic.ProjectModel` (never against raw ASTs —
summaries are what the cache stores, so these rules stay correct on a
fully warm cache where no file was re-parsed). Each yields
``(path, line, col, message, fix_span)`` tuples; ``fix_span`` is
``None`` or a single-line span the engine can wrap for autofixing.
"""

from __future__ import annotations

from collections.abc import Iterator

from .semantic import ModuleSummary, ProjectModel

__all__ = ["ProjectRule", "PROJECT_RULES", "project_rules_by_code"]

#: A project finding: (path, line, col, message, fix_span|None).
Site = tuple[str, int, int, str, list | None]


class ProjectRule:
    """Base class: one code, one check over the linked project model."""

    code: str = "GL100"
    name: str = "base-project-rule"

    def check_project(self, model: ProjectModel) -> Iterator[Site]:
        raise NotImplementedError

    @classmethod
    def explain(cls) -> str:
        """Full rule documentation (the class docstring)."""
        return cls.__doc__ or "(undocumented)"


def _is_test_module(summary: ModuleSummary) -> bool:
    name = summary.module
    last = name.rpartition(".")[2]
    return (
        last.startswith("test_")
        or last == "conftest"
        or "tests" in name.split(".")
    )


class UnseededRngReachable(ProjectRule):
    """GL101: unseeded randomness reachable from a seeded contract.

    The fault/chaos layer (PR 5) and every ``repro.net`` scene builder
    promise bit-identical replays from a scenario seed. That promise is
    global: one ``np.random.default_rng()`` (no seed), one legacy
    ``np.random.normal(...)`` or one stdlib ``random.random()`` call
    *anywhere in the call graph below* a seeded entry point (a public
    function taking ``rng``/``seed``) silently injects fresh OS entropy
    or process-global state into a "deterministic" run. Module-level
    draws are flagged unconditionally — they execute at import time,
    before any seed exists. Thread the caller's ``Generator`` down
    instead.
    """

    code = "GL101"
    name = "unseeded-rng-reachable"

    def check_project(self, model: ProjectModel) -> Iterator[Site]:
        for summary in model.modules.values():
            if _is_test_module(summary):
                continue
            for line, col, desc in summary.module_rng_sites:
                yield (
                    summary.path, line, col,
                    f"module-level {desc}: runs at import time, outside "
                    "any seed's control — construct generators inside "
                    "the seeded entry point and thread them through",
                    None,
                )
        seeded = model.seeded_entry_points()
        reachable = model.reachable_from(seeded)
        reachable.update(seeded)
        for key in sorted(reachable):
            module, _, qual = key.partition(":")
            summary = model.modules.get(module)
            if summary is None or _is_test_module(summary):
                continue
            info = summary.functions.get(qual)
            if info is None:
                continue
            for line, col, desc in info.rng_sites:
                yield (
                    summary.path, line, col,
                    f"{desc} inside {qual}(), which is reachable from a "
                    "seeded entry point: thread the seeded "
                    "numpy.random.Generator through instead of drawing "
                    "fresh entropy",
                    None,
                )


class UnorderedIterationMerge(ProjectRule):
    """GL103: iteration over a set feeds an order-sensitive merge.

    Set iteration order varies with insertion history and hash
    randomization, so a loop over a ``set``/``frozenset`` that appends,
    yields, writes or accumulates builds a different sequence on every
    run — the failure mode ``ParallelCloudService.drain()`` avoids by
    merging ``for seq in sorted(done)``. The rule resolves iterables
    through the project symbol table, so iterating a *call* to a
    function annotated ``-> set[...]`` in another module is caught too.
    Autofix wraps the iterable in ``sorted(...)``.
    """

    code = "GL103"
    name = "unordered-iteration-merge"

    def check_project(self, model: ProjectModel) -> Iterator[Site]:
        set_returning: set[str] = set()
        for summary in model.modules.values():
            for qual in summary.set_returning:
                set_returning.add(f"{summary.module}:{qual}")
        for summary in model.modules.values():
            if _is_test_module(summary):
                continue
            for line, col, kind, ref, span in summary.set_iter_sites:
                if kind == "call":
                    key = model.resolve_call(summary, "", ref)
                    if key is None or key not in set_returning:
                        continue
                    detail = (
                        f"{ref}() returns a set (per its annotation)"
                    )
                else:
                    detail = "the iterable is a set"
                yield (
                    summary.path, line, col,
                    f"iteration order feeds an order-sensitive merge but "
                    f"{detail}: wrap it in sorted(...) so replays and "
                    "worker schedules cannot reorder the result",
                    span,
                )


class RootSeedReuse(ProjectRule):
    """GL104: one root seed constructs several independent generators.

    ``np.random.default_rng(seed)`` called twice with the same bare
    seed yields two generators emitting *identical* streams — scene
    noise correlated with fault jitter, or two "independent" campaigns
    replaying each other. The repo idiom is tuple-derived child seeds:
    ``np.random.default_rng((seed, k))`` (see ``repro.faults``). The
    rule is call-graph aware: passing ``seed=`` to a function that
    derives child seeds internally (like ``build_scenario``) does not
    count as a use, while passing it to a function that feeds it
    straight into ``default_rng`` does.
    """

    code = "GL104"
    name = "root-seed-reuse"

    def check_project(self, model: ProjectModel) -> Iterator[Site]:
        for summary in model.modules.values():
            if _is_test_module(summary):
                continue
            for qual, info in summary.functions.items():
                uses: dict[str, list[tuple[int, int]]] = {}
                for line, col, expr, use_kind in info.seed_uses:
                    if use_kind == "direct":
                        uses.setdefault(expr, []).append((line, col))
                        continue
                    raw_callee = use_kind.partition(":")[2]
                    role = model.seed_role(summary, raw_callee)
                    if role == "consumer":
                        uses.setdefault(expr, []).append((line, col))
                for expr, sites in sorted(uses.items()):
                    if len(sites) < 2:
                        continue
                    for line, col in sites[1:]:
                        yield (
                            summary.path, line, col,
                            f"root seed {expr!r} already built a "
                            f"generator at line {sites[0][0]} of "
                            f"{qual}(): identical streams — derive a "
                            "child seed instead, e.g. "
                            f"np.random.default_rng(({expr}, k))",
                            None,
                        )


class WorkerGlobalMutation(ProjectRule):
    """GL301: a pool-worker function mutates module-global state.

    Functions handed to an executor (``submit``/``map`` targets,
    ``initializer=``) — and everything they call — run in worker
    processes/threads. Writing a module global from there either
    vanishes silently (process pool: the write lands in the child's
    copy) or races (thread pool). Worker state belongs in a
    module-level ``threading.local()`` (the ``_worker`` pattern in
    ``repro.cloud.parallel``), which this rule recognizes and exempts.
    """

    code = "GL301"
    name = "worker-global-mutation"

    def check_project(self, model: ProjectModel) -> Iterator[Site]:
        workers = model.worker_functions()
        for key in sorted(workers):
            module, _, qual = key.partition(":")
            summary = model.modules.get(module)
            if summary is None or _is_test_module(summary):
                continue
            info = summary.functions.get(qual)
            if info is None:
                continue
            for line, col, name in info.global_writes:
                yield (
                    summary.path, line, col,
                    f"{qual}() runs inside pool workers but mutates "
                    f"module global {name!r}: the write is lost "
                    "(process pool) or races (threads) — keep worker "
                    "state in a module-level threading.local()",
                    None,
                )


PROJECT_RULES: tuple[type[ProjectRule], ...] = (
    UnseededRngReachable,
    UnorderedIterationMerge,
    RootSeedReuse,
    WorkerGlobalMutation,
)


def project_rules_by_code() -> dict[str, type[ProjectRule]]:
    """Mapping ``"GL101" -> rule class`` for selection and ``--explain``."""
    return {rule.code: rule for rule in PROJECT_RULES}
