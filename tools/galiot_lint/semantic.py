"""Pass 1 of the project-aware linter: per-module fact extraction.

``galiot-lint`` v2 runs in two passes. This module implements the first:
every file is parsed **once** and compressed into a :class:`ModuleSummary`
— a JSON-serializable bag of facts (imports, functions, call sites,
RNG/clock/seed usage, module-global writes, worker registrations,
set-iteration sites, ``noqa`` pragmas). Summaries are what the on-disk
cache stores, so a warm run never re-parses unchanged files; the
cross-module rules in :mod:`.project_rules` consume summaries only,
never raw ASTs.

:class:`ProjectModel` links the summaries: it resolves imports to
project modules, builds the (approximate) call graph, and answers the
reachability queries the GL1xx/GL3xx rules need — "which functions are
reachable from a seeded-contract entry point?", "which functions run
inside pool workers?".

Name resolution is deliberately approximate (no type inference): a call
``mod.f()`` resolves through the import table, ``self.m()`` resolves to
the enclosing class, and anything else is dropped. Dropped edges make
the reachability rules *under*-report, never over-report — the right
failure mode for a lint gate.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "FunctionSummary",
    "ModuleSummary",
    "ProjectModel",
    "extract_module",
    "module_name_for",
    "parse_noqa",
]

#: Legacy numpy global-RNG draw functions (``np.random.<name>``).
LEGACY_NP_RANDOM = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "normal", "uniform", "choice", "shuffle", "permutation",
    "poisson", "exponential", "standard_normal", "bytes", "beta",
    "binomial", "gamma", "rayleigh", "seed", "RandomState", "get_state",
    "set_state",
})

#: Stdlib ``random`` module draw/state functions.
STDLIB_RANDOM = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "seed", "getrandbits", "triangular",
})

#: Wall-clock reads/operations forbidden on simulated-time paths.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.monotonic", "time.perf_counter",
    "time.process_time", "time.sleep", "time.monotonic_ns",
    "time.time_ns", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\s]+))?", re.IGNORECASE)

_CODE_RE = re.compile(r"^GL\d{3}$")

#: Another linter's code (ruff/flake8/pycodestyle style, e.g. ``F401``,
#: ``E731``, ``NPY002``): legitimate in a shared ``# noqa`` comment and
#: silently ignored by galiot-lint rather than reported as malformed.
_FOREIGN_CODE_RE = re.compile(r"^[A-Z]{1,8}\d{1,4}$")


def parse_noqa(lines: list[str]) -> tuple[dict[int, Any], list[tuple[int, str]]]:
    """Scan physical lines for ``# noqa`` pragmas.

    Returns ``(noqa_map, malformed)`` where ``noqa_map`` maps a 1-based
    line number to either the string ``"all"`` (bare ``# noqa``) or a
    list of rule codes, and ``malformed`` lists ``(line, token)`` pairs
    for tokens that do not even look like rule codes (``GLxxx``). Codes
    that are well-formed but unknown are validated later by the engine
    (it knows the registry) and reported as GL901 warnings instead of
    being silently ignored.
    """
    noqa: dict[int, Any] = {}
    malformed: list[tuple[int, str]] = []
    for n, text in enumerate(lines, start=1):
        if "noqa" not in text and "NOQA" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        raw = match.group("codes")
        if not raw:
            noqa[n] = "all"
            continue
        codes = []
        for token in raw.split(","):
            token = token.strip().upper()
            if not token:
                continue
            if _CODE_RE.match(token):
                codes.append(token)
            elif not _FOREIGN_CODE_RE.match(token):
                malformed.append((n, token))
        noqa[n] = codes
    return noqa, malformed


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, anchored at known repo roots.

    ``.../src/repro/cloud/parallel.py`` → ``repro.cloud.parallel``;
    ``.../tools/galiot_lint/engine.py`` → ``galiot_lint.engine``;
    ``.../benchmarks/bench_x.py`` → ``benchmarks.bench_x``. Anything
    else falls back to the parts after the last recognizable anchor, or
    the bare stem.
    """
    parts = [p for p in path.parts if p not in (".", "..")]
    stem = path.stem
    leaf = [] if stem == "__init__" else [stem]
    for anchor in ("src", "tools"):
        if anchor in parts[:-1]:
            idx = len(parts) - 1 - parts[:-1][::-1].index(anchor)
            tail = parts[idx:-1] + leaf
            if tail:
                return ".".join(tail)
    for anchor in ("benchmarks", "tests", "examples"):
        if anchor in parts[:-1]:
            idx = len(parts) - 1 - parts[:-1][::-1].index(anchor) - 1
            tail = parts[idx:-1] + leaf
            if tail:
                return ".".join(tail)
    return stem


@dataclass
class FunctionSummary:
    """Cross-module-relevant facts about one function or method."""

    qualname: str  # "func" or "Class.method"
    line: int
    col: int
    public: bool
    params: list[str] = field(default_factory=list)
    has_rng_param: bool = False
    has_seed_param: bool = False
    calls: list[tuple[str, int]] = field(default_factory=list)
    rng_sites: list[tuple[int, int, str]] = field(default_factory=list)
    seed_uses: list[tuple[int, int, str, str]] = field(default_factory=list)
    seed_role: str = ""  # "consumer" | "deriver" | ""
    global_writes: list[tuple[int, int, str]] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname, "line": self.line, "col": self.col,
            "public": self.public, "params": self.params,
            "has_rng_param": self.has_rng_param,
            "has_seed_param": self.has_seed_param,
            "calls": [list(c) for c in self.calls],
            "rng_sites": [list(s) for s in self.rng_sites],
            "seed_uses": [list(s) for s in self.seed_uses],
            "seed_role": self.seed_role,
            "global_writes": [list(w) for w in self.global_writes],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> FunctionSummary:
        return cls(
            qualname=data["qualname"], line=data["line"], col=data["col"],
            public=data["public"], params=list(data["params"]),
            has_rng_param=data["has_rng_param"],
            has_seed_param=data["has_seed_param"],
            calls=[tuple(c) for c in data["calls"]],
            rng_sites=[tuple(s) for s in data["rng_sites"]],
            seed_uses=[tuple(s) for s in data["seed_uses"]],
            seed_role=data["seed_role"],
            global_writes=[tuple(w) for w in data["global_writes"]],
        )


@dataclass
class ModuleSummary:
    """Everything the project pass needs to know about one module."""

    module: str
    path: str
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    set_returning: list[str] = field(default_factory=list)
    module_rng_sites: list[tuple[int, int, str]] = field(default_factory=list)
    worker_registrations: list[tuple[str, int]] = field(default_factory=list)
    set_iter_sites: list[list[Any]] = field(default_factory=list)
    threading_locals: list[str] = field(default_factory=list)
    noqa: dict[int, Any] = field(default_factory=dict)
    malformed_noqa: list[tuple[int, str]] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "module": self.module, "path": self.path,
            "imports": self.imports,
            "functions": {
                k: f.to_json() for k, f in self.functions.items()
            },
            "set_returning": self.set_returning,
            "module_rng_sites": [list(s) for s in self.module_rng_sites],
            "worker_registrations": [
                list(w) for w in self.worker_registrations
            ],
            "set_iter_sites": self.set_iter_sites,
            "threading_locals": self.threading_locals,
            "noqa": {str(k): v for k, v in self.noqa.items()},
            "malformed_noqa": [list(m) for m in self.malformed_noqa],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> ModuleSummary:
        return cls(
            module=data["module"], path=data["path"],
            imports=dict(data["imports"]),
            functions={
                k: FunctionSummary.from_json(f)
                for k, f in data["functions"].items()
            },
            set_returning=list(data["set_returning"]),
            module_rng_sites=[tuple(s) for s in data["module_rng_sites"]],
            worker_registrations=[
                tuple(w) for w in data["worker_registrations"]
            ],
            set_iter_sites=[list(s) for s in data["set_iter_sites"]],
            threading_locals=list(data["threading_locals"]),
            noqa={int(k): v for k, v in data["noqa"].items()},
            malformed_noqa=[tuple(m) for m in data["malformed_noqa"]],
        )


# ---------------------------------------------------------------------------
# AST helpers shared with the flow rules


def dotted_name(node: ast.expr) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def is_bare_ref(node: ast.expr) -> bool:
    """True for a plain Name or Attribute chain (``seed``, ``args.seed``)."""
    return bool(dotted_name(node))


class _ImportTable:
    """alias → fully dotted target, from a module's import statements."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[name] = target

    def add_import_from(self, node: ast.ImportFrom, module: str) -> None:
        if node.level:
            # Relative import: resolve against the current package.
            pkg = module.split(".")
            pkg = pkg[: len(pkg) - node.level]
            base = ".".join(pkg + ([node.module] if node.module else []))
        else:
            base = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            name = alias.asname or alias.name
            self.aliases[name] = f"{base}.{alias.name}" if base else alias.name

    def resolve(self, dotted: str) -> str:
        """Expand the leading alias of ``dotted``, if it is imported."""
        if not dotted:
            return dotted
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target


def _annotation_is_set(node: ast.expr | None) -> bool:
    """Whether a return annotation is ``set[...]``/``frozenset[...]``."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0] in ("set", "frozenset")
    return isinstance(node, ast.Name) and node.id in ("set", "frozenset")


def _unseeded_rng_call(call: ast.Call, resolved: str) -> str | None:
    """Describe an unseeded / global-state RNG call, or ``None``.

    ``resolved`` is the import-expanded dotted callee. Flags:
    ``numpy.random.default_rng()`` with no arguments, any legacy
    ``numpy.random.<draw>``, and any stdlib ``random.<draw>`` — all of
    which either take fresh OS entropy or mutate process-global state.
    """
    if resolved == "numpy.random.default_rng":
        if not call.args and not call.keywords:
            return "np.random.default_rng() without a seed"
        return None
    head, _, tail = resolved.rpartition(".")
    if head == "numpy.random" and tail in LEGACY_NP_RANDOM:
        return f"legacy global-state np.random.{tail}()"
    if head == "random" and tail in STDLIB_RANDOM:
        return f"stdlib global-state random.{tail}()"
    return None


class _ModuleExtractor(ast.NodeVisitor):
    """One walk over a module tree, filling a :class:`ModuleSummary`."""

    def __init__(self, summary: ModuleSummary) -> None:
        self.summary = summary
        self.imports = _ImportTable()
        self._class_stack: list[str] = []
        self._func_stack: list[FunctionSummary] = []
        self._module_globals: set[str] = set()

    # -- imports ---------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.imports.add_import(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.add_import_from(node, self.summary.module)

    # -- definitions -----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._func_stack:
            self._module_globals.add(node.name)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if not self._func_stack and not self._class_stack:
            self._module_globals.add(node.name)
        qual = ".".join([*self._class_stack, node.name])
        args = [
            a.arg
            for a in (
                *node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs
            )
        ]
        info = FunctionSummary(
            qualname=qual,
            line=node.lineno,
            col=node.col_offset,
            public=not node.name.startswith("_") or (
                node.name.startswith("__") and node.name.endswith("__")
            ),
            params=args,
            has_rng_param="rng" in args,
            has_seed_param="seed" in args,
        )
        # Nested defs fold their facts into the enclosing function: a
        # closure runs (at the latest) when its parent's caller invokes
        # it, which is the right granularity for reachability rules.
        owner = self._func_stack[0] if self._func_stack else info
        if owner is info:
            self.summary.functions[qual] = info
            if _annotation_is_set(node.returns):
                self.summary.set_returning.append(qual)
        self._func_stack.append(owner)
        for child in node.body:
            self.visit(child)
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- module-global writes --------------------------------------------

    def _record_module_assign(self, node: ast.Assign | ast.AnnAssign) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        value = node.value
        is_tlocal = (
            isinstance(value, ast.Call)
            and self.imports.resolve(dotted_name(value.func))
            in ("threading.local", "_thread._local")
        )
        for target in targets:
            if isinstance(target, ast.Name):
                self._module_globals.add(target.id)
                if is_tlocal:
                    self.summary.threading_locals.append(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._func_stack:
            self._record_module_assign(node)
        else:
            self._record_global_write(node.targets, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._func_stack:
            self._record_module_assign(node)
        else:
            self._record_global_write([node.target], node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._func_stack:
            self._record_global_write([node.target], node)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        if self._func_stack:
            info = self._func_stack[-1]
            for name in node.names:
                info.global_writes.append(
                    (node.lineno, node.col_offset, name)
                )

    def _record_global_write(
        self, targets: list[ast.expr], node: ast.stmt
    ) -> None:
        """Mutation of a module-level binding from inside a function."""
        info = self._func_stack[-1]
        declared = {p for p in info.params}
        for target in targets:
            base = target
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if not isinstance(base, ast.Name):
                continue
            name = base.id
            if name in declared or name not in self._module_globals:
                continue
            if base is target:
                continue  # plain `x = ...` rebinds a local shadow
            if name in self.summary.threading_locals:
                continue  # the sanctioned per-worker state pattern
            info.global_writes.append(
                (node.lineno, node.col_offset, name)
            )

    # -- calls -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        raw = dotted_name(node.func)
        resolved = self.imports.resolve(raw) if raw else ""
        if self._func_stack:
            info = self._func_stack[-1]
            if raw:
                info.calls.append((raw, node.lineno))
        if resolved:
            rng_desc = _unseeded_rng_call(node, resolved)
            if rng_desc is not None:
                site = (node.lineno, node.col_offset, rng_desc)
                if self._func_stack:
                    self._func_stack[-1].rng_sites.append(site)
                else:
                    self.summary.module_rng_sites.append(site)
            self._record_seed_use(node, resolved, raw)
            self._record_worker_registration(node, resolved)
        self.generic_visit(node)

    def _record_seed_use(
        self, node: ast.Call, resolved: str, raw: str
    ) -> None:
        """Track how root-seed expressions flow into RNG constructions."""
        if not self._func_stack:
            return
        info = self._func_stack[-1]
        if resolved == "numpy.random.default_rng" and node.args:
            arg = node.args[0]
            if is_bare_ref(arg):
                expr = ast.unparse(arg)
                info.seed_uses.append(
                    (node.lineno, node.col_offset, expr, "direct")
                )
                if info.has_seed_param and expr == "seed":
                    info.seed_role = info.seed_role or "consumer"
            elif info.has_seed_param and any(
                isinstance(n, ast.Name) and n.id == "seed"
                for n in ast.walk(arg)
            ):
                info.seed_role = "deriver"
        else:
            # ``f(..., seed=expr)`` / positional seed into a project
            # factory: recorded raw, classified by the project pass once
            # the callee's seed_role is known.
            for kw in node.keywords:
                if kw.arg == "seed" and is_bare_ref(kw.value):
                    info.seed_uses.append(
                        (
                            node.lineno, node.col_offset,
                            ast.unparse(kw.value), f"factory:{raw}",
                        )
                    )

    def _record_worker_registration(
        self, node: ast.Call, resolved: str
    ) -> None:
        """Functions handed to executors run in workers: record them."""
        tail = resolved.rpartition(".")[2]
        if tail in ("submit", "map"):
            if node.args and (name := dotted_name(node.args[0])):
                self.summary.worker_registrations.append(
                    (name, node.lineno)
                )
        for kw in node.keywords:
            if kw.arg == "initializer" and (
                name := dotted_name(kw.value)
            ):
                self.summary.worker_registrations.append(
                    (name, node.lineno)
                )


#: Loop-body method calls whose effect depends on iteration order.
ORDER_SENSITIVE_METHODS = frozenset({
    "append", "extend", "insert", "write", "writelines", "put", "send",
})

#: Builtins whose result is order-independent or explicitly ordered —
#: iterating their output is never a GL103 concern.
_ORDER_NEUTRAL_CALLS = frozenset({
    "sorted", "enumerate", "range", "list", "tuple", "reversed", "zip",
    "min", "max", "sum", "len", "dict", "items", "keys", "values",
})


def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function/class defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _loop_body_order_sensitive(loop: ast.For) -> bool:
    """Whether a for-loop body has effects that replay iteration order."""
    for node in loop.body:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Yield, ast.YieldFrom, ast.AugAssign)):
                return True
            if isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ORDER_SENSITIVE_METHODS
                ):
                    return True
                if isinstance(func, ast.Name) and func.id == "print":
                    return True
            if isinstance(sub, ast.Assign) and any(
                isinstance(t, ast.Subscript) for t in sub.targets
            ):
                return True
    return False


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """Definitely-a-set expressions: literals, comprehensions, set()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return isinstance(node, ast.Name) and node.id in set_names


def _scope_set_names(own: list[ast.AST]) -> set[str]:
    """Names bound to a definitely-set value within one scope."""
    names: set[str] = set()
    for node in own:
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, names):
            names.update(
                t.id for t in node.targets if isinstance(t, ast.Name)
            )
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _annotation_is_set(node.annotation) or (
                node.value is not None and _is_set_expr(node.value, names)
            ):
                names.add(node.target.id)
    return names


def _collect_set_iter_sites(tree: ast.Module) -> list[list[Any]]:
    """GL103 candidates: ``[line, col, kind, ref, span]`` records.

    ``kind`` is ``"definite"`` (the iterable is provably a set) or
    ``"call"`` (the iterable is a call whose return type only the
    project symbol table knows — ``ref`` holds the raw dotted callee).
    ``span`` is the iterable expression's single-line location for the
    ``sorted(...)`` autofix, or ``None`` when it spans lines.
    """
    scopes: list[ast.AST] = [tree] + [
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    sites: list[list[Any]] = []
    for scope in scopes:
        own = list(_own_nodes(scope))
        set_names = _scope_set_names(own)
        candidates: list[tuple[ast.expr, bool]] = []
        for node in own:
            if isinstance(node, ast.For):
                candidates.append(
                    (node.iter, _loop_body_order_sensitive(node))
                )
            elif isinstance(node, ast.ListComp):
                candidates.extend(
                    (gen.iter, True) for gen in node.generators
                )
        for expr, sensitive in candidates:
            if not sensitive:
                continue
            if _is_set_expr(expr, set_names):
                kind, ref = "definite", ""
            elif isinstance(expr, ast.Call) and (
                raw := dotted_name(expr.func)
            ):
                tail = raw.rpartition(".")[2]
                if tail in _ORDER_NEUTRAL_CALLS:
                    continue
                kind, ref = "call", raw
            else:
                continue
            span = (
                [
                    expr.lineno, expr.col_offset,
                    expr.end_lineno, expr.end_col_offset,
                ]
                if expr.end_lineno == expr.lineno
                else None
            )
            sites.append([expr.lineno, expr.col_offset, kind, ref, span])
    return sites


def extract_module(
    tree: ast.Module, path: Path, lines: list[str]
) -> ModuleSummary:
    """Build the :class:`ModuleSummary` for one parsed module."""
    summary = ModuleSummary(
        module=module_name_for(path), path=str(path)
    )
    noqa, malformed = parse_noqa(lines)
    summary.noqa = noqa
    summary.malformed_noqa = malformed
    extractor = _ModuleExtractor(summary)
    extractor.visit(tree)
    summary.imports = dict(extractor.imports.aliases)
    summary.set_iter_sites = _collect_set_iter_sites(tree)
    return summary


# ---------------------------------------------------------------------------
# pass 2 linkage


class ProjectModel:
    """Linked view over every extracted module: the semantic model.

    Provides the resolution and reachability queries the cross-module
    rules are written against. Construction is cheap (no AST work), so
    the model is rebuilt from (possibly cached) summaries on every run.
    """

    def __init__(self, summaries: list[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {
            s.module: s for s in summaries
        }
        #: "module:qual" → FunctionSummary, the global symbol table.
        self.functions: dict[str, FunctionSummary] = {}
        for s in summaries:
            for qual, info in s.functions.items():
                self.functions[f"{s.module}:{qual}"] = info
        self._edges: dict[str, list[str]] = {}
        for s in summaries:
            for qual, info in s.functions.items():
                key = f"{s.module}:{qual}"
                self._edges[key] = [
                    callee
                    for raw, _line in info.calls
                    if (callee := self.resolve_call(s, qual, raw))
                ]

    # -- resolution ------------------------------------------------------

    def resolve_call(
        self, summary: ModuleSummary, caller_qual: str, raw: str
    ) -> str | None:
        """Resolve a raw dotted callee to a ``module:qual`` key."""
        if raw.startswith("self."):
            cls = caller_qual.rpartition(".")[0]
            if cls:
                key = f"{summary.module}:{cls}.{raw[5:]}"
                if key in self.functions:
                    return key
            return None
        # Local function / method in the same module.
        for candidate in (raw, raw.replace(".", ".", 1)):
            key = f"{summary.module}:{candidate}"
            if key in self.functions:
                return key
        # Through the import table.
        resolved = _resolve_alias(summary.imports, raw)
        if resolved is None:
            return None
        module, _, qual = resolved
        key = f"{module}:{qual}"
        if key in self.functions:
            return key
        # ``from x import Class`` then ``Class()`` → its __init__.
        key = f"{module}:{qual}.__init__"
        if key in self.functions:
            return key
        return None

    def resolve_name(self, summary: ModuleSummary, raw: str) -> str | None:
        """Resolve a raw dotted reference to a ``module:qual`` key."""
        return self.resolve_call(summary, "", raw)

    # -- reachability ----------------------------------------------------

    def reachable_from(self, roots: list[str]) -> set[str]:
        """Transitive closure over the call graph from ``roots``."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self._edges]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(
                c for c in self._edges.get(key, ()) if c not in seen
            )
        return seen

    def seeded_entry_points(self) -> list[str]:
        """Public functions owning an ``rng``/``seed`` parameter.

        These are the seeded-determinism contract surface: everything
        they (transitively) call must draw randomness from the threaded
        generator, never from fresh entropy or process-global state.
        """
        return [
            key
            for key, info in self.functions.items()
            if info.public and (info.has_rng_param or info.has_seed_param)
        ]

    def worker_functions(self) -> set[str]:
        """Functions (transitively) executed inside pool workers."""
        roots: list[str] = []
        for summary in self.modules.values():
            for raw, _line in summary.worker_registrations:
                key = self.resolve_name(summary, raw)
                if key is not None:
                    roots.append(key)
        return self.reachable_from(roots)

    def seed_role(self, summary: ModuleSummary, raw_callee: str) -> str:
        """``seed_role`` of a project factory a root seed is passed to."""
        key = self.resolve_call(summary, "", raw_callee)
        if key is None:
            return ""
        return self.functions[key].seed_role


def _resolve_alias(
    imports: dict[str, str], raw: str
) -> tuple[str, str, str] | None:
    """Split an import-resolved dotted name into (module, sep, qualname).

    ``mod.f`` with ``mod`` → ``repro.net.scene`` resolves to
    ``("repro.net.scene", ".", "f")``; ``f`` with ``f`` →
    ``repro.net.scene.f`` resolves the same way.
    """
    head, _, rest = raw.partition(".")
    target = imports.get(head)
    if target is None:
        return None
    full = f"{target}.{rest}" if rest else target
    module, _, qual = full.rpartition(".")
    if not module or not qual:
        return None
    return module, ".", qual
