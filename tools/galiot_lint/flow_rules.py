"""Flow-aware per-module rules: GL102 and the GL2xx/GL30x families.

These rules still run one module at a time (so they plug into the same
per-file pass as the GL00x rules and their findings cache per file),
but unlike the GL00x checks they reason about *paths* through a
function body: which statements run between acquiring a resource and
releasing it, whether a release is reachable on the exception path,
which class ends up owning a handle stored on ``self``.

The truly cross-module rules (GL101/GL103/GL104/GL301) live in
:mod:`.project_rules` and consume the summaries built by
:mod:`.semantic`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from .rules import ModuleContext, Rule, _call_name
from .semantic import (
    WALL_CLOCK_CALLS,
    _ImportTable,
    _own_nodes,
    dotted_name,
    module_name_for,
)

__all__ = ["FLOW_RULES"]

#: Module prefixes that run on a *modelled* time axis: the fault plans,
#: the network simulator, the backhaul/resilience clocks, the cloud
#: dispatcher and the ingestion service's control plane (admission,
#: queues, autoscaling model) all take time as data
#: (``at_time``/``duration_s``), so a wall-clock read inside them
#: silently couples results to host load. The service's *execution*
#: plane (``repro.service.ingest``/``loadgen``) measures real latency
#: and is deliberately absent.
SIM_TIME_PREFIXES = (
    "repro.faults",
    "repro.net",
    "repro.gateway.backhaul",
    "repro.gateway.resilience",
    "repro.cloud.dispatch",
    "repro.service.admission",
    "repro.service.autoscale",
    "repro.service.queues",
)

#: Terminal callee names treated as executor/pool constructions.
EXECUTOR_CLASSES = frozenset({
    "ProcessPoolExecutor", "ThreadPoolExecutor", "Pool",
    "ParallelCloudService",
})

#: Calls that log/count/propagate an error inside an except handler.
TELEMETRY_CALL_NAMES = frozenset({
    "count", "record", "gauge", "absorb", "absorb_snapshot", "log",
    "warning", "warn", "error", "exception", "critical", "debug",
    "info", "print", "fail",
})

_FuncNode = ast.FunctionDef | ast.AsyncFunctionDef


def _module_dotted(context: ModuleContext) -> str:
    return module_name_for(context.path)


def _is_test_context(context: ModuleContext) -> bool:
    parts = set(context.package_parts)
    return (
        "tests" in parts
        or context.module_name.startswith("test_")
        or context.module_name == "conftest"
    )


def _import_table(tree: ast.Module, module: str) -> _ImportTable:
    table = _ImportTable()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            table.add_import(node)
        elif isinstance(node, ast.ImportFrom):
            table.add_import_from(node, module)
    return table


def _functions(tree: ast.Module) -> Iterator[tuple[_FuncNode, str | None]]:
    """Every function def with its enclosing class name (or ``None``)."""
    stack: list[tuple[ast.AST, str | None]] = [(tree, None)]
    while stack:
        node, cls = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FuncNode):
                yield child, cls
                stack.append((child, cls))
            elif isinstance(child, ast.ClassDef):
                stack.append((child, child.name))
            elif not isinstance(child, ast.Lambda):
                stack.append((child, cls))


class WallClockInSimPath(Rule):
    """GL102: wall-clock read inside a simulated-time module.

    ``repro.faults``, ``repro.net.*``, the backhaul/resilience layer and
    the cloud dispatcher model time explicitly (``at_time`` arguments,
    modelled clocks) so that runs are reproducible and host-speed
    independent. A ``time.time()``/``time.monotonic()``/
    ``datetime.now()`` call inside those modules couples results to the
    machine the test happens to run on. Thread modelled time through
    instead; where real wall-clock is the *point* (e.g. a hang fault
    that must trip a real decode timeout), suppress with
    ``# noqa: GL102`` and a justifying comment.
    """

    code = "GL102"
    name = "wall-clock-in-sim-path"

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        module = _module_dotted(context)
        if not module.startswith(SIM_TIME_PREFIXES):
            return
        imports = _import_table(tree, module)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func)
            resolved = imports.resolve(raw) if raw else ""
            if resolved in WALL_CLOCK_CALLS:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"wall-clock call {resolved}() in simulated-time "
                    f"module {module}: thread modelled time "
                    "(at_time/duration_s) instead so results do not "
                    "depend on host speed",
                )


# ---------------------------------------------------------------------------
# GL2xx — resource lifecycle


@dataclass
class _Acquisition:
    """One resource acquired in a function body."""

    kind: str  # "shm_create" | "shm_attach" | "executor" | "file"
    node: ast.stmt
    line: int
    col: int
    var: str | None  # local name it is bound to, if any
    self_attr: str | None  # "_pool" for `self._pool = ...`


_RELEASE_METHODS = {
    "shm_create": frozenset({"unlink"}),
    "shm_attach": frozenset({"close"}),
    "executor": frozenset({"shutdown", "close", "terminate"}),
    "file": frozenset({"close"}),
}

_KIND_LABEL = {
    "shm_create": "SharedMemory block (create=True)",
    "shm_attach": "SharedMemory attachment",
    "executor": "executor/pool",
    "file": "file handle",
}

_KIND_RELEASE_HINT = {
    "shm_create": "unlink() (and close()) it",
    "shm_attach": "close() it",
    "executor": "shutdown()/close() it",
    "file": "close() it (or use `with open(...)`)",
}

_KIND_CODE = {
    "shm_create": "GL201",
    "shm_attach": "GL201",
    "executor": "GL202",
    "file": "GL203",
}


def _classify_acquisition(call: ast.Call, acquirers: dict[str, str]) -> str | None:
    """Resource kind acquired by ``call``, or ``None``."""
    name = _call_name(call)
    raw = dotted_name(call.func)
    if name == "SharedMemory":
        create = any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in call.keywords
        )
        return "shm_create" if create else "shm_attach"
    if name in EXECUTOR_CLASSES:
        return "executor"
    if isinstance(call.func, ast.Name) and name == "open":
        return "file"
    # A same-module helper that returns an acquisition ("acquirer").
    key = raw if raw.startswith("self.") else name
    return acquirers.get(key)


def _find_acquirers(tree: ast.Module) -> dict[str, str]:
    """Same-module functions whose return value is an acquisition.

    ``def _make_pool(self): ... return pool_cls(...)`` where the body
    mentions an executor class is an executor acquirer: calls to it are
    acquisitions at the call site, and the *callee* itself is exempt
    (its return is an ownership transfer by design).
    """
    acquirers: dict[str, str] = {}
    for func, cls in _functions(tree):
        returns_call = any(
            isinstance(n, ast.Return) and isinstance(n.value, ast.Call)
            for n in _own_nodes(func)
        )
        if not returns_call:
            continue
        mentions = {
            n.id
            for n in ast.walk(func)
            if isinstance(n, ast.Name)
        }
        kind = None
        if mentions & EXECUTOR_CLASSES:
            kind = "executor"
        elif "SharedMemory" in mentions:
            kind = "shm_attach"
        if kind is None:
            continue
        acquirers[func.name] = kind
        if cls is not None:
            acquirers[f"self.{func.name}"] = kind
    return acquirers


def _with_bound_calls(func: _FuncNode) -> set[int]:
    """ids of Call nodes managed by a ``with`` (or ``enter_context``)."""
    managed: set[int] = set()
    for node in _own_nodes(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    managed.add(id(expr))
                    # with closing(open(...)) / with suppress(...): ...
                    managed.update(
                        id(a) for a in expr.args if isinstance(a, ast.Call)
                    )
        elif isinstance(node, ast.Call):
            func_name = _call_name(node)
            if func_name in ("enter_context", "callback", "push"):
                managed.update(
                    id(a) for a in node.args if isinstance(a, ast.Call)
                )
    return managed


def _collect_acquisitions(
    func: _FuncNode, acquirers: dict[str, str]
) -> list[_Acquisition]:
    managed = _with_bound_calls(func)
    out: list[_Acquisition] = []
    for node in _own_nodes(func):
        if not isinstance(node, (ast.Assign, ast.Expr)):
            continue
        value = node.value
        if not isinstance(value, ast.Call) or id(value) in managed:
            continue
        kind = _classify_acquisition(value, acquirers)
        if kind is None:
            continue
        var = None
        self_attr = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                var = target.id
            elif isinstance(target, ast.Attribute):
                if (
                    isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self_attr = target.attr
                else:
                    continue  # stored on another object: handoff
            else:
                continue  # tuple/subscript target: treat as handoff
        out.append(
            _Acquisition(
                kind=kind, node=node,
                line=value.lineno, col=value.col_offset,
                var=var, self_attr=self_attr,
            )
        )
    return out


def _class_released_attrs(tree: ast.Module) -> dict[str, set[str]]:
    """Per class: ``self.<attr>`` names some method releases or dels."""
    released: dict[str, set[str]] = {}
    for func, cls in _functions(tree):
        if cls is None:
            continue
        attrs = released.setdefault(cls, set())
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                target = node.func.value
                if (
                    node.func.attr
                    in ("close", "shutdown", "unlink", "terminate")
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
            elif isinstance(node, ast.Delete):
                for tgt in node.targets:
                    if (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        attrs.add(tgt.attr)
    return released


def _var_escapes(func: _FuncNode, var: str) -> bool:
    """Ownership transfer: returned, yielded, or stored on an object."""
    for node in _own_nodes(func):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = getattr(node, "value", None)
            if value is not None and any(
                isinstance(n, ast.Name) and n.id == var
                for n in ast.walk(value)
            ):
                return True
        elif isinstance(node, ast.Assign):
            stores_var = any(
                isinstance(n, ast.Name) and n.id == var
                for n in ast.walk(node.value)
            )
            if stores_var and any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            ):
                return True
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            if name in ("append", "extend", "add", "put", "insert") and any(
                isinstance(n, ast.Name) and n.id == var
                for a in node.args
                for n in ast.walk(a)
            ):
                return True
    return False


def _release_sites(
    func: _FuncNode, var: str, kind: str
) -> list[tuple[ast.Call, bool]]:
    """``(call, in_finally)`` for each release of ``var`` in ``func``.

    A ``with var:`` / ``with closing(var):`` block counts as an
    exception-safe release.
    """
    wanted = _RELEASE_METHODS[kind] | {"close"}
    sites: list[tuple[ast.Call, bool]] = []

    def visit(node: ast.AST, in_finally: bool) -> None:
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if any(
                    isinstance(n, ast.Name) and n.id == var
                    for n in ast.walk(item.context_expr)
                ):
                    fake = ast.Call(
                        func=ast.Name(id="with", ctx=ast.Load()),
                        args=[], keywords=[],
                    )
                    ast.copy_location(fake, item.context_expr)
                    sites.append((fake, True))
            for child in node.body:
                visit(child, in_finally)
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in wanted
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == var
        ):
            sites.append((node, in_finally))
        if isinstance(node, ast.Try):
            for child in (*node.body, *node.orelse):
                visit(child, in_finally)
            for handler in node.handlers:
                for child in handler.body:
                    visit(child, in_finally)
            for child in node.finalbody:
                visit(child, True)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, in_finally)

    for stmt in func.body:
        visit(stmt, False)
    return sites


def _has_required_release(
    sites: list[tuple[ast.Call, bool]], kind: str
) -> bool:
    required = _RELEASE_METHODS[kind]
    return any(
        isinstance(call.func, ast.Attribute) and call.func.attr in required
        or _call_name(call) == "with"
        for call, _fin in sites
    )


def _calls_between(func: _FuncNode, line_lo: int, line_hi: int) -> bool:
    """Any call strictly between two lines (i.e. something can raise)."""
    for node in _own_nodes(func):
        if (
            isinstance(node, ast.Call)
            and line_lo < node.lineno < line_hi
        ):
            return True
    return False


class _ResourceRule(Rule):
    """Shared machinery for GL201/GL202/GL203/GL204."""

    def _analyze(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[str, int, int, str]]:
        if _is_test_context(context):
            return
        acquirers = _find_acquirers(tree)
        released_attrs = _class_released_attrs(tree)
        acquirer_names = {k for k in acquirers if not k.startswith("self.")}
        for func, cls in _functions(tree):
            if func.name in acquirer_names:
                continue  # its return IS the handoff
            for acq in _collect_acquisitions(func, acquirers):
                yield from self._check_acquisition(
                    func, cls, acq, released_attrs
                )

    def _check_acquisition(
        self,
        func: _FuncNode,
        cls: str | None,
        acq: _Acquisition,
        released_attrs: dict[str, set[str]],
    ) -> Iterator[tuple[str, int, int, str]]:
        label = _KIND_LABEL[acq.kind]
        hint = _KIND_RELEASE_HINT[acq.kind]
        leak_code = _KIND_CODE[acq.kind]
        if acq.self_attr is not None:
            owner = released_attrs.get(cls or "", set())
            if acq.self_attr not in owner:
                yield (
                    leak_code, acq.line, acq.col,
                    f"{label} stored on self.{acq.self_attr} but no "
                    f"method of {cls or 'this class'} ever releases it: "
                    f"add a close()/shutdown() that {hint}",
                )
            return
        if acq.var is None:
            yield (
                leak_code, acq.line, acq.col,
                f"{label} acquired and immediately dropped: bind it and "
                f"{hint}",
            )
            return
        sites = _release_sites(func, acq.var, acq.kind)
        if not _has_required_release(sites, acq.kind):
            if _var_escapes(func, acq.var):
                return  # ownership transferred to the caller/container
            yield (
                leak_code, acq.line, acq.col,
                f"{label} {acq.var!r} acquired but never released in "
                f"{func.name}() and never handed off: {hint} on every "
                "exit path (try/finally or a with-block)",
            )
            return
        if any(fin for _call, fin in sites):
            return
        first = min(call.lineno for call, _fin in sites)
        if _calls_between(func, acq.line, first):
            yield (
                "GL204", acq.line, acq.col,
                f"{label} {acq.var!r} is released only on the success "
                f"path of {func.name}(): an exception between line "
                f"{acq.line} and line {first} leaks it — move the "
                "release into try/finally or use a with-block",
            )


class SharedMemoryLifecycle(_ResourceRule):
    """GL201: a SharedMemory block is acquired without a guaranteed release.

    ``SharedMemory(create=True)`` allocates a kernel object that outlives
    the process unless ``unlink()`` runs; an attach-side handle pins the
    mapping until ``close()``. The repo convention (PR 6) is
    *parent-owns-unlink*: the creator is responsible for ``unlink()`` on
    every path — including drain/quarantine/error — and workers only
    ``close()`` their attachment. A block returned to the caller, stored
    on a container, or staged onto another object is an explicit
    ownership handoff and is exempt; a block stored on ``self`` makes
    the class the owner, which must release it in some method.
    """

    code = "GL201"
    name = "shm-lifecycle"

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        for code, line, col, msg in self._analyze(tree, context):
            if code == self.code:
                yield line, col, msg


class ExecutorLifecycle(_ResourceRule):
    """GL202: an executor/pool is created without a guaranteed shutdown.

    A ``ProcessPoolExecutor``/``ThreadPoolExecutor``/``Pool`` (or this
    repo's ``ParallelCloudService``) left unreleased keeps worker
    processes and their pipes alive; under pytest that turns into hung
    test sessions and leaked semaphores. Same ownership model as GL201:
    return/store handoffs are exempt, ``self`` storage makes the class
    the owner, everything else needs ``shutdown()``/``close()`` on all
    exits.
    """

    code = "GL202"
    name = "executor-lifecycle"

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        for code, line, col, msg in self._analyze(tree, context):
            if code == self.code:
                yield line, col, msg


class FileLifecycle(_ResourceRule):
    """GL203: ``open()`` without ``with`` or a guaranteed ``close()``.

    A file handle bound outside a ``with`` block relies on GC for
    closure — which CPython happens to do promptly and PyPy does not,
    and which drops buffered writes on error paths either way. Use
    ``with open(...) as fh`` (or close in a ``finally``); returning the
    handle transfers ownership and is exempt.
    """

    code = "GL203"
    name = "file-lifecycle"

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        for code, line, col, msg in self._analyze(tree, context):
            if code == self.code:
                yield line, col, msg


class ReleaseNotExceptionSafe(_ResourceRule):
    """GL204: a release exists but only on the success path.

    The function does release its pool/shm/file — but the release sits
    in straight-line code after calls that can raise, so any exception
    in between leaks the resource. This is exactly how a crashed chaos
    drill leaves worker pools behind. Move the release into a
    ``finally`` block or manage the resource with ``with``.
    """

    code = "GL204"
    name = "release-not-exception-safe"

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        for code, line, col, msg in self._analyze(tree, context):
            if code == self.code:
                yield line, col, msg


# ---------------------------------------------------------------------------
# GL30x — concurrency (per-module parts)


class ClosureOverPoolBoundary(Rule):
    """GL302: a closure/lambda is shipped to an executor.

    ``pool.submit(lambda: decode(samples), ...)`` pickles the closure's
    captured environment for a process pool — including any captured
    ndarray, byte-for-byte, through the pickle pipe that the shared-
    memory fast path exists to avoid (and lambdas do not pickle at
    all, failing only at runtime). Submit a module-level function and
    pass data explicitly, so the shm handoff can see it.
    """

    code = "GL302"
    name = "closure-over-pool-boundary"

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        if _is_test_context(context):
            return
        for func, _cls in _functions(tree):
            nested = {
                n.name
                for n in _own_nodes(func)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for node in _own_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                is_pool_call = (
                    isinstance(callee, ast.Attribute)
                    and callee.attr in ("submit", "map")
                )
                shipped: list[ast.expr] = []
                if is_pool_call and node.args:
                    shipped.append(node.args[0])
                shipped.extend(
                    kw.value
                    for kw in node.keywords
                    if kw.arg == "initializer"
                )
                for expr in shipped:
                    if isinstance(expr, ast.Lambda) or (
                        isinstance(expr, ast.Name) and expr.id in nested
                    ):
                        yield (
                            expr.lineno,
                            expr.col_offset,
                            "closure shipped across the pool boundary: "
                            "its captured environment (arrays included) "
                            "rides the pickle pipe — submit a "
                            "module-level function and pass data as "
                            "arguments",
                        )


class SwallowedException(Rule):
    """GL303: ``except Exception`` swallows the error without a trace.

    A broad handler whose body neither re-raises nor records anything
    (telemetry counter, log call) erases the failure: the exact bug
    PR 6 fixed by hand in ``try_decode``, where a brittle demodulator's
    crash became an invisible miss. Count it
    (``telemetry.count("...errors")``), log it, or narrow the handler
    to the exception types the code actually expects.
    """

    code = "GL303"
    name = "swallowed-exception"

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        if _is_test_context(context):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                continue  # bare except is GL304's finding
            names = self._handler_type_names(node.type)
            if not names & self._BROAD:
                continue
            if self._body_accounts_for_error(node.body):
                continue
            yield (
                node.lineno,
                node.col_offset,
                f"except {'/'.join(sorted(names))} drops the error "
                "without a trace: count it on a telemetry counter, log "
                "it, re-raise, or narrow the handler to expected types",
            )

    @staticmethod
    def _handler_type_names(node: ast.expr) -> set[str]:
        if isinstance(node, ast.Tuple):
            return {
                n.id for n in node.elts if isinstance(n, ast.Name)
            }
        if isinstance(node, ast.Name):
            return {node.id}
        return set()

    @staticmethod
    def _body_accounts_for_error(body: list[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                if isinstance(node, ast.Call):
                    name = _call_name(node)
                    if name in TELEMETRY_CALL_NAMES:
                        return True
        return False


class BareExcept(Rule):
    """GL304: bare ``except:`` catches ``SystemExit``/``KeyboardInterrupt``.

    A bare handler intercepts interpreter-shutdown exceptions along
    with everything else, turning Ctrl-C into silent corruption in
    drain loops. Catch ``Exception`` instead (the autofix does exactly
    this); then GL303 still checks that the error is accounted for.
    """

    code = "GL304"
    name = "bare-except"

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield (
                    node.lineno,
                    node.col_offset,
                    "bare `except:` also catches SystemExit/"
                    "KeyboardInterrupt: catch `Exception` (or narrower) "
                    "instead",
                )


FLOW_RULES: tuple[type[Rule], ...] = (
    WallClockInSimPath,
    SharedMemoryLifecycle,
    ExecutorLifecycle,
    FileLifecycle,
    ReleaseNotExceptionSafe,
    ClosureOverPoolBoundary,
    SwallowedException,
    BareExcept,
)
