"""Baseline ratcheting: pre-existing findings gate, new ones block.

The baseline file (``.galiot-lint-baseline.json``, checked in) maps a
*fingerprint* of each accepted finding to how many instances of it are
tolerated. Fingerprints hash ``relative-path | code | message`` — no
line numbers — so unrelated edits that shift a tolerated finding up or
down the file do not break CI, while any *new* finding (or a new copy
of an old one) fails the gate. Fixing a tolerated finding makes its
baseline entry stale; ``--update-baseline`` re-records the current
state, which is only ever allowed to shrink in review (the ratchet).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .engine import Finding

__all__ = [
    "BaselineResult",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".galiot-lint-baseline.json"


def _relpath(path: str, root: Path) -> str:
    try:
        return Path(path).resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return Path(path).as_posix()


def fingerprint(finding: Finding, root: Path) -> str:
    """Line-insensitive identity of a finding for baseline matching."""
    key = f"{_relpath(finding.path, root)}|{finding.code}|{finding.message}"
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: Path) -> dict[str, int]:
    """Fingerprint → tolerated count; empty mapping if absent/invalid."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    findings = data.get("findings")
    if not isinstance(findings, dict):
        return {}
    return {
        str(k): int(v)
        for k, v in findings.items()
        if isinstance(v, int) and v > 0
    }


def write_baseline(
    path: Path, findings: list[Finding], root: Path
) -> dict[str, int]:
    """Record the current findings as the new tolerated baseline."""
    counts: dict[str, int] = {}
    notes: dict[str, str] = {}
    for finding in findings:
        fp = fingerprint(finding, root)
        counts[fp] = counts.get(fp, 0) + 1
        notes.setdefault(
            fp,
            f"{_relpath(finding.path, root)}: {finding.code} "
            f"{finding.message}",
        )
    doc = {
        "version": BASELINE_VERSION,
        "comment": (
            "Tolerated pre-existing galiot-lint findings (ratchet: this "
            "file only shrinks). Regenerate with --update-baseline."
        ),
        "findings": {fp: counts[fp] for fp in sorted(counts)},
        "notes": {fp: notes[fp] for fp in sorted(notes)},
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return counts


class BaselineResult:
    """Outcome of filtering findings through a baseline."""

    def __init__(
        self,
        new: list[Finding],
        suppressed: int,
        stale: dict[str, int],
    ) -> None:
        self.new = new
        self.suppressed = suppressed
        #: Entries in the baseline no longer matched by any finding
        #: (fingerprint → unused tolerance): candidates for ratcheting.
        self.stale = stale


def apply_baseline(
    findings: list[Finding], baseline: dict[str, int], root: Path
) -> BaselineResult:
    """Split findings into new (reported) and baselined (tolerated)."""
    budget = dict(baseline)
    new: list[Finding] = []
    suppressed = 0
    for finding in findings:
        fp = fingerprint(finding, root)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            suppressed += 1
        else:
            new.append(finding)
    stale = {fp: left for fp, left in budget.items() if left > 0}
    return BaselineResult(new=new, suppressed=suppressed, stale=stale)
