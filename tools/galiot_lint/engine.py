"""Lint engine: two-pass orchestration over the project model.

v2 runs in two passes. Pass 1 handles each file independently — parse,
extract a :class:`~galiot_lint.semantic.ModuleSummary`, run every
per-module rule (the GL00x conventions plus the flow-aware
GL102/GL2xx/GL30x checks), apply ``# noqa`` suppressions — and is what
the on-disk cache memoizes per file. Pass 2 links the summaries into a
:class:`~galiot_lint.semantic.ProjectModel` and runs the cross-module
rules (GL101/GL103/GL104/GL301); it re-runs on every invocation but
touches only summaries, so a fully warm run never re-parses a file.

Engine-level codes: GL900 (syntax error) and GL901 (unknown code in a
``# noqa`` comment — reported instead of silently ignored).

The v1 library surface (``lint_source``/``lint_file``/``lint_paths``/
``select_rules``/``Finding``) is preserved; ``lint_source`` builds a
single-module project model so the cross-module rules still run in
degraded (one-file) form.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .fixes import Fix, bare_except_fix, sorted_wrap_fix
from .flow_rules import FLOW_RULES
from .project_rules import PROJECT_RULES, ProjectRule, project_rules_by_code
from .rules import ALL_RULES, ModuleContext, Rule, rules_by_code
from .semantic import ModuleSummary, ProjectModel, extract_module

__all__ = [
    "Finding",
    "ProjectRun",
    "all_rules_by_code",
    "lint_source",
    "lint_file",
    "lint_paths",
    "run_project",
    "select_rules",
    "select_project_rules",
]

#: Every per-module rule class: repo conventions + flow-aware checks.
MODULE_RULES: tuple[type[Rule], ...] = ALL_RULES + FLOW_RULES

#: Engine-level codes that are always active (not selectable rules).
ENGINE_CODES = frozenset({"GL900", "GL901"})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location (ruff-compatible ordering)."""

    path: str
    line: int
    col: int
    code: str
    message: str
    fix: Fix | None = field(default=None, compare=False)

    def render(self) -> str:
        """Ruff-style ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def all_rules_by_code() -> dict[str, type[Rule] | type[ProjectRule]]:
    """Every registered rule — per-module and cross-module — by code."""
    registry: dict[str, type[Rule] | type[ProjectRule]] = {
        rule.code: rule for rule in MODULE_RULES
    }
    registry.update(project_rules_by_code())
    return registry


def _validate_codes(codes: Iterable[str], known: Iterable[str]) -> list[str]:
    known = list(known)
    out = []
    for code in codes:
        code = code.strip().upper()
        if not code:
            continue
        if not any(k.startswith(code) for k in known):
            raise ValueError(f"unknown rule code {code!r}")
        out.append(code)
    return out


def _filter_codes(
    codes: list[str],
    select: Iterable[str] | None,
    ignore: Iterable[str] | None,
) -> list[str]:
    known = list(all_rules_by_code())
    selected = codes
    if select is not None:
        wanted = _validate_codes(select, known)
        selected = [c for c in selected if any(c.startswith(w) for w in wanted)]
    if ignore is not None:
        unwanted = _validate_codes(ignore, known)
        selected = [
            c for c in selected if not any(c.startswith(w) for w in unwanted)
        ]
    return selected


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Instantiate the per-module rule set after ``--select``/``--ignore``.

    ``select`` keeps only the listed codes (prefix match, so ``GL`` or
    ``GL00`` select families); ``ignore`` then removes codes the same
    way. Unknown codes raise ``ValueError`` so typos fail loudly.
    Validation runs against the *full* registry (cross-module rules
    included) — selecting ``GL104`` is valid here and simply yields an
    empty per-module set; pair with :func:`select_project_rules`.
    """
    known = {rule.code: rule for rule in MODULE_RULES}
    codes = _filter_codes(list(known), select, ignore)
    return [known[c]() for c in codes]


def select_project_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[ProjectRule]:
    """Instantiate the cross-module rule set after filtering."""
    known = project_rules_by_code()
    codes = _filter_codes(list(known), select, ignore)
    return [known[c]() for c in codes]


# ---------------------------------------------------------------------------
# pass 1: per-module


def _suppressed(noqa: dict[int, Any], line: int, code: str) -> bool:
    entry = noqa.get(line)
    if entry is None:
        return False
    if entry == "all":
        return True
    return code in entry


def _attach_fix(
    code: str, line: int, col: int, lines: list[str]
) -> Fix | None:
    """Autofixes derivable from the finding location alone (GL304)."""
    if code != "GL304" or not 0 < line <= len(lines):
        return None
    return bare_except_fix(line, col, lines[line - 1])


def _lint_module(
    source: str, path: Path, rules: Sequence[Rule]
) -> tuple[list[Finding], ModuleSummary | None]:
    """Parse + extract + per-module rules for one file."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    code="GL900",
                    message=f"syntax error: {exc.msg}",
                )
            ],
            None,
        )
    lines = source.splitlines()
    summary = extract_module(tree, path, lines)
    parts = tuple(p for p in path.parts[:-1] if p not in (".", ".."))
    context = ModuleContext(
        path=path, module_name=path.stem, package_parts=parts
    )
    findings = []
    for rule in rules:
        for line, col, message in rule.check(tree, context):
            if _suppressed(summary.noqa, line, rule.code):
                continue
            findings.append(
                Finding(
                    path=str(path),
                    line=line,
                    col=col,
                    code=rule.code,
                    message=message,
                    fix=_attach_fix(rule.code, line, col, lines),
                )
            )
    return sorted(findings), summary


def _noqa_warnings(summary: ModuleSummary, path: Path) -> list[Finding]:
    """GL901 findings for unknown/malformed codes in noqa comments."""
    known = set(all_rules_by_code()) | ENGINE_CODES
    findings = []
    for line, token in summary.malformed_noqa:
        findings.append(
            Finding(
                path=str(path), line=line, col=0, code="GL901",
                message=(
                    f"malformed code {token!r} in noqa comment: expected "
                    "GLxxx codes, comma-separated"
                ),
            )
        )
    for line, entry in summary.noqa.items():
        if entry == "all":
            continue
        for code in entry:
            if code not in known:
                findings.append(
                    Finding(
                        path=str(path), line=line, col=0, code="GL901",
                        message=(
                            f"unknown rule code {code!r} in noqa comment "
                            "is ignored: check for a typo or drop it"
                        ),
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# pass 2: project


def _project_findings(
    summaries: dict[str, ModuleSummary],
    project_rules: Sequence[ProjectRule],
    sources: dict[str, str] | None = None,
) -> list[Finding]:
    """Run the cross-module rules and map results back to findings.

    ``sources`` memoizes file text for autofix construction (GL103
    needs the physical line to wrap the iterable); on a warm cache it
    lazily re-reads just the files that actually have findings.
    """
    model = ProjectModel(list(summaries.values()))
    by_path = {s.path: s for s in summaries.values()}
    if sources is None:
        sources = {}
    findings = []
    for rule in project_rules:
        for path, line, col, message, span in rule.check_project(model):
            summary = by_path.get(path)
            if summary is not None and _suppressed(
                summary.noqa, line, rule.code
            ):
                continue
            fix = None
            if span is not None:
                text_lines = _source_lines(path, sources)
                if 0 < span[0] <= len(text_lines):
                    fix = sorted_wrap_fix(span, text_lines[span[0] - 1])
            findings.append(
                Finding(
                    path=path, line=line, col=col,
                    code=rule.code, message=message, fix=fix,
                )
            )
    return findings


def _source_lines(path: str, sources: dict[str, str]) -> list[str]:
    if path not in sources:
        try:
            sources[path] = Path(path).read_text(encoding="utf-8")
        except OSError:
            sources[path] = ""
    return sources[path].splitlines()


# ---------------------------------------------------------------------------
# orchestration


@dataclass
class ProjectRun:
    """Everything a full lint invocation produced."""

    findings: list[Finding]
    files: list[Path]
    cache_hits: int = 0
    cache_misses: int = 0


def _finding_to_json(finding: Finding) -> list[Any]:
    return [
        finding.line, finding.col, finding.code, finding.message,
        finding.fix.to_json() if finding.fix is not None else None,
    ]


def _finding_from_json(data: list[Any], path: Path) -> Finding:
    line, col, code, message, fix = data
    return Finding(
        path=str(path), line=line, col=col, code=code, message=message,
        fix=Fix.from_json(fix) if fix is not None else None,
    )


def run_project(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    *,
    cache: Any | None = None,
) -> ProjectRun:
    """The full two-pass lint over files and directories.

    Findings are post-``noqa`` and post-selection but *not* baseline-
    filtered — the baseline is a CLI-level policy. ``cache`` is a
    :class:`~galiot_lint.cache.LintCache` (or ``None`` to run cold).
    """
    # Validate selection up front so typos fail before any file work.
    _filter_codes([], select, ignore)
    all_module_rules = [cls() for cls in MODULE_RULES]
    project_rules = list(select_project_rules(select, ignore))
    selected_codes = {
        r.code for r in select_rules(select, ignore)
    } | {r.code for r in project_rules} | ENGINE_CODES

    files = iter_python_files(paths)
    findings: list[Finding] = []
    summaries: dict[str, ModuleSummary] = {}
    sources: dict[str, str] = {}
    for path in files:
        cached = cache.lookup(path) if cache is not None else None
        if cached is not None:
            summary, findings_json = cached
            summary.path = str(path)
            local = [_finding_from_json(f, path) for f in findings_json]
        else:
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:
                findings.append(
                    Finding(
                        path=str(path), line=1, col=0, code="GL900",
                        message=f"cannot read file: {exc}",
                    )
                )
                continue
            sources[str(path)] = source
            local, summary = _lint_module(source, path, all_module_rules)
            if cache is not None and summary is not None:
                cache.store(
                    path, source, summary,
                    [_finding_to_json(f) for f in local],
                )
        findings.extend(local)
        if summary is not None:
            summaries[str(path)] = summary
            findings.extend(_noqa_warnings(summary, path))
    findings.extend(_project_findings(summaries, project_rules, sources))
    if cache is not None:
        cache.save()
    findings = [f for f in findings if f.code in selected_codes]
    return ProjectRun(
        findings=sorted(findings),
        files=files,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )


# ---------------------------------------------------------------------------
# v1-compatible library surface


def lint_source(
    source: str,
    path: str | Path,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one module's source text; ``path`` is used for reporting.

    With ``rules=None`` the full v2 set runs — per-module rules plus
    the cross-module rules against a single-module project model (so
    e.g. GL104 still catches root-seed reuse inside one file). Passing
    an explicit ``rules`` sequence runs exactly those per-module rules,
    matching the v1 contract.
    """
    path = Path(path)
    explicit = rules is not None
    module_rules = (
        list(rules) if rules is not None
        else [cls() for cls in MODULE_RULES]
    )
    findings, summary = _lint_module(source, path, module_rules)
    if summary is None or explicit:
        return findings
    findings = findings + _noqa_warnings(summary, path)
    findings += _project_findings(
        {str(path): summary},
        [cls() for cls in PROJECT_RULES],
        {str(path): source},
    )
    return sorted(findings)


def lint_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), path, rules)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py") if p.is_file())
        else:
            out.add(path)
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint files and directories; the main library entry point.

    Runs the full two-pass analysis (cross-module rules included) with
    no cache and no baseline — library callers get ground truth.
    """
    return run_project(paths, select=select, ignore=ignore).findings
