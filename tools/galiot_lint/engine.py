"""Lint engine: file discovery, rule execution, noqa, filtering.

The engine is deliberately simple: parse each file once, run every
selected rule over the tree, suppress findings on lines carrying a
``# noqa`` (optionally scoped, ruff-style: ``# noqa: GL001, GL004``)
and return findings sorted for stable, diffable output.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from .rules import ALL_RULES, ModuleContext, Rule, rules_by_code

__all__ = ["Finding", "lint_source", "lint_file", "lint_paths", "select_rules"]

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\s]+))?", re.IGNORECASE)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location (ruff-compatible ordering)."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """Ruff-style ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Instantiate the rule set after ``--select``/``--ignore`` filtering.

    ``select`` keeps only the listed codes (prefix match, so ``GL`` or
    ``GL00`` select families); ``ignore`` then removes codes the same
    way. Unknown codes raise ``ValueError`` so typos fail loudly.
    """
    known = rules_by_code()

    def _validate(codes: Iterable[str]) -> list[str]:
        out = []
        for code in codes:
            code = code.strip().upper()
            if not code:
                continue
            if not any(k.startswith(code) for k in known):
                raise ValueError(f"unknown rule code {code!r}")
            out.append(code)
        return out

    selected = list(known)
    if select is not None:
        wanted = _validate(select)
        selected = [c for c in selected if any(c.startswith(w) for w in wanted)]
    if ignore is not None:
        unwanted = _validate(ignore)
        selected = [
            c for c in selected if not any(c.startswith(w) for w in unwanted)
        ]
    return [known[c]() for c in selected]


def _noqa_codes(line: str) -> set[str] | None:
    """Codes suppressed on ``line``: empty set = all, None = no noqa."""
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return set()
    return {c.strip().upper() for c in codes.split(",") if c.strip()}


def lint_source(
    source: str,
    path: str | Path,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one module's source text; ``path`` is used for reporting."""
    path = Path(path)
    if rules is None:
        rules = [rule() for rule in ALL_RULES]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="GL900",
                message=f"syntax error: {exc.msg}",
            )
        ]
    parts = tuple(p for p in path.parts[:-1] if p not in (".", ".."))
    context = ModuleContext(
        path=path, module_name=path.stem, package_parts=parts
    )
    lines = source.splitlines()
    findings = []
    for rule in rules:
        for line, col, message in rule.check(tree, context):
            text = lines[line - 1] if 0 < line <= len(lines) else ""
            suppressed = _noqa_codes(text)
            if suppressed is not None and (
                not suppressed or rule.code in suppressed
            ):
                continue
            findings.append(
                Finding(
                    path=str(path),
                    line=line,
                    col=col,
                    code=rule.code,
                    message=message,
                )
            )
    return sorted(findings)


def lint_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), path, rules)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py") if p.is_file())
        else:
            out.add(path)
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint files and directories; the main library entry point."""
    rules = select_rules(select, ignore)
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules))
    return sorted(findings)
