"""Command-line front end: ``python -m galiot_lint [paths ...]``.

Output matches ruff's ``path:line:col: CODE message`` lines so editor
integrations and CI annotations work unchanged (``--format json`` and
``--format sarif`` emit machine-readable documents instead); the exit
code is 1 when non-baselined findings exist, 0 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .cache import DEFAULT_CACHE_NAME, LintCache
from .engine import (
    MODULE_RULES,
    all_rules_by_code,
    run_project,
    select_rules,
)
from .fixes import apply_fixes
from .output import render_json, render_sarif, render_text
from .project_rules import PROJECT_RULES


def _split_codes(values: list[str]) -> list[str]:
    out: list[str] = []
    for value in values:
        out.extend(c for c in value.split(",") if c.strip())
    return out


def build_parser() -> argparse.ArgumentParser:
    """The ``galiot-lint`` argument parser (shared with ``galiot lint``)."""
    parser = argparse.ArgumentParser(
        prog="galiot-lint",
        description=(
            "Project-aware static analysis for the GalioT reproduction "
            "(per-module rules GL001-GL006, GL102, GL2xx/GL3xx; "
            "cross-module rules GL101/GL103/GL104/GL301)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="CODES",
        help="comma-separated rule codes (or prefixes) to run",
    )
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="CODES",
        help="comma-separated rule codes (or prefixes) to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule codes with one-line summaries and exit",
    )
    parser.add_argument(
        "--explain", metavar="CODE",
        help="print a rule's full documentation and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the trailing summary line",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply available autofixes, then re-lint",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=(
            "baseline file of tolerated findings "
            f"(default: ./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring any baseline file",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="re-record current findings as the tolerated baseline",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the per-file result cache",
    )
    parser.add_argument(
        "--cache-path", metavar="PATH", default=None,
        help=f"cache file location (default: ./{DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print cache/timing statistics to stderr",
    )
    return parser


def _engine_key() -> str:
    from . import __version__

    codes = sorted(
        [r.code for r in MODULE_RULES] + [r.code for r in PROJECT_RULES]
    )
    return f"{__version__}/{','.join(codes)}"


def _run_fixes(run, args, select, ignore, cache) -> tuple[int, object]:
    """Apply autofixes and re-lint; returns (n_applied, fresh run)."""
    by_path: dict[str, list] = {}
    for finding in run.findings:
        if finding.fix is not None:
            by_path.setdefault(finding.path, []).append(finding)
    applied = 0
    for path, findings in sorted(by_path.items()):
        target = Path(path)
        try:
            source = target.read_text(encoding="utf-8")
        except OSError:
            continue
        fixed, n = apply_fixes(source, findings)
        if n:
            target.write_text(fixed, encoding="utf-8")
            applied += n
    if applied:
        run = run_project(args.paths, select=select, ignore=ignore, cache=cache)
    return applied, run


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in (*MODULE_RULES, *PROJECT_RULES):
            summary = (rule.__doc__ or "").strip().splitlines()[0]
            scope = "project" if rule in PROJECT_RULES else "module"
            print(f"{rule.code}  {rule.name:<28}  [{scope}]  {summary}")
        return 0

    if args.explain:
        rule = all_rules_by_code().get(args.explain.strip().upper())
        if rule is None:
            print(f"unknown rule code {args.explain!r}", file=sys.stderr)
            return 2
        print(rule.explain())
        return 0

    select = _split_codes(args.select) if args.select else None
    ignore = _split_codes(args.ignore) if args.ignore else None
    try:
        select_rules(select, ignore)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    root = Path.cwd()
    cache = None
    if not args.no_cache:
        cache_path = (
            Path(args.cache_path) if args.cache_path
            else root / DEFAULT_CACHE_NAME
        )
        cache = LintCache(cache_path, _engine_key())

    t0 = time.perf_counter()
    run = run_project(args.paths, select=select, ignore=ignore, cache=cache)

    applied = 0
    if args.fix:
        applied, run = _run_fixes(run, args, select, ignore, cache)

    baseline_path = (
        Path(args.baseline) if args.baseline
        else root / DEFAULT_BASELINE_NAME
    )
    if args.update_baseline:
        counts = write_baseline(baseline_path, run.findings, root)
        print(
            f"baseline updated: {len(run.findings)} finding(s) "
            f"({len(counts)} fingerprint(s)) recorded in {baseline_path}",
            file=sys.stderr,
        )
        return 0

    suppressed = 0
    stale = 0
    findings = run.findings
    if not args.no_baseline and baseline_path.is_file():
        result = apply_baseline(findings, load_baseline(baseline_path), root)
        findings = result.new
        suppressed = result.suppressed
        stale = sum(result.stale.values())

    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        docs = {
            code: rule.explain()
            for code, rule in all_rules_by_code().items()
        }
        from . import __version__

        print(render_sarif(findings, root, docs, __version__))
    else:
        if findings:
            print(render_text(findings))

    if not args.quiet:
        if applied:
            print(f"Fixed {applied} finding(s).", file=sys.stderr)
        if suppressed:
            print(
                f"{suppressed} baselined finding(s) tolerated.",
                file=sys.stderr,
            )
        if stale:
            print(
                f"{stale} stale baseline entr(y/ies): ratchet down with "
                "--update-baseline",
                file=sys.stderr,
            )
        n = len(findings)
        print(
            f"Found {n} error{'s' if n != 1 else ''}."
            if n
            else "All checks passed!",
            file=sys.stderr,
        )
        if args.stats:
            elapsed = time.perf_counter() - t0
            print(
                f"[stats] {len(run.files)} files, "
                f"{run.cache_hits} cached / {run.cache_misses} linted, "
                f"{elapsed:.2f}s",
                file=sys.stderr,
            )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
