"""Command-line front end: ``python -m galiot_lint [paths ...]``.

Output matches ruff's ``path:line:col: CODE message`` lines so editor
integrations and CI annotations work unchanged; the exit code is 1
when findings exist, 0 otherwise.
"""

from __future__ import annotations

import argparse
import sys

from .engine import lint_paths, select_rules
from .rules import ALL_RULES, rules_by_code


def _split_codes(values: list[str]) -> list[str]:
    out: list[str] = []
    for value in values:
        out.extend(c for c in value.split(",") if c.strip())
    return out


def build_parser() -> argparse.ArgumentParser:
    """The ``galiot-lint`` argument parser (shared with ``galiot lint``)."""
    parser = argparse.ArgumentParser(
        prog="galiot-lint",
        description=(
            "DSP-aware static analysis for the GalioT reproduction "
            "(rules GL001-GL006)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="CODES",
        help="comma-separated rule codes (or prefixes) to run",
    )
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="CODES",
        help="comma-separated rule codes (or prefixes) to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule codes with one-line summaries and exit",
    )
    parser.add_argument(
        "--explain", metavar="CODE",
        help="print a rule's full documentation and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the trailing summary line",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            summary = (rule.__doc__ or "").strip().splitlines()[0]
            print(f"{rule.code}  {rule.name:<28}  {summary}")
        return 0

    if args.explain:
        rule = rules_by_code().get(args.explain.strip().upper())
        if rule is None:
            print(f"unknown rule code {args.explain!r}", file=sys.stderr)
            return 2
        print(rule.explain())
        return 0

    select = _split_codes(args.select) if args.select else None
    ignore = _split_codes(args.ignore) if args.ignore else None
    try:
        select_rules(select, ignore)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    findings = lint_paths(args.paths, select=select, ignore=ignore)
    for finding in findings:
        print(finding.render())
    if not args.quiet:
        n = len(findings)
        print(
            f"Found {n} error{'s' if n != 1 else ''}."
            if n
            else "All checks passed!",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
