"""Autofix support: single-line text edits attached to findings.

Fixes are deliberately dumb — a ``(line, col_start, col_end,
replacement)`` splice into one physical line — because every fixable
rule is mechanical (wrap an iterable in ``sorted(...)``, widen a bare
``except:``). Dumb edits are idempotent by construction: after the
splice the rule no longer matches, so a second ``--fix`` pass is a
no-op.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .engine import Finding

__all__ = ["Fix", "apply_fixes", "bare_except_fix", "sorted_wrap_fix"]


@dataclass(frozen=True)
class Fix:
    """Replace ``line[col_start:col_end]`` (0-based) with ``replacement``."""

    line: int
    col_start: int
    col_end: int
    replacement: str

    def to_json(self) -> list:
        return [self.line, self.col_start, self.col_end, self.replacement]

    @classmethod
    def from_json(cls, data: list) -> Fix:
        return cls(*data)


_BARE_EXCEPT_RE = re.compile(r"except\s*:")


def bare_except_fix(line_no: int, col: int, text: str) -> Fix | None:
    """GL304 autofix: ``except:`` → ``except Exception:``."""
    match = _BARE_EXCEPT_RE.match(text[col:])
    if match is None:
        return None
    return Fix(
        line=line_no,
        col_start=col,
        col_end=col + match.end(),
        replacement="except Exception:",
    )


def sorted_wrap_fix(span: list, text: str) -> Fix | None:
    """GL103 autofix: wrap a single-line iterable span in ``sorted(...)``."""
    line, col_start, end_line, col_end = span
    if end_line != line or col_end > len(text):
        return None
    segment = text[col_start:col_end]
    if segment.startswith("sorted("):
        return None
    return Fix(
        line=line,
        col_start=col_start,
        col_end=col_end,
        replacement=f"sorted({segment})",
    )


def apply_fixes(source: str, findings: list[Finding]) -> tuple[str, int]:
    """Splice every finding's fix into ``source``; returns (text, count).

    Overlapping fixes on the same line keep only the first (outermost)
    edit — the next lint run re-derives the rest against fresh offsets.
    """
    fixes = sorted(
        {f.fix for f in findings if f.fix is not None},
        key=lambda fx: (fx.line, fx.col_start),
        reverse=True,
    )
    lines = source.splitlines(keepends=True)
    applied = 0
    used_spans: dict[int, list[tuple[int, int]]] = {}
    for fix in fixes:
        if not 0 < fix.line <= len(lines):
            continue
        taken = used_spans.setdefault(fix.line, [])
        if any(
            fix.col_start < hi and lo < fix.col_end for lo, hi in taken
        ):
            continue
        text = lines[fix.line - 1]
        body = text.rstrip("\r\n")
        tail = text[len(body):]
        if fix.col_end > len(body):
            continue
        lines[fix.line - 1] = (
            body[: fix.col_start]
            + fix.replacement
            + body[fix.col_end:]
            + tail
        )
        taken.append((fix.col_start, fix.col_end))
        applied += 1
    return "".join(lines), applied
