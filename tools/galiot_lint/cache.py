"""Per-file lint cache: mtime+size fast path, content-hash slow path.

The expensive part of a lint run is parsing and rule execution; the
cross-module pass itself only walks pre-digested summaries. So the
cache stores, per file, the extracted :class:`ModuleSummary` and the
per-module findings — enough to run a fully warm whole-project pass
without opening a single source file (mtime+size match) and to survive
``touch`` without content changes (sha256 match after a cheap read).

The cache key folds in the engine version and the registered rule
codes: adding or changing a rule invalidates everything, so stale
findings can never leak through an old cache file.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from .semantic import ModuleSummary

__all__ = ["LintCache", "DEFAULT_CACHE_NAME"]

DEFAULT_CACHE_NAME = ".galiot-lint-cache.json"
_CACHE_FORMAT = 2


class LintCache:
    """Load/store per-file summaries and findings keyed by content."""

    def __init__(self, path: Path, engine_key: str) -> None:
        self.path = path
        self.key = f"{_CACHE_FORMAT}/{engine_key}"
        self._files: dict[str, dict[str, Any]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if data.get("key") == self.key and isinstance(
                data.get("files"), dict
            ):
                self._files = data["files"]
        except (OSError, json.JSONDecodeError, TypeError):
            self._files = {}

    # -- lookup ----------------------------------------------------------

    def lookup(
        self, path: Path
    ) -> tuple[ModuleSummary, list[list[Any]]] | None:
        """Cached ``(summary, findings_json)`` if the file is unchanged.

        Returns ``None`` on any miss; the caller re-lints and calls
        :meth:`store`. Findings are returned in their JSON form —
        ``[line, col, code, message, fix|None]`` — and rehydrated by
        the engine (which owns the ``Finding`` type).
        """
        key = str(path.resolve())
        entry = self._files.get(key)
        if entry is None:
            self.misses += 1
            return None
        try:
            stat = os.stat(path)
        except OSError:
            self.misses += 1
            return None
        if (
            entry.get("mtime_ns") != stat.st_mtime_ns
            or entry.get("size") != stat.st_size
        ):
            # Touched: fall back to the content hash before giving up.
            try:
                digest = _sha256(path)
            except OSError:
                self.misses += 1
                return None
            if digest != entry.get("sha256"):
                self.misses += 1
                return None
            entry["mtime_ns"] = stat.st_mtime_ns
            entry["size"] = stat.st_size
            self._dirty = True
        try:
            summary = ModuleSummary.from_json(entry["summary"])
            findings = entry["findings"]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary, findings

    # -- store -----------------------------------------------------------

    def store(
        self,
        path: Path,
        source: str,
        summary: ModuleSummary,
        findings_json: list[list[Any]],
    ) -> None:
        key = str(path.resolve())
        try:
            stat = os.stat(path)
            mtime_ns, size = stat.st_mtime_ns, stat.st_size
        except OSError:
            mtime_ns, size = 0, len(source)
        self._files[key] = {
            "mtime_ns": mtime_ns,
            "size": size,
            "sha256": hashlib.sha256(
                source.encode("utf-8")
            ).hexdigest(),
            "summary": summary.to_json(),
            "findings": findings_json,
        }
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        doc = {"key": self.key, "files": self._files}
        try:
            self.path.write_text(
                json.dumps(doc, separators=(",", ":")) + "\n",
                encoding="utf-8",
            )
        except OSError:
            return  # a read-only checkout just runs cold every time
        self._dirty = False


def _sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()
