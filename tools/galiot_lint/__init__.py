"""galiot-lint — project-aware static analysis for the GalioT reproduction.

A two-pass analyzer encoding the repo's signal-plumbing and concurrency
contracts (the failure modes ruff/mypy cannot see). Pass 1 checks each
module and extracts a semantic summary; pass 2 links summaries into a
whole-project model (symbol table, import graph, call graph) and runs
cross-module rules over it. Results cache per file
(``.galiot-lint-cache.json``) and pre-existing findings can be
tolerated via a checked-in ratchet baseline
(``.galiot-lint-baseline.json``).

Run it as ``python -m galiot_lint src/`` (with ``tools/`` on
``PYTHONPATH``), via the repo stub ``python tools/galiot-lint src/``,
or through the main CLI as ``galiot lint src/``.

Rules (see ``docs/lint.md``, each rule class docstring, or
``--explain CODE``):

========  =============================================================
GL001     I/Q boundary function lacks a dtype guard
GL002     ambiguous numeric parameter name (use unit suffixes)
GL003     float32/float64 literal arithmetic in a complex expression
GL004     public ``repro.*`` function missing type annotations
GL005     stage constructs its own ``Telemetry`` registry
GL006     bare/mutable ``dict``/``list`` annotation in a dataclass
GL101     unseeded RNG reachable from a seeded entry point (project)
GL102     wall-clock call inside a simulated-time module
GL103     set iteration feeds an order-sensitive merge (project, fix)
GL104     one root seed builds several generators (project)
GL201     SharedMemory acquired without a guaranteed release
GL202     executor/pool created without a guaranteed shutdown
GL203     ``open()`` without ``with`` or a guaranteed ``close()``
GL204     release exists but only on the success path
GL301     pool-worker function mutates module-global state (project)
GL302     closure/lambda shipped across the pool boundary
GL303     ``except Exception`` swallows the error without a trace
GL304     bare ``except:`` (autofix: ``except Exception:``)
GL900     syntax error (engine)
GL901     unknown/malformed code in a ``# noqa`` comment (engine)
========  =============================================================
"""

from __future__ import annotations

from .engine import (
    Finding,
    all_rules_by_code,
    lint_file,
    lint_paths,
    lint_source,
    run_project,
)
from .project_rules import PROJECT_RULES, ProjectRule
from .rules import ALL_RULES, Rule
from .semantic import ModuleSummary, ProjectModel

__version__ = "0.2.0"

__all__ = [
    "__version__",
    "Finding",
    "Rule",
    "ProjectRule",
    "ALL_RULES",
    "PROJECT_RULES",
    "ModuleSummary",
    "ProjectModel",
    "all_rules_by_code",
    "lint_source",
    "lint_file",
    "lint_paths",
    "run_project",
]
