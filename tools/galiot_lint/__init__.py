"""galiot-lint — DSP-aware static analysis for the GalioT reproduction.

A small AST-based linter encoding the repo's signal-plumbing contracts
(the failure modes ruff/mypy cannot see): I/Q boundary guards, unit-
suffixed parameter naming, dtype discipline in complex expressions,
annotation coverage of the public API, telemetry-threading regressions
and dataclass field hygiene.

Run it as ``python -m galiot_lint src/`` (with ``tools/`` on
``PYTHONPATH``), via the repo stub ``python tools/galiot-lint src/``,
or through the main CLI as ``galiot lint src/``.

Rules (see each rule class docstring, or ``--explain CODE``):

========  =============================================================
GL001     I/Q boundary function lacks a dtype guard
GL002     ambiguous numeric parameter name (use unit suffixes)
GL003     float32/float64 literal arithmetic in a complex expression
GL004     public ``repro.*`` function missing type annotations
GL005     stage constructs its own ``Telemetry`` registry
GL006     bare/mutable ``dict``/``list`` annotation in a dataclass
========  =============================================================
"""

from __future__ import annotations

from .engine import Finding, lint_file, lint_paths, lint_source
from .rules import ALL_RULES, Rule

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "Finding",
    "Rule",
    "ALL_RULES",
    "lint_source",
    "lint_file",
    "lint_paths",
]
