"""Exception hierarchy for the GalioT reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the library can catch a single base class. Subclasses are
split by subsystem: configuration problems, PHY decode failures, gateway
resource limits, and registry lookups.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A parameter combination is invalid (e.g. non-integer oversampling)."""


class DecodeError(ReproError):
    """A PHY decoder could not produce a frame from the given samples."""


class FrameSyncError(DecodeError):
    """The decoder could not find the frame's preamble / sync word."""


class ChecksumError(DecodeError):
    """A frame was demodulated but failed its integrity check."""


class CapacityError(ReproError):
    """A modelled resource (backhaul link, ADC range) was exceeded."""


class ContractViolationError(ReproError):
    """A runtime signal contract (:mod:`repro.contracts`) was violated.

    Raised only when the process-wide sanitize mode is ``"raise"``; in
    ``"warn"`` mode the same condition emits a
    :class:`~repro.contracts.ContractWarning` instead.
    """


class InjectedFault(DecodeError):
    """A scheduled fault from a :class:`~repro.faults.FaultPlan` fired.

    Raised by cloud decode workers for *poison* segments: deterministic
    per segment, so a retry fails identically and the segment ends up
    quarantined rather than looping.
    """


class InjectedCrash(ReproError):
    """A scheduled worker crash fired in a thread-pool worker.

    Process-pool workers crash for real (``os._exit``) and surface as
    ``BrokenProcessPool``; thread-pool workers raise this instead, and
    the decode farm treats both as the same transient worker loss.
    """


class UnknownTechnologyError(ReproError, KeyError):
    """A technology name is not present in the PHY registry."""
