"""Occupancy / motion detection from heterogeneous channel snapshots.

The insight the paper sketches: a person moving through a room changes
the multipath profile, so the per-packet channel gains of *every* IoT
device in the room shift together. Individually the devices transmit
rarely and measure noisily, but pooling snapshots across technologies
gives a usable change-point signal.

:class:`OccupancyDetector` keeps a per-device baseline (median
amplitude) and flags windows where the pooled normalized deviation
exceeds a threshold — a deliberately simple, dependency-free detector
that the example script exercises end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .features import ChannelSnapshot

__all__ = ["OccupancyEvent", "OccupancyDetector"]


@dataclass(frozen=True)
class OccupancyEvent:
    """One detected channel-change event."""

    start_s: float
    end_s: float
    score: float
    n_snapshots: int


@dataclass
class OccupancyDetector:
    """Pooled change detection over channel snapshots.

    Attributes:
        window_s: Analysis window length.
        threshold: Pooled |z|-score above which a window is flagged.
        min_baseline: Snapshots per device required before its
            measurements contribute (the baseline must be established).
    """

    window_s: float = 5.0
    threshold: float = 2.5
    min_baseline: int = 4
    _history: dict[int, list[float]] = field(default_factory=dict)

    def _deviation(self, snap: ChannelSnapshot) -> float | None:
        """Normalized amplitude deviation against the device baseline."""
        history = self._history.setdefault(snap.device_id, [])
        if len(history) < self.min_baseline:
            history.append(snap.amplitude)
            return None
        baseline = float(np.median(history))
        spread = float(np.median(np.abs(np.array(history) - baseline)))
        spread = max(spread, 0.02 * max(baseline, 1e-12))
        z = (snap.amplitude - baseline) / (1.4826 * spread)
        # Slowly absorb the new sample so the baseline tracks drift.
        history.append(snap.amplitude)
        if len(history) > 64:
            history.pop(0)
        return float(z)

    def detect(self, snapshots: list[ChannelSnapshot]) -> list[OccupancyEvent]:
        """Scan time-ordered snapshots for pooled channel changes.

        Raises:
            ConfigurationError: when snapshots are not time-ordered.
        """
        if any(
            b.time_s < a.time_s
            for a, b in zip(snapshots, snapshots[1:], strict=False)
        ):
            raise ConfigurationError("snapshots must be time-ordered")
        events: list[OccupancyEvent] = []
        window: list[tuple[float, float]] = []  # (time, |z|)
        for snap in snapshots:
            z = self._deviation(snap)
            if z is None:
                continue
            window.append((snap.time_s, abs(z)))
            window = [
                (t, v) for t, v in window if t >= snap.time_s - self.window_s
            ]
            if len(window) < 3:
                continue
            score = float(np.mean([v for _, v in window]))
            if score >= self.threshold:
                start = window[0][0]
                if events and events[-1].end_s >= start - self.window_s:
                    last = events[-1]
                    events[-1] = OccupancyEvent(
                        start_s=last.start_s,
                        end_s=snap.time_s,
                        score=max(last.score, score),
                        n_snapshots=last.n_snapshots + 1,
                    )
                else:
                    events.append(
                        OccupancyEvent(
                            start_s=start,
                            end_s=snap.time_s,
                            score=score,
                            n_snapshots=len(window),
                        )
                    )
        return events
