"""Multi-technology wireless sensing: per-packet channel snapshots.

Sec. 6 of the paper ("At the Cloud — Multi-Technology Wireless
Sensing"): the cloud already holds I/Q for every decoded packet, and
each packet carries a channel measurement for free. A
:class:`ChannelSnapshot` captures the complex gain (amplitude + phase)
and carrier offset of one packet, estimated by least squares against
the remodulated reference — heterogeneous, occasional, wimpy
measurements that become useful in aggregate (see
:mod:`repro.sensing.occupancy`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import iq_contract
from ..dsp.resample import to_rate
from ..errors import ConfigurationError
from ..phy.base import FrameResult, Modem

__all__ = ["ChannelSnapshot", "snapshot_from_frame"]


@dataclass(frozen=True)
class ChannelSnapshot:
    """One packet's view of the wireless channel.

    Attributes:
        time_s: Capture timestamp of the packet.
        technology: Which radio took the measurement.
        device_id: Transmitting device (0 when unknown).
        amplitude: |h| of the flat channel estimate.
        phase_rad: Angle of the channel estimate.
        cfo_hz: Residual carrier offset reported by the demodulator.
    """

    time_s: float
    technology: str
    device_id: int
    amplitude: float
    phase_rad: float
    cfo_hz: float = 0.0


@iq_contract("samples")
def snapshot_from_frame(
    samples: np.ndarray,
    sample_rate_hz: float,
    modem: Modem,
    frame: FrameResult,
    time_s: float = 0.0,
    device_id: int = 0,
) -> ChannelSnapshot:
    """Estimate the channel a decoded frame travelled through.

    Args:
        samples: The segment the frame was decoded from, at rate ``sample_rate_hz``.
        sample_rate_hz: Segment sample rate.
        modem: The frame's technology.
        frame: Decode result (payload + native-rate start).
        time_s: Timestamp recorded in the snapshot.
        device_id: Transmitter id recorded in the snapshot.

    Raises:
        ConfigurationError: when the frame extent is outside the segment.
    """
    reference = to_rate(modem.modulate(frame.payload), modem.sample_rate, sample_rate_hz)
    start = int(round(frame.start * sample_rate_hz / modem.sample_rate))
    stop = min(start + len(reference), len(samples))
    if stop - start < len(reference) // 2:
        raise ConfigurationError("frame extent not inside the segment")
    ref = reference[: stop - start]
    window = samples[start:stop]
    energy = float(np.sum(np.abs(ref) ** 2))
    gain = complex(np.sum(np.conj(ref) * window) / max(energy, 1e-30))
    return ChannelSnapshot(
        time_s=time_s,
        technology=modem.name,
        device_id=device_id,
        amplitude=float(abs(gain)),
        phase_rad=float(np.angle(gain)),
        cfo_hz=float(frame.extra.get("cfo_hz", 0.0)),
    )
