"""Jamming detection from noise-floor and band-occupancy anomalies.

A jammed gateway's first symptom is never a decoder error — it is the
spectrum itself going wrong: the robust noise floor rises (wideband and
pulsed jammers), an abnormal fraction of the band lights up (swept
jammers), or one narrow region stays hot far longer than any frame's
airtime (CW tones). :class:`JammingDetector` watches exactly those three
statistics over fixed analysis blocks and emits
:class:`OccupancyDetector`-style events (:class:`JammingEvent`) when an
anomaly *persists* — the persistence debounce is what separates a jammer
from a legitimate packet, which is loud in the same ways but only for a
frame's airtime.

The detector is streaming by construction: blocks are cut on absolute
sample positions and a partial tail is carried between :meth:`feed`
calls, so feeding a capture in one call or in arbitrary chunks yields
bit-identical events. That lets :class:`repro.gateway.GalioTGateway`
and :class:`repro.gateway.streaming.StreamingGateway` share one detector
instance at their common front-end choke point.

Besides events, the detector exposes :meth:`pressure_at` — a [0, 1]
jamming-severity signal on the capture time axis that the gateway folds
into :class:`~repro.gateway.resilience.DegradationLadder` decisions, so
jamming-induced backpressure degrades shipping instead of silently
drowning the backhaul in garbage segments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import iq_contract
from ..errors import ConfigurationError
from ..telemetry import NULL, Telemetry

__all__ = ["JammingEvent", "JammingDetector"]


@dataclass(frozen=True)
class JammingEvent:
    """One sustained spectrum anomaly attributed to interference.

    Attributes:
        start_s: First anomalous block's start on the capture time axis.
        end_s: End of the last anomalous block.
        floor_rise_db: Peak robust-noise-floor rise over baseline.
        occupancy: Peak fraction of FFT bins hot above the baseline
            floor during the event.
        score: Peak per-block severity in [0, 1] (what
            :meth:`JammingDetector.pressure_at` reports while the event
            is live).
        n_blocks: Number of anomalous analysis blocks in the event.
    """

    start_s: float
    end_s: float
    floor_rise_db: float
    occupancy: float
    score: float
    n_blocks: int


class JammingDetector:
    """Streaming noise-floor / band-occupancy anomaly tracker.

    Per analysis block the detector computes a periodogram and derives:

    * ``floor``: the 25th-percentile bin power — a noise-floor estimate
      robust to packets (which occupy bins, not the lower quartile);
    * ``occupancy``: the fraction of bins more than ``hot_bin_db`` above
      the *baseline* floor;
    * ``peak``: the hottest bin over the baseline floor (catches a CW
      tone, which moves neither the floor nor the occupancy).

    The baseline floor is learned from the first ``baseline_blocks``
    blocks and then slowly tracks clean blocks only, so a long jam burst
    cannot absorb itself into the baseline. A block is *anomalous* when
    any statistic crosses its threshold; an event opens once
    ``min_blocks`` anomalous blocks accumulate in a run and closes after
    ``recover_blocks`` consecutive clean ones. Short clean gaps (fewer
    than ``recover_blocks``) do not reset a run — a duty-cycled pulse
    jammer is off most of the time and must still accumulate into one
    event — while a lone loud packet's single anomalous block dies with
    the next ``recover_blocks`` of clean air.

    Args:
        sample_rate_hz: Capture sample rate.
        block_s: Analysis block length in seconds.
        floor_rise_db: Noise-floor rise (dB over baseline) that flags a
            block.
        occupancy_ratio: Hot-bin fraction that flags a block.
        peak_db: Single-bin rise (dB over baseline floor) that flags a
            block.
        hot_bin_db: Per-bin threshold over the baseline floor for the
            occupancy statistic.
        min_blocks: Consecutive anomalous blocks required to open an
            event.
        recover_blocks: Consecutive clean blocks required to close it.
        gate_min_blocks: Anomalous blocks a run must accumulate before
            :meth:`rise_at` reports a jam-attributed rise. Deliberately
            stiffer than ``min_blocks``: with gap tolerance, two
            legitimate frames bracketing a short burst can chain into a
            run of 3-4 and must never raise the detection bar against
            their own preambles, while a real jammer accumulates runs of
            dozens within its first few duty cycles.
        baseline_blocks: Blocks used to train the initial baseline.
        telemetry: Metrics sink (``attack.*`` counters).
    """

    def __init__(
        self,
        sample_rate_hz: float,
        block_s: float = 0.005,
        floor_rise_db: float = 2.0,
        occupancy_ratio: float = 0.35,
        peak_db: float = 18.0,
        hot_bin_db: float = 8.0,
        min_blocks: int = 3,
        recover_blocks: int = 4,
        gate_min_blocks: int = 6,
        baseline_blocks: int = 8,
        telemetry: Telemetry | None = None,
    ):
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        if block_s <= 0:
            raise ConfigurationError("block_s must be positive")
        if min_blocks < 1 or recover_blocks < 1 or baseline_blocks < 1:
            raise ConfigurationError(
                "min_blocks, recover_blocks and baseline_blocks must be >= 1"
            )
        if gate_min_blocks < min_blocks:
            raise ConfigurationError("gate_min_blocks must be >= min_blocks")
        self.sample_rate_hz = float(sample_rate_hz)
        self.block = max(int(round(block_s * sample_rate_hz)), 8)
        self.floor_rise_db = float(floor_rise_db)
        self.occupancy_ratio = float(occupancy_ratio)
        self.peak_db = float(peak_db)
        self.hot_bin_db = float(hot_bin_db)
        self.min_blocks = int(min_blocks)
        self.recover_blocks = int(recover_blocks)
        self.gate_min_blocks = int(gate_min_blocks)
        self.baseline_blocks = int(baseline_blocks)
        self.telemetry = telemetry if telemetry is not None else NULL
        self.reset()

    def reset(self) -> None:
        """Forget baseline, carried samples and open events."""
        self._tail = np.zeros(0, dtype=complex)
        self._block_index = 0  # absolute index of the next block
        self._baseline: float | None = None
        self._train: list[float] = []
        self._run = 0  # consecutive anomalous blocks
        self._clean = 0  # consecutive clean blocks since the run
        self._open: list[tuple[int, float, float, float]] = []
        self._closed: list[JammingEvent] = []
        self._severity: list[float] = []  # per-block severity timeline
        self._gate_rise: list[float] = []  # per-block floor rise, jam-attributed

    # -- streaming ingest -------------------------------------------------

    @iq_contract("samples")
    def feed(self, samples: np.ndarray) -> list[JammingEvent]:
        """Ingest samples; returns events *closed* by this call.

        Block boundaries are absolute (a partial tail is carried to the
        next call), so any chunking of the same stream produces the same
        events. Closed events also accumulate on the instance until
        :meth:`drain_events`.
        """
        data = np.concatenate([self._tail, np.asarray(samples)])
        n_blocks = len(data) // self.block
        closed_before = len(self._closed)
        for b in range(n_blocks):
            self._ingest_block(data[b * self.block : (b + 1) * self.block])
        self._tail = data[n_blocks * self.block :]
        return self._closed[closed_before:]

    def flush(self) -> list[JammingEvent]:
        """Close any open event at end of stream (tail samples shorter
        than one block are dropped, as a monolithic pass drops them)."""
        closed_before = len(self._closed)
        if self._run >= self.min_blocks:
            self._close_event()
        self._run = 0
        self._clean = 0
        self._open = []
        return self._closed[closed_before:]

    def drain_events(self) -> list[JammingEvent]:
        """Return and clear all closed events accumulated so far."""
        events, self._closed = self._closed, []
        return events

    # -- queries ----------------------------------------------------------

    def pressure_at(self, at_time: float, window_s: float = 0.05) -> float:
        """Jamming pressure in [0, 1] at ``at_time``.

        The maximum per-block severity over ``[at_time - window_s,
        at_time]``. Only already-ingested blocks contribute, so the
        answer is identical whether the stream arrived monolithically or
        chunk by chunk (the signal is causal either way).
        """
        if not self._severity:
            return 0.0
        block_s = self.block / self.sample_rate_hz
        hi = min(int(at_time / block_s) + 1, len(self._severity))
        lo = max(int((at_time - window_s) / block_s), 0)
        if hi <= lo:
            return 0.0
        return max(self._severity[lo:hi])

    def rise_at(self, at_time: float) -> float:
        """Jam-attributed noise-floor rise (dB) of the block at ``at_time``.

        Non-zero only once an anomaly run has persisted past
        ``gate_min_blocks`` — a lone loud packet never raises it, so a
        detection-threshold gate keyed on this signal cannot suppress
        the packet's own preamble. Causal: only ingested blocks answer,
        so monolithic and chunked feeding agree.
        """
        if at_time < 0 or not self._gate_rise:
            return 0.0
        block = int(at_time * self.sample_rate_hz / self.block)
        if block >= len(self._gate_rise):
            return 0.0
        return self._gate_rise[block]

    # -- internals --------------------------------------------------------

    def _ingest_block(self, block: np.ndarray) -> None:
        psd = np.abs(np.fft.fft(np.asarray(block, dtype=complex))) ** 2 / len(
            block
        )
        floor = float(np.percentile(psd, 25))
        index = self._block_index
        self._block_index += 1
        if self._baseline is None:
            self._train.append(floor)
            self._severity.append(0.0)
            self._gate_rise.append(0.0)
            if len(self._train) >= self.baseline_blocks:
                self._baseline = float(np.median(self._train))
            return
        baseline = max(self._baseline, 1e-30)
        rise_db = 10.0 * np.log10(max(floor, 1e-30) / baseline)
        hot = psd > baseline * 10.0 ** (self.hot_bin_db / 10.0)
        occupancy = float(np.mean(hot))
        peak_db = 10.0 * np.log10(max(float(psd.max()), 1e-30) / baseline)
        anomalous = (
            rise_db >= self.floor_rise_db
            or occupancy >= self.occupancy_ratio
            or peak_db >= self.peak_db
        )
        if anomalous:
            # Calibrated against DegradationLadder's 0.6 escalation
            # threshold: moderate jamming (a tone, a partial-duty pulse)
            # must not push shipping off the FULL level by itself —
            # frames under it still decode, and degrading them would be
            # a self-inflicted outage. Only a floor rise approaching
            # drowning (>= ~7 dB) crosses the ladder's bar.
            severity = max(
                0.25,
                min(1.0, rise_db / 12.0),
                min(occupancy, 0.55),
            )
        else:
            severity = 0.0
            # Clean block: let the baseline track slow drift.
            self._baseline = 0.98 * self._baseline + 0.02 * floor
        self._severity.append(severity)
        # The gate timeline only reports a floor rise once the anomaly
        # run has persisted (>= gate_min_blocks including this block) —
        # a lone loud packet's block, or a frame/burst/frame chain held
        # together by gap tolerance, must never raise the detection bar
        # against a legitimate preamble.
        persisted = anomalous and (self._run + 1) >= self.gate_min_blocks
        self._gate_rise.append(max(rise_db, 0.0) if persisted else 0.0)
        self._advance_state(index, anomalous, rise_db, occupancy, severity)

    def _advance_state(
        self,
        index: int,
        anomalous: bool,
        rise_db: float,
        occupancy: float,
        severity: float,
    ) -> None:
        if anomalous:
            self._clean = 0
            self._run += 1
            self._open.append((index, rise_db, occupancy, severity))
            if self._run == self.min_blocks:
                self.telemetry.count("attack.jamming_events")
            return
        if self._run == 0:
            return
        # Gap tolerance: a duty-cycled jammer is off most of the time, so
        # clean blocks only end a run once recover_blocks arrive in a row.
        self._clean += 1
        if self._clean >= self.recover_blocks:
            if self._run >= self.min_blocks:
                self._close_event()
            self._run = 0
            self._clean = 0
            self._open = []

    def _close_event(self) -> None:
        block_s = self.block / self.sample_rate_hz
        first = self._open[0][0]
        last = self._open[-1][0]
        self._closed.append(
            JammingEvent(
                start_s=first * block_s,
                end_s=(last + 1) * block_s,
                floor_rise_db=max(r for _, r, _, _ in self._open),
                occupancy=max(o for _, _, o, _ in self._open),
                score=max(s for _, _, _, s in self._open),
                n_blocks=len(self._open),
            )
        )
