"""Multi-technology wireless sensing (paper Sec. 6, future work)."""

from .features import ChannelSnapshot, snapshot_from_frame
from .jamming import JammingDetector, JammingEvent
from .occupancy import OccupancyDetector, OccupancyEvent

__all__ = [
    "ChannelSnapshot",
    "snapshot_from_frame",
    "JammingDetector",
    "JammingEvent",
    "OccupancyDetector",
    "OccupancyEvent",
]
