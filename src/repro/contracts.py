"""Runtime signal contracts for the pipeline's I/Q boundaries.

The dominant failure class in a numpy signal stack is *silent*: a
``float64`` sneaking into an I/Q path, a NaN propagating through a kill
filter and quietly zeroing a correlation score three stages later. This
module provides decorators that pin down the array contract at every
boundary where samples change hands (``Modem.modulate``/``demodulate``,
detectors, the extractor, kill filters, SIC, the cloud decoder):

* :func:`iq_contract` — the named argument (and optionally the result)
  must be a complex, 1-D, all-finite :class:`numpy.ndarray`;
* :func:`real_contract` — same, but real-valued (power tracks, score
  tracks, soft bits).

Checking every buffer on every call would be unacceptable on the hot
path, so enforcement is governed by one process-wide **sanitize mode**:

``off``
    The default. Decorated functions dispatch straight to the wrapped
    callable — one module-global load and an identity comparison, no
    clock reads, no array traversal (benchmarked at <2% end-to-end
    overhead on the streaming gateway; see
    ``benchmarks/bench_contracts.py``).
``warn``
    Violations emit a :class:`ContractWarning` and execution continues.
``raise``
    Violations raise :class:`~repro.errors.ContractViolationError` at
    the boundary the bad buffer *enters*, not where it eventually
    surfaces.

The mode comes from the ``GALIOT_SANITIZE`` environment variable at
import time and can be changed at runtime with
:func:`set_sanitize_mode`, temporarily with the :func:`sanitize`
context manager, or from the command line via ``galiot --sanitize``.

For call sites that want *normalization* instead of validation (e.g.
``Modem.demodulate`` accepting whatever dtype a recording produced),
:func:`ensure_iq` / :func:`ensure_real` coerce to the canonical dtypes
up front; both are recognized by the ``galiot-lint`` GL001 rule as
boundary guards, as is the decorator itself.
"""

from __future__ import annotations

import enum
import functools
import inspect
import os
import warnings
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any, ParamSpec, TypeVar

import numpy as np
import numpy.typing as npt

from .errors import ConfigurationError, ContractViolationError

__all__ = [
    "ENV_VAR",
    "SanitizeMode",
    "ContractWarning",
    "get_sanitize_mode",
    "set_sanitize_mode",
    "sanitize",
    "iq_contract",
    "real_contract",
    "ensure_iq",
    "ensure_real",
    "contract_kind",
]

ENV_VAR = "GALIOT_SANITIZE"
"""Environment variable the initial sanitize mode is read from."""

P = ParamSpec("P")
R = TypeVar("R")


class SanitizeMode(enum.Enum):
    """Process-wide enforcement level for signal contracts."""

    OFF = "off"
    WARN = "warn"
    RAISE = "raise"


class ContractWarning(UserWarning):
    """Emitted for contract violations when the mode is ``"warn"``."""


def _coerce_mode(mode: SanitizeMode | str) -> SanitizeMode:
    if isinstance(mode, SanitizeMode):
        return mode
    try:
        return SanitizeMode(mode.lower())
    except ValueError:
        valid = ", ".join(m.value for m in SanitizeMode)
        raise ConfigurationError(
            f"invalid sanitize mode {mode!r} (expected one of: {valid})"
        ) from None


_MODE: SanitizeMode = _coerce_mode(os.environ.get(ENV_VAR, "off"))


def get_sanitize_mode() -> SanitizeMode:
    """The currently-active process-wide sanitize mode."""
    return _MODE


def set_sanitize_mode(mode: SanitizeMode | str) -> SanitizeMode:
    """Set the process-wide sanitize mode; returns the previous mode."""
    global _MODE
    previous = _MODE
    _MODE = _coerce_mode(mode)
    return previous


@contextmanager
def sanitize(mode: SanitizeMode | str) -> Iterator[None]:
    """Temporarily run with the given sanitize mode (tests, debugging)."""
    previous = set_sanitize_mode(mode)
    try:
        yield
    finally:
        set_sanitize_mode(previous)


def _violate(message: str) -> None:
    if _MODE is SanitizeMode.RAISE:
        raise ContractViolationError(message)
    warnings.warn(ContractWarning(message), stacklevel=4)


def _check_array(
    value: object,
    where: str,
    *,
    want_complex: bool,
    ndim: int | None,
) -> None:
    """Validate one buffer against the contract; report the first breach."""
    kind_name = "complex I/Q" if want_complex else "real-valued"
    if not isinstance(value, np.ndarray):
        _violate(
            f"{where}: expected a {kind_name} ndarray, "
            f"got {type(value).__name__}"
        )
        return
    if ndim is not None and value.ndim != ndim:
        _violate(f"{where}: expected ndim={ndim}, got ndim={value.ndim}")
        return
    kind = value.dtype.kind
    if want_complex:
        if kind != "c":
            _violate(
                f"{where}: expected a complex dtype, got {value.dtype} "
                "(a real buffer silently halves the signal space)"
            )
            return
    elif kind not in "fiu":
        _violate(f"{where}: expected a real dtype, got {value.dtype}")
        return
    if kind in "cf" and value.size and not bool(np.isfinite(value).all()):
        _violate(f"{where}: buffer contains NaN or Inf samples")


def _array_contract(
    arg: str,
    ndim: int | None,
    check_result: bool,
    want_complex: bool,
) -> Callable[[Callable[P, R]], Callable[P, R]]:
    def decorator(func: Callable[P, R]) -> Callable[P, R]:
        try:
            names = list(inspect.signature(func).parameters)
            index = names.index(arg)
        except ValueError:
            raise ConfigurationError(
                f"{func.__qualname__} has no parameter {arg!r} to guard"
            ) from None

        where_arg = f"{func.__qualname__}({arg})"
        where_result = f"{func.__qualname__} -> result"

        @functools.wraps(func)
        def wrapper(*args: P.args, **kwargs: P.kwargs) -> R:
            if _MODE is SanitizeMode.OFF:
                return func(*args, **kwargs)
            if index < len(args):
                _check_array(
                    args[index], where_arg,
                    want_complex=want_complex, ndim=ndim,
                )
            elif arg in kwargs:
                _check_array(
                    kwargs[arg], where_arg,
                    want_complex=want_complex, ndim=ndim,
                )
            result = func(*args, **kwargs)
            if check_result:
                _check_array(
                    result, where_result,
                    want_complex=want_complex, ndim=ndim,
                )
            return result

        wrapper.__galiot_contract__ = (  # type: ignore[attr-defined]
            "iq" if want_complex else "real"
        )
        return wrapper

    return decorator


def iq_contract(
    arg: str = "iq",
    *,
    ndim: int | None = 1,
    check_result: bool = False,
) -> Callable[[Callable[P, R]], Callable[P, R]]:
    """Guard a boundary taking (or producing) complex I/Q samples.

    Args:
        arg: Name of the parameter holding the I/Q buffer.
        ndim: Required dimensionality (``None`` to skip the check).
        check_result: Also validate the wrapped function's return value.

    The decorated function is unchanged in behaviour; enforcement
    follows the process-wide sanitize mode (see module docstring).
    """
    return _array_contract(arg, ndim, check_result, want_complex=True)


def real_contract(
    arg: str,
    *,
    ndim: int | None = 1,
    check_result: bool = False,
) -> Callable[[Callable[P, R]], Callable[P, R]]:
    """Guard a boundary taking (or producing) real-valued arrays."""
    return _array_contract(arg, ndim, check_result, want_complex=False)


def ensure_iq(x: npt.ArrayLike) -> npt.NDArray[np.complex128]:
    """Coerce ``x`` to a canonical complex128 I/Q buffer (no-copy when
    already canonical); the normalization half of the GL001 contract."""
    return np.asarray(x, dtype=np.complex128)


def ensure_real(x: npt.ArrayLike) -> npt.NDArray[np.float64]:
    """Coerce ``x`` to a canonical float64 real buffer (no-copy when
    already canonical)."""
    return np.asarray(x, dtype=np.float64)


def contract_kind(func: Callable[..., Any]) -> str | None:
    """Which contract (``"iq"``/``"real"``) guards ``func``, if any."""
    return getattr(func, "__galiot_contract__", None)
