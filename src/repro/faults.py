"""Seeded, deterministic fault injection: ``repro.faults``.

The paper's gateway is an always-on appliance whose value hinges on
never *silently* losing detected packets on the way to the cloud
(Sec. 6). Proving that requires breaking the pipeline on purpose, the
same way every time: this module is the chaos half of the resilience
layer — a :class:`FaultPlan` describes *when* and *where* the deployment
misbehaves, and the pipeline components consult it through cheap,
allocation-free queries.

Fault classes, and the component each one plugs into:

* **Backhaul outages / latency spikes** — consumed by
  :class:`~repro.gateway.resilience.ResilientBackhaul`: during an outage
  window nothing gets onto the uplink and shipments spill into the
  bounded retry buffer.
* **SDR sample gaps** — consumed by
  :class:`~repro.gateway.rtlsdr.RtlSdrModel`: the affected capture
  ranges are zeroed, modelling USB drops / front-end dropouts.
* **Segment corruption** — consumed by the cloud decode workers: the
  listed segments arrive with their payload deterministically mangled
  (I/Q replaced by seeded noise, or a compressed blob with flipped
  bytes), so decoding fails or yields nothing.
* **Worker crashes / hangs** — consumed by
  :class:`~repro.cloud.parallel.ParallelCloudService` workers: the
  listed *submissions* (a global, retry-inclusive counter) kill the
  worker process (``os._exit``) or nap for :attr:`FaultPlan.hang_s`
  before decoding.

Determinism contract: everything a plan does is a pure function of
``(seed, scheduled fault sets, query arguments)``. Crash/hang faults
are keyed by the **submission counter** (which advances on every pool
submit, including requeues), so a fault is transient: the retry of a
crashed submission is a *different* submission and proceeds. Poison and
corruption are keyed by the **segment sequence number** (stable across
retries), so a poison segment fails deterministically on every attempt
— that is what the retry-then-quarantine policy is tested against.

Everything here is picklable (plans cross the process-pool boundary via
the worker initializer) and the no-fault default everywhere is ``None``,
checked with a single ``is None`` branch — zero overhead when chaos is
off.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace

import numpy as np

from .contracts import iq_contract
from .errors import InjectedCrash, InjectedFault

__all__ = [
    "OutageWindow",
    "LatencySpike",
    "SampleGap",
    "FaultPlan",
    "SCENARIOS",
    "build_scenario",
]


@dataclass(frozen=True)
class OutageWindow:
    """One backhaul blackout: the link is down for ``[start_s, end_s)``."""

    start_s: float
    end_s: float

    def covers(self, at_time: float) -> bool:
        """Whether ``at_time`` falls inside the outage."""
        return self.start_s <= at_time < self.end_s


@dataclass(frozen=True)
class LatencySpike:
    """Extra one-way latency applied to shipments inside the window."""

    start_s: float
    end_s: float
    extra_s: float

    def covers(self, at_time: float) -> bool:
        """Whether ``at_time`` falls inside the spike window."""
        return self.start_s <= at_time < self.end_s


@dataclass(frozen=True)
class SampleGap:
    """A front-end dropout: ``length`` samples zeroed from ``start``."""

    start: int
    length: int

    @property
    def end(self) -> int:
        """One past the last dropped sample index."""
        return self.start + self.length


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults for one pipeline run.

    Attributes:
        seed: Root seed; corruption noise and retry jitter derive from
            it, so two runs of the same plan are bit-identical.
        outages: Backhaul blackout windows (wall-clock of the modelled
            capture, i.e. the ``at_time`` axis of the backhaul).
        latency_spikes: Extra-latency windows on the same axis.
        sample_gaps: Front-end dropouts in absolute capture samples.
        poison_segments: Segment sequence numbers whose decode raises
            :class:`~repro.errors.InjectedFault` on *every* attempt.
        corrupt_segments: Segment sequence numbers whose payload is
            deterministically mangled before decoding (decode survives
            but recovers nothing — silent data loss, not an error).
        crash_submissions: Pool submission numbers that kill the worker.
        hang_submissions: Pool submission numbers that sleep ``hang_s``
            before decoding (trips the per-segment decode timeout).
        hang_s: Nap length for hang faults, in real seconds.
    """

    seed: int = 0
    outages: tuple[OutageWindow, ...] = ()
    latency_spikes: tuple[LatencySpike, ...] = ()
    sample_gaps: tuple[SampleGap, ...] = ()
    poison_segments: frozenset[int] = field(default_factory=frozenset)
    corrupt_segments: frozenset[int] = field(default_factory=frozenset)
    crash_submissions: frozenset[int] = field(default_factory=frozenset)
    hang_submissions: frozenset[int] = field(default_factory=frozenset)
    hang_s: float = 0.5

    # -- backhaul ---------------------------------------------------------

    def backhaul_down(self, at_time: float) -> bool:
        """Whether the uplink is inside an outage window at ``at_time``."""
        return any(w.covers(at_time) for w in self.outages)

    def extra_latency_s(self, at_time: float) -> float:
        """Total extra one-way latency active at ``at_time``."""
        return sum(s.extra_s for s in self.latency_spikes if s.covers(at_time))

    def outage_duty_cycle(self, duration_s: float) -> float:
        """Fraction of ``[0, duration_s)`` the uplink is down."""
        if duration_s <= 0:
            return 0.0
        down = sum(
            max(0.0, min(w.end_s, duration_s) - max(w.start_s, 0.0))
            for w in self.outages
        )
        return min(down / duration_s, 1.0)

    # -- front end --------------------------------------------------------

    def gaps_overlapping(self, lo: int, hi: int) -> list[SampleGap]:
        """Sample gaps intersecting the absolute range ``[lo, hi)``."""
        return [g for g in self.sample_gaps if g.start < hi and g.end > lo]

    # -- cloud workers ----------------------------------------------------

    def apply_in_worker(self, seq: int, submission: int, is_process: bool) -> None:
        """Run the scheduled worker faults for one decode attempt.

        Called by the pool worker before decoding segment ``seq`` (its
        ``submission``-th trip through the pool). May kill the worker
        (process pools), raise :class:`~repro.errors.InjectedCrash`
        (thread pools, where ``os._exit`` would take the whole suite
        down), sleep, or raise :class:`~repro.errors.InjectedFault`.
        """
        if submission in self.crash_submissions:
            if is_process:
                os._exit(13)
            raise InjectedCrash(
                f"injected worker crash at submission {submission}"
            )
        if submission in self.hang_submissions:
            # Real wall-clock on purpose: a hang fault must burn actual
            # time inside the worker so the parent's *real* decode
            # timeout (CloudResilience.decode_timeout_s) trips.
            time.sleep(self.hang_s)  # noqa: GL102
        if seq in self.poison_segments:
            raise InjectedFault(
                f"injected poison decode failure for segment {seq}"
            )

    @iq_contract("samples")
    def corrupt_samples(self, seq: int, samples: np.ndarray) -> np.ndarray:
        """Deterministically mangle a segment's I/Q if it is scheduled.

        The replacement is unit-power complex noise seeded by
        ``(seed, seq)`` — the same garbage every run, any worker.
        """
        if seq not in self.corrupt_segments or len(samples) == 0:
            return samples
        rng = np.random.default_rng((self.seed, seq))
        noise = rng.normal(size=len(samples)) + 1j * rng.normal(size=len(samples))
        return (noise / np.sqrt(2)).astype(samples.dtype, copy=False)

    def corrupt_blob(self, seq: int, blob: bytes, header_size: int = 0) -> bytes:
        """Flip bytes in a wire blob if segment ``seq`` is scheduled.

        Flips land after ``header_size``, so the corruption hits the
        entropy-coded payload and the codec raises on decompression —
        the organic poison-segment path.
        """
        if seq not in self.corrupt_segments or len(blob) <= header_size:
            return blob
        rng = np.random.default_rng((self.seed, seq))
        mangled = bytearray(blob)
        body = len(blob) - header_size
        for offset in rng.integers(0, body, size=min(8, body)):
            mangled[header_size + int(offset)] ^= 0xFF
        return bytes(mangled)

    # -- derivation -------------------------------------------------------

    def without_worker_faults(self) -> FaultPlan:
        """A copy with crash/hang/poison/corruption cleared (link-only)."""
        return replace(
            self,
            poison_segments=frozenset(),
            corrupt_segments=frozenset(),
            crash_submissions=frozenset(),
            hang_submissions=frozenset(),
        )


def periodic_outages(
    duration_s: float, period_s: float, duty: float
) -> tuple[OutageWindow, ...]:
    """Evenly spaced outages covering ``duty`` of every ``period_s``.

    Each period ``[k*period, (k+1)*period)`` starts with ``duty*period``
    seconds of blackout — the 10 %-duty scenario of the resilience
    benchmark is ``periodic_outages(d, 1.0, 0.10)``.
    """
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    if not 0.0 <= duty <= 1.0:
        raise ValueError("duty must be in [0, 1]")
    if duty == 0.0:
        return ()
    windows = []
    start = 0.0
    while start < duration_s:
        windows.append(OutageWindow(start, min(start + duty * period_s, duration_s)))
        start += period_s
    return tuple(windows)


SCENARIOS = ("none", "outages", "gaps", "poison", "crashes", "mixed")
"""Named chaos scenarios understood by :func:`build_scenario` and
``galiot chaos --scenario``."""


def build_scenario(
    name: str,
    seed: int = 0,
    duration_s: float = 1.0,
    n_segments_hint: int = 16,
) -> FaultPlan:
    """Construct one of the canonical named fault scenarios.

    Args:
        name: One of :data:`SCENARIOS`.
        seed: Root seed (placement of random faults derives from it).
        duration_s: Modelled capture length, for time-axis faults.
        n_segments_hint: Expected shipped-segment count; poison,
            corruption and crash faults are placed against it (~1 % of
            segments corrupted, one poison, one crash, one hang).
    """
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; choose from {SCENARIOS}")
    if name == "none":
        return FaultPlan(seed=seed)
    rng = np.random.default_rng((seed, SCENARIOS.index(name)))
    outages = periodic_outages(duration_s, duration_s / 4, 0.10)
    spikes = (
        LatencySpike(0.55 * duration_s, 0.70 * duration_s, extra_s=0.050),
    )
    if name == "outages":
        return FaultPlan(seed=seed, outages=outages, latency_spikes=spikes)
    if name == "gaps":
        n_samples = int(duration_s * 1e6)
        starts = rng.integers(0, max(n_samples - 256, 1), size=3)
        return FaultPlan(
            seed=seed,
            sample_gaps=tuple(SampleGap(int(s), 256) for s in sorted(starts)),
        )
    hint = max(n_segments_hint, 1)
    poison = frozenset({int(rng.integers(0, hint))})
    corrupt = frozenset(
        int(i)
        for i in rng.choice(hint, size=max(1, hint // 100), replace=False)
        if int(i) not in poison
    )
    if name == "poison":
        return FaultPlan(seed=seed, poison_segments=poison, corrupt_segments=corrupt)
    crashes = frozenset({int(rng.integers(0, hint))})
    hangs = frozenset({int(rng.integers(hint, 2 * hint))})
    if name == "crashes":
        return FaultPlan(
            seed=seed, crash_submissions=crashes, hang_submissions=hangs
        )
    return FaultPlan(
        seed=seed,
        outages=outages,
        latency_spikes=spikes,
        poison_segments=poison,
        corrupt_segments=corrupt,
        crash_submissions=crashes,
        hang_submissions=hangs,
    )
