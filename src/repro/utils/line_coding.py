"""Line codes: Manchester encoding (G.9959 R1, 802.3-style).

Z-Wave's lowest rate (R1, 9.6 kbit/s) Manchester-encodes every data bit
into two half-bits so the waveform is DC-free and self-clocking:

    1 -> 10      0 -> 01   (IEEE 802.3 convention, as used by G.9959)

Decoding takes half-bit pairs back to bits; invalid pairs (00/11) are
resolved by the first half-bit and counted so callers can gauge link
quality.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .bits import as_bit_array

__all__ = ["manchester_encode", "manchester_decode"]


def manchester_encode(bits: npt.ArrayLike) -> np.ndarray:
    """Expand each bit into its two-half-bit Manchester symbol."""
    arr = as_bit_array(bits)
    out = np.empty(2 * arr.size, dtype=np.uint8)
    out[0::2] = arr
    out[1::2] = arr ^ 1
    return out


def manchester_decode(half_bits: npt.ArrayLike) -> tuple[np.ndarray, int]:
    """Collapse half-bit pairs back into bits.

    Returns:
        ``(bits, violations)`` — ``violations`` counts pairs that were
        not a valid Manchester symbol (decided by their first half-bit).

    Raises:
        ValueError: if the half-bit count is odd.
    """
    arr = as_bit_array(half_bits)
    if arr.size % 2:
        raise ValueError("half-bit count must be even")
    first = arr[0::2]
    second = arr[1::2]
    violations = int(np.sum(first == second))
    return first.astype(np.uint8), violations
