"""Bit-level substrates: packing, CRCs, whitening, Gray code, FEC,
interleaving.

These modules are dependency-free (numpy only) and shared by every PHY
implementation in :mod:`repro.phy`.
"""

from .bits import (
    as_bit_array,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    bytes_to_nibbles,
    int_to_bits,
    nibbles_to_bytes,
)
from .crc import CRC8_ATM, CRC16_CCITT, CRC16_CCITT_FALSE, CrcEngine, xor_checksum
from .gray import gray_decode, gray_decode_array, gray_encode, gray_encode_array
from .hamming import DecodedNibble, HammingCodec
from .interleaver import BlockInterleaver, LoraDiagonalInterleaver
from .line_coding import manchester_decode, manchester_encode
from .whitening import LfsrWhitener, LoraWhitener, Pn9Whitener

__all__ = [
    "as_bit_array",
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "bytes_to_nibbles",
    "int_to_bits",
    "nibbles_to_bytes",
    "CrcEngine",
    "CRC16_CCITT",
    "CRC16_CCITT_FALSE",
    "CRC8_ATM",
    "xor_checksum",
    "gray_encode",
    "gray_decode",
    "gray_encode_array",
    "gray_decode_array",
    "HammingCodec",
    "DecodedNibble",
    "BlockInterleaver",
    "LoraDiagonalInterleaver",
    "manchester_encode",
    "manchester_decode",
    "LfsrWhitener",
    "Pn9Whitener",
    "LoraWhitener",
]
