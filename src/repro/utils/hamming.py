"""Hamming forward error correction, LoRa style.

LoRa encodes each 4-bit nibble into a ``4 + CR`` bit codeword where
``CR`` (coding rate index) runs from 1 to 4:

========  ==========  ==============================================
CR index  Code        Capability
========  ==========  ==============================================
1         (5, 4)      single-error *detection* (even parity)
2         (6, 4)      single-error detection (two parity bits)
3         (7, 4)      single-error *correction* (classic Hamming)
4         (8, 4)      single-error correction + double detection
========  ==========  ==============================================

The (7,4) code uses the standard generator with parity equations

    p1 = d1 ^ d2 ^ d4
    p2 = d1 ^ d3 ^ d4
    p3 = d2 ^ d3 ^ d4

and codeword layout ``[p1 p2 d1 p3 d2 d3 d4]`` so that the syndrome read
as a binary number directly indexes the corrupted position. The (8,4)
code appends an overall parity bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from .bits import as_bit_array

__all__ = ["HammingCodec", "DecodedNibble"]

_H74_POSITIONS = 7  # codeword length of the base code


@dataclass(frozen=True)
class DecodedNibble:
    """Result of decoding one codeword.

    Attributes:
        nibble: The recovered 4-bit value (0..15).
        corrected: True when a single-bit error was repaired.
        error: True when an uncorrectable/detected-only error remains.
    """

    nibble: int
    corrected: bool = False
    error: bool = False


class HammingCodec:
    """Encoder/decoder for the LoRa Hamming family.

    Args:
        cr: Coding-rate index, 1..4 (codeword length ``4 + cr``).

    Raises:
        ValueError: if ``cr`` is outside 1..4.
    """

    def __init__(self, cr: int):
        if cr not in (1, 2, 3, 4):
            raise ValueError("cr must be in 1..4")
        self.cr = cr

    @property
    def codeword_length(self) -> int:
        """Number of bits per codeword (``4 + cr``)."""
        return 4 + self.cr

    # -- single nibble ---------------------------------------------------

    def encode_nibble(self, nibble: int) -> np.ndarray:
        """Encode a 4-bit value into one codeword (uint8 bit array)."""
        if not 0 <= nibble <= 0x0F:
            raise ValueError("nibble must be in 0..15")
        d1 = (nibble >> 3) & 1
        d2 = (nibble >> 2) & 1
        d3 = (nibble >> 1) & 1
        d4 = nibble & 1
        p1 = d1 ^ d2 ^ d4
        p2 = d1 ^ d3 ^ d4
        p3 = d2 ^ d3 ^ d4
        if self.cr == 1:
            parity = d1 ^ d2 ^ d3 ^ d4
            bits = [d1, d2, d3, d4, parity]
        elif self.cr == 2:
            bits = [d1, d2, d3, d4, p1, p2]
        elif self.cr == 3:
            bits = [p1, p2, d1, p3, d2, d3, d4]
        else:
            base = [p1, p2, d1, p3, d2, d3, d4]
            overall = 0
            for bit in base:
                overall ^= bit
            bits = base + [overall]
        return np.array(bits, dtype=np.uint8)

    def decode_codeword(self, codeword: npt.ArrayLike) -> DecodedNibble:
        """Decode one codeword, correcting when the code allows it."""
        bits = as_bit_array(codeword)
        if bits.size != self.codeword_length:
            raise ValueError(
                f"codeword length {bits.size} != expected {self.codeword_length}"
            )
        if self.cr == 1:
            d = bits[:4]
            parity = int(np.bitwise_xor.reduce(bits))
            return DecodedNibble(self._nibble(d), error=bool(parity))
        if self.cr == 2:
            d = bits[:4]
            p1 = d[0] ^ d[1] ^ d[3]
            p2 = d[0] ^ d[2] ^ d[3]
            bad = bool(p1 != bits[4] or p2 != bits[5])
            return DecodedNibble(self._nibble(d), error=bad)
        if self.cr == 3:
            corrected, fixed = self._correct74(bits.copy())
            return DecodedNibble(self._extract74(corrected), corrected=fixed)
        # cr == 4: (8,4) SECDED
        base = bits[:7].copy()
        overall = int(np.bitwise_xor.reduce(bits))
        syndrome = self._syndrome74(base)
        if syndrome == 0 and overall == 0:
            return DecodedNibble(self._extract74(base))
        if overall == 1:
            # Odd weight error -> single error (possibly in the parity bit).
            if syndrome:
                base[syndrome - 1] ^= 1
            return DecodedNibble(self._extract74(base), corrected=True)
        # Even overall parity with non-zero syndrome: double error detected.
        return DecodedNibble(self._extract74(base), error=True)

    # -- bulk helpers ----------------------------------------------------

    def encode_nibbles(self, nibbles: npt.ArrayLike) -> np.ndarray:
        """Concatenate the codewords of a nibble sequence."""
        arr = np.asarray(nibbles, dtype=np.uint8).ravel()
        if arr.size == 0:
            return np.zeros(0, dtype=np.uint8)
        return np.concatenate([self.encode_nibble(int(n)) for n in arr])

    def decode_bits(self, bits: npt.ArrayLike) -> tuple[np.ndarray, int, int]:
        """Decode a concatenation of codewords.

        Returns:
            ``(nibbles, n_corrected, n_errors)`` where ``nibbles`` is a
            uint8 array of recovered 4-bit values.

        Raises:
            ValueError: if the bit count is not a multiple of the
                codeword length.
        """
        arr = as_bit_array(bits)
        if arr.size % self.codeword_length:
            raise ValueError("bit count is not a multiple of the codeword length")
        nibbles = []
        corrected = 0
        errors = 0
        for row in arr.reshape(-1, self.codeword_length):
            result = self.decode_codeword(row)
            nibbles.append(result.nibble)
            corrected += int(result.corrected)
            errors += int(result.error)
        return np.array(nibbles, dtype=np.uint8), corrected, errors

    # -- internals -------------------------------------------------------

    @staticmethod
    def _nibble(d: np.ndarray) -> int:
        return (int(d[0]) << 3) | (int(d[1]) << 2) | (int(d[2]) << 1) | int(d[3])

    @staticmethod
    def _syndrome74(bits: np.ndarray) -> int:
        s1 = bits[0] ^ bits[2] ^ bits[4] ^ bits[6]
        s2 = bits[1] ^ bits[2] ^ bits[5] ^ bits[6]
        s3 = bits[3] ^ bits[4] ^ bits[5] ^ bits[6]
        return (int(s3) << 2) | (int(s2) << 1) | int(s1)

    @classmethod
    def _correct74(cls, bits: np.ndarray) -> tuple[np.ndarray, bool]:
        syndrome = cls._syndrome74(bits)
        if syndrome:
            bits[syndrome - 1] ^= 1
            return bits, True
        return bits, False

    @classmethod
    def _extract74(cls, bits: np.ndarray) -> int:
        d = np.array([bits[2], bits[4], bits[5], bits[6]], dtype=np.uint8)
        return cls._nibble(d)
