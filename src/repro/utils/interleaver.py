"""Bit interleavers.

Two interleavers are provided:

* :class:`BlockInterleaver` — a plain rows-in / columns-out matrix
  interleaver used by generic burst-error spreading.
* :class:`LoraDiagonalInterleaver` — LoRa's diagonal interleaver. A block
  of ``4 + CR`` Hamming codewords of ``SF`` bits each is written as a
  ``(4+CR) x SF`` matrix and read out along shifted diagonals, producing
  ``SF`` on-air symbols of ``4 + CR`` bits. The diagonal shift means one
  corrupted chirp symbol injects at most one bit error into each codeword,
  which matches the single-error-correcting Hamming code.

Both classes expose exact inverses; the property tests assert
``deinterleave(interleave(x)) == x`` for random blocks.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .bits import as_bit_array

__all__ = ["BlockInterleaver", "LoraDiagonalInterleaver"]


class BlockInterleaver:
    """Write row-wise, read column-wise over an ``(n_rows, n_cols)`` grid."""

    def __init__(self, n_rows: int, n_cols: int):
        if n_rows <= 0 or n_cols <= 0:
            raise ValueError("interleaver dimensions must be positive")
        self.n_rows = n_rows
        self.n_cols = n_cols

    @property
    def block_size(self) -> int:
        """Number of bits per interleaver block."""
        return self.n_rows * self.n_cols

    def interleave(self, bits: npt.ArrayLike) -> np.ndarray:
        """Permute one or more blocks of bits."""
        arr = as_bit_array(bits)
        if arr.size % self.block_size:
            raise ValueError("bit count is not a multiple of the block size")
        out = []
        for block in arr.reshape(-1, self.block_size):
            out.append(block.reshape(self.n_rows, self.n_cols).T.ravel())
        return np.concatenate(out) if out else arr

    def deinterleave(self, bits: npt.ArrayLike) -> np.ndarray:
        """Exact inverse of :meth:`interleave`."""
        arr = as_bit_array(bits)
        if arr.size % self.block_size:
            raise ValueError("bit count is not a multiple of the block size")
        out = []
        for block in arr.reshape(-1, self.block_size):
            out.append(block.reshape(self.n_cols, self.n_rows).T.ravel())
        return np.concatenate(out) if out else arr


class LoraDiagonalInterleaver:
    """LoRa diagonal interleaver for spreading factor ``sf`` and CR ``cr``.

    Interleaves blocks of ``sf`` codewords x ``(4 + cr)`` bits into
    ``sf`` symbols of ``4 + cr`` bits each.
    """

    def __init__(self, sf: int, cr: int):
        if not 5 <= sf <= 12:
            raise ValueError("sf must be in 5..12")
        if cr not in (1, 2, 3, 4):
            raise ValueError("cr must be in 1..4")
        self.sf = sf
        self.cr = cr

    @property
    def codeword_length(self) -> int:
        """Bits per codeword (``4 + cr``)."""
        return 4 + self.cr

    @property
    def block_bits(self) -> int:
        """Bits per interleaver block (``sf * (4 + cr)``)."""
        return self.sf * self.codeword_length

    def interleave_block(self, codeword_bits: npt.ArrayLike) -> np.ndarray:
        """Interleave ``sf`` codewords into ``4 + cr`` symbol bit-rows.

        Args:
            codeword_bits: flat array of ``sf * (4 + cr)`` bits laid out
                codeword-major (codeword 0 bits first).

        Returns:
            Flat array of the same size laid out symbol-major: the first
            ``sf`` bits form on-air symbol 0 (MSB first), and so on.
        """
        arr = as_bit_array(codeword_bits)
        if arr.size != self.block_bits:
            raise ValueError(
                f"expected {self.block_bits} bits per block, got {arr.size}"
            )
        cw = arr.reshape(self.sf, self.codeword_length)
        symbols = np.empty((self.codeword_length, self.sf), dtype=np.uint8)
        for col in range(self.codeword_length):
            for row in range(self.sf):
                # Diagonal read: symbol `col`, bit `row` comes from
                # codeword ((row + col) mod sf), bit position `col`.
                symbols[col, row] = cw[(row + col) % self.sf, col]
        return symbols.ravel()

    def deinterleave_block(self, symbol_bits: npt.ArrayLike) -> np.ndarray:
        """Exact inverse of :meth:`interleave_block`."""
        arr = as_bit_array(symbol_bits)
        if arr.size != self.block_bits:
            raise ValueError(
                f"expected {self.block_bits} bits per block, got {arr.size}"
            )
        symbols = arr.reshape(self.codeword_length, self.sf)
        cw = np.empty((self.sf, self.codeword_length), dtype=np.uint8)
        for col in range(self.codeword_length):
            for row in range(self.sf):
                cw[(row + col) % self.sf, col] = symbols[col, row]
        return cw.ravel()

    def interleave(self, bits: npt.ArrayLike) -> np.ndarray:
        """Interleave any whole number of blocks."""
        arr = as_bit_array(bits)
        if arr.size % self.block_bits:
            raise ValueError("bit count is not a multiple of the block size")
        blocks = [self.interleave_block(b) for b in arr.reshape(-1, self.block_bits)]
        return np.concatenate(blocks) if blocks else arr

    def deinterleave(self, bits: npt.ArrayLike) -> np.ndarray:
        """Inverse of :meth:`interleave`."""
        arr = as_bit_array(bits)
        if arr.size % self.block_bits:
            raise ValueError("bit count is not a multiple of the block size")
        blocks = [self.deinterleave_block(b) for b in arr.reshape(-1, self.block_bits)]
        return np.concatenate(blocks) if blocks else arr
