"""LFSR data whitening.

Low-power PHYs whiten payloads so the on-air waveform has no long runs of
identical bits (which would break clock recovery and bias FSK
discriminators). Whitening is a XOR with a fixed pseudo-noise keystream, so
applying the same whitener twice is the identity — a property the test
suite checks with hypothesis.

Two generators are provided:

* :class:`Pn9Whitener` — the 802.15.4g / SUN-FSK PN9 sequence
  (x^9 + x^5 + 1, seed 0x1FF), also used by SigFox uplinks.
* :class:`LoraWhitener` — the 8-bit LFSR (x^8 + x^6 + x^5 + x^4 + 1) that
  matches the sequence used by open-source LoRa decoders.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .bits import as_bit_array

__all__ = ["LfsrWhitener", "Pn9Whitener", "LoraWhitener"]


class LfsrWhitener:
    """Generic Fibonacci-LFSR whitener.

    The register is clocked once per output bit; the output bit is the
    register LSB and feedback is the XOR of the tapped positions.

    Args:
        taps: Tap positions (1-based exponents of the polynomial,
            excluding the constant term), e.g. ``(9, 5)`` for PN9.
        seed: Initial register contents (must be non-zero).
        width: Register width in bits; defaults to ``max(taps)``.
    """

    def __init__(self, taps: tuple[int, ...], seed: int, width: int | None = None):
        if not taps:
            raise ValueError("at least one tap is required")
        self._taps = tuple(sorted(set(taps), reverse=True))
        self._width = width if width is not None else max(self._taps)
        if max(self._taps) > self._width:
            raise ValueError("tap position exceeds register width")
        if seed <= 0 or seed >= (1 << self._width):
            raise ValueError("seed must be a non-zero value fitting the register")
        self._seed = seed

    def keystream(self, n_bits: int) -> np.ndarray:
        """First ``n_bits`` whitening bits as a 0/1 uint8 array.

        Right-shift Fibonacci form: the output is the register LSB and
        the feedback for polynomial ``x^w + x^k + ... + 1`` is
        ``bit0 XOR bit_k XOR ...`` (the leading term is the output
        itself). With a primitive polynomial this yields the maximal
        period ``2^w - 1``, which the test suite verifies for all three
        whiteners.
        """
        reg = self._seed
        out = np.empty(n_bits, dtype=np.uint8)
        for i in range(n_bits):
            out[i] = reg & 1
            feedback = reg & 1
            for tap in self._taps:
                if tap != self._width:
                    feedback ^= (reg >> tap) & 1
            reg = (reg >> 1) | (feedback << (self._width - 1))
        return out

    def whiten_bits(self, bits: npt.ArrayLike) -> np.ndarray:
        """XOR ``bits`` with the keystream (involution)."""
        arr = as_bit_array(bits)
        return (arr ^ self.keystream(arr.size)).astype(np.uint8)

    def whiten_bytes(self, data: bytes) -> bytes:
        """Whiten a byte string (MSB-first bit order within each byte)."""
        bits = np.unpackbits(np.frombuffer(bytes(data), dtype=np.uint8))
        return np.packbits(self.whiten_bits(bits)).tobytes()


class Pn9Whitener(LfsrWhitener):
    """802.15.4g SUN-FSK PN9 whitener (x^9 + x^5 + 1, seed 0x1FF)."""

    def __init__(self) -> None:
        super().__init__(taps=(9, 5), seed=0x1FF)


class LoraWhitener(LfsrWhitener):
    """LoRa payload whitener (x^8 + x^6 + x^5 + x^4 + 1, seed 0xFF)."""

    def __init__(self) -> None:
        super().__init__(taps=(8, 6, 5, 4), seed=0xFF)
