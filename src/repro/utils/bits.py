"""Bit packing helpers.

All PHY layers in this package represent bit streams as one-dimensional
``numpy`` arrays of dtype ``uint8`` holding values 0/1. Byte order within a
byte is configurable because IoT standards disagree: 802.15.4 and Z-Wave
transmit most-significant bit first in some fields and least-significant
first in others, while LoRa works on 4-bit nibbles.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "int_to_bits",
    "bits_to_int",
    "nibbles_to_bytes",
    "bytes_to_nibbles",
    "as_bit_array",
]


def as_bit_array(bits: npt.ArrayLike) -> np.ndarray:
    """Coerce a sequence of 0/1 values into a uint8 bit array.

    Raises:
        ValueError: if any element is not 0 or 1.
    """
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bit array may only contain 0 and 1")
    return arr


def bytes_to_bits(data: bytes, msb_first: bool = True) -> np.ndarray:
    """Expand ``data`` into a 0/1 uint8 array, 8 bits per byte."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    bits = np.unpackbits(arr)
    if not msb_first:
        bits = bits.reshape(-1, 8)[:, ::-1].ravel()
    return bits


def bits_to_bytes(bits: npt.ArrayLike, msb_first: bool = True) -> bytes:
    """Pack a 0/1 array into bytes. Length must be a multiple of 8.

    Raises:
        ValueError: if ``len(bits)`` is not a multiple of 8.
    """
    arr = as_bit_array(bits)
    if arr.size % 8:
        raise ValueError(f"bit count {arr.size} is not a multiple of 8")
    if not msb_first:
        arr = arr.reshape(-1, 8)[:, ::-1].ravel()
    return np.packbits(arr).tobytes()


def int_to_bits(value: int, width: int, msb_first: bool = True) -> np.ndarray:
    """Represent ``value`` as a fixed-width bit array.

    Raises:
        ValueError: if ``value`` does not fit in ``width`` bits or is
            negative.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    bits = np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)
    if msb_first:
        bits = bits[::-1]
    return bits


def bits_to_int(bits: npt.ArrayLike, msb_first: bool = True) -> int:
    """Interpret a bit array as an unsigned integer."""
    arr = as_bit_array(bits)
    if not msb_first:
        arr = arr[::-1]
    value = 0
    for bit in arr:
        value = (value << 1) | int(bit)
    return value


def bytes_to_nibbles(data: bytes, high_first: bool = True) -> np.ndarray:
    """Split bytes into 4-bit nibbles (values 0..15)."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    high = (arr >> 4).astype(np.uint8)
    low = (arr & 0x0F).astype(np.uint8)
    pair = (high, low) if high_first else (low, high)
    return np.stack(pair, axis=1).ravel()


def nibbles_to_bytes(nibbles: npt.ArrayLike, high_first: bool = True) -> bytes:
    """Join 4-bit nibbles (values 0..15) into bytes.

    Raises:
        ValueError: if the count is odd or any value exceeds 15.
    """
    arr = np.asarray(nibbles, dtype=np.uint8).ravel()
    if arr.size % 2:
        raise ValueError("nibble count must be even")
    if arr.size and arr.max() > 0x0F:
        raise ValueError("nibble values must be in 0..15")
    pairs = arr.reshape(-1, 2)
    if high_first:
        joined = (pairs[:, 0] << 4) | pairs[:, 1]
    else:
        joined = (pairs[:, 1] << 4) | pairs[:, 0]
    return joined.astype(np.uint8).tobytes()
