"""Cyclic redundancy checks used by the implemented IoT PHY layers.

A single table-driven :class:`CrcEngine` covers every polynomial in the
package; the concrete variants used by each technology are exposed as
module-level singletons:

* :data:`CRC16_CCITT` — LoRa payload CRC and XBee/802.15.4-SUN FCS
  (poly 0x1021, init 0x0000, no reflection).
* :data:`CRC16_CCITT_FALSE` — init 0xFFFF variant, used for the LoRa
  explicit-header CRC in some stacks.
* :data:`CRC8_ATM` — BLE-style header check (poly 0x07).

Z-Wave's simple XOR checksum (:func:`xor_checksum`) is kept as a plain
function because it is not a CRC.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "CrcEngine",
    "CRC16_CCITT",
    "CRC16_CCITT_FALSE",
    "CRC8_ATM",
    "xor_checksum",
]


def _reflect(value: int, width: int) -> int:
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


@dataclass(frozen=True)
class CrcEngine:
    """Table-driven CRC with the classic Rocksoft parameter model.

    Attributes:
        width: CRC width in bits (8 or 16 here, any value <= 32 works).
        poly: Generator polynomial (normal representation).
        init: Initial register value.
        xor_out: Value XOR-ed into the register after processing.
        reflect_in: Whether each input byte is bit-reflected.
        reflect_out: Whether the final register is bit-reflected.
    """

    width: int
    poly: int
    init: int = 0
    xor_out: int = 0
    reflect_in: bool = False
    reflect_out: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.width <= 32:
            raise ValueError("CRC width must be in 1..32")

    @property
    def _mask(self) -> int:
        return (1 << self.width) - 1

    @lru_cache(maxsize=None)
    def _table(self) -> tuple[int, ...]:
        top = 1 << (self.width - 1)
        table = []
        for byte in range(256):
            reg = byte << (self.width - 8) if self.width >= 8 else byte
            for _ in range(8):
                if reg & top:
                    reg = ((reg << 1) ^ self.poly) & self._mask
                else:
                    reg = (reg << 1) & self._mask
            table.append(reg)
        return tuple(table)

    def compute(self, data: bytes) -> int:
        """CRC of ``data`` as an unsigned integer."""
        table = self._table()
        reg = self.init & self._mask
        for byte in bytes(data):
            if self.reflect_in:
                byte = _reflect(byte, 8)
            if self.width >= 8:
                idx = ((reg >> (self.width - 8)) ^ byte) & 0xFF
                reg = ((reg << 8) ^ table[idx]) & self._mask
            else:
                for bit in range(7, -1, -1):
                    in_bit = (byte >> bit) & 1
                    top = (reg >> (self.width - 1)) & 1
                    reg = ((reg << 1) & self._mask)
                    if top ^ in_bit:
                        reg ^= self.poly & self._mask
        if self.reflect_out:
            reg = _reflect(reg, self.width)
        return reg ^ self.xor_out

    def append(self, data: bytes) -> bytes:
        """Return ``data`` with its big-endian CRC appended."""
        crc = self.compute(data)
        n = (self.width + 7) // 8
        return bytes(data) + crc.to_bytes(n, "big")

    def check(self, data_with_crc: bytes) -> bool:
        """Validate a buffer produced by :meth:`append`."""
        n = (self.width + 7) // 8
        if len(data_with_crc) < n:
            return False
        body, trailer = data_with_crc[:-n], data_with_crc[-n:]
        return self.compute(body) == int.from_bytes(trailer, "big")


CRC16_CCITT = CrcEngine(width=16, poly=0x1021, init=0x0000)
CRC16_CCITT_FALSE = CrcEngine(width=16, poly=0x1021, init=0xFFFF)
CRC8_ATM = CrcEngine(width=8, poly=0x07)


def xor_checksum(data: bytes, init: int = 0xFF) -> int:
    """Z-Wave (ITU-T G.9959) frame checksum: XOR of all bytes, seed 0xFF."""
    reg = init
    for byte in bytes(data):
        reg ^= byte
    return reg & 0xFF
