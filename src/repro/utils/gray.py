"""Gray coding.

LoRa maps the FFT-demodulated chirp index through a Gray code so that the
most likely symbol errors (off-by-one bin, caused by noise or sampling
offset) corrupt only a single bit, which the Hamming FEC can then repair.
Both scalar and vectorized forms are provided.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

__all__ = ["gray_encode", "gray_decode", "gray_encode_array", "gray_decode_array"]


def gray_encode(value: int) -> int:
    """Binary-reflected Gray code of a non-negative integer."""
    if value < 0:
        raise ValueError("gray_encode requires a non-negative integer")
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_encode`."""
    if code < 0:
        raise ValueError("gray_decode requires a non-negative integer")
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


def gray_encode_array(values: npt.ArrayLike) -> np.ndarray:
    """Vectorized :func:`gray_encode` over an integer array."""
    arr = np.asarray(values)
    if arr.size and int(arr.min()) < 0:
        raise ValueError("gray_encode_array requires non-negative integers")
    return arr ^ (arr >> 1)


def gray_decode_array(codes: npt.ArrayLike) -> np.ndarray:
    """Vectorized :func:`gray_decode` over an integer array."""
    arr = np.asarray(codes)
    if arr.size and int(arr.min()) < 0:
        raise ValueError("gray_decode_array requires non-negative integers")
    out = arr.copy()
    shifted = arr >> 1
    while np.any(shifted):
        out ^= shifted
        shifted >>= 1
    return out
