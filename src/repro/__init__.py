"""GalioT — a software-defined-radio multi-technology IoT gateway.

Reproduction of "Revisiting Software Defined Radios in the IoT Era"
(HotNets '18). See DESIGN.md for the system inventory and EXPERIMENTS.md
for the paper-vs-measured results.

The public API is re-exported here; subpackages:

* :mod:`repro.utils` — bit substrates (CRC, whitening, FEC, interleaving)
* :mod:`repro.dsp` — DSP substrate (chirps, filters, correlation, channels)
* :mod:`repro.phy` — PHY modems (LoRa, XBee, Z-Wave, BLE, SigFox, O-QPSK)
* :mod:`repro.gateway` — RTL-SDR model + universal packet detection
* :mod:`repro.cloud` — kill filters, SIC, the Algorithm-1 collision decoder
* :mod:`repro.net` — IoT traffic, scenes, MAC/energy, network simulator
* :mod:`repro.sensing` — multi-technology wireless sensing extension
* :mod:`repro.analysis` — Shannon-limit / link-budget calculations
* :mod:`repro.io` — cfile / rtl_sdr / SigMF capture file I/O
* :mod:`repro.experiments` — table/figure reproduction harnesses
"""

from __future__ import annotations

__version__ = "0.1.0"

from .contracts import (
    ContractWarning,
    SanitizeMode,
    get_sanitize_mode,
    iq_contract,
    real_contract,
    sanitize,
    set_sanitize_mode,
)
from .errors import (
    CapacityError,
    ChecksumError,
    ConfigurationError,
    ContractViolationError,
    DecodeError,
    FrameSyncError,
    ReproError,
    UnknownTechnologyError,
)
from .guard import DecodeGuard, GuardStats
from .telemetry import NULL, NullTelemetry, Telemetry, format_snapshot
from .types import DecodeResult, DetectionEvent, PacketTruth, SceneTruth, Segment

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "DecodeError",
    "FrameSyncError",
    "ChecksumError",
    "CapacityError",
    "ContractViolationError",
    "UnknownTechnologyError",
    "SanitizeMode",
    "ContractWarning",
    "get_sanitize_mode",
    "set_sanitize_mode",
    "sanitize",
    "iq_contract",
    "real_contract",
    "DecodeGuard",
    "GuardStats",
    "Telemetry",
    "NullTelemetry",
    "NULL",
    "format_snapshot",
    "PacketTruth",
    "DetectionEvent",
    "Segment",
    "DecodeResult",
    "SceneTruth",
]
