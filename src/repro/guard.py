"""Replay / duplicate / false-decode guarding for accepted frames.

CRC checking stops corrupt frames, but it cannot stop a *replay*: a
bit-exact re-injection of a legitimate frame decodes perfectly, checksum
and all — the classic SDR capture-and-replay attack. The defence is
bookkeeping, not signal processing: remember what was recently accepted
and refuse to accept the same frame again inside a freshness window.

:class:`DecodeGuard` is that bookkeeping, shared by the gateway's edge
decoder and the cloud decoder (hand both the same instance so a frame
edge-decoded at the gateway also inoculates the cloud). It applies three
checks to every candidate frame, counting rejections under ``attack.*``
telemetry:

* **corrupt** — a result without a passing checksum is refused outright
  (today's decoders never emit one, making the guard the enforcement
  point rather than a convention);
* **duplicate** — the same ``(technology, payload)`` accepted again
  within ``duplicate_window_s`` is a double-decode of one transmission
  (e.g. overlapping segments), not an attack;
* **replay** — the same frame seen again *after* the duplicate window
  but within ``window_s`` is refused and counted as a replay.

The guard is deterministic and stateful per stream: call :meth:`reset`
between captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigurationError
from .telemetry import NULL, Telemetry
from .types import DecodeResult

__all__ = ["GuardStats", "DecodeGuard"]


@dataclass
class GuardStats:
    """Counters of one guard instance's accept/reject decisions."""

    accepted: int = 0
    corrupt_rejected: int = 0
    duplicates_rejected: int = 0
    replays_rejected: int = 0

    @property
    def rejected(self) -> int:
        """Total refusals across all three checks."""
        return (
            self.corrupt_rejected
            + self.duplicates_rejected
            + self.replays_rejected
        )


@dataclass
class DecodeGuard:
    """Freshness-window admission control for decoded frames.

    Args:
        window_s: Replay-freshness window — an identical frame accepted
            within this many seconds is refused.
        duplicate_window_s: Identical frames this close together are
            double-decodes of one transmission, refused but counted
            separately from replays.
        telemetry: Metrics sink for the ``attack.*`` counters.
    """

    window_s: float = 5.0
    duplicate_window_s: float = 0.05
    telemetry: Telemetry = NULL
    stats: GuardStats = field(default_factory=GuardStats)
    _seen: dict[tuple[str, bytes], list[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if not 0 <= self.duplicate_window_s <= self.window_s:
            raise ConfigurationError(
                "need 0 <= duplicate_window_s <= window_s"
            )

    def reset(self) -> None:
        """Forget accepted-frame history and counters (new stream)."""
        self._seen = {}
        self.stats = GuardStats()

    def admit(self, result: DecodeResult, time_s: float) -> bool:
        """Decide one frame; ``True`` means downstream may accept it."""
        if not result.ok or result.payload is None:
            self.stats.corrupt_rejected += 1
            self.telemetry.count("attack.false_decodes")
            return False
        key = (result.technology, bytes(result.payload))
        history = self._seen.setdefault(key, [])
        nearest = min(
            (abs(time_s - t) for t in history), default=float("inf")
        )
        if nearest < self.duplicate_window_s:
            self.stats.duplicates_rejected += 1
            self.telemetry.count("attack.duplicate_decodes")
            return False
        if nearest < self.window_s:
            self.stats.replays_rejected += 1
            self.telemetry.count("attack.replay_rejects")
            return False
        history.append(time_s)
        self.stats.accepted += 1
        return True

    def filter(
        self, results: list[DecodeResult], sample_rate_hz: float
    ) -> list[DecodeResult]:
        """Admit a batch, deriving each frame's time from its capture
        start index."""
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        return [
            r for r in results if self.admit(r, r.start / sample_rate_hz)
        ]
