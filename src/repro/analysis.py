"""Link-budget and Shannon-limit analysis (paper Sec. 3 and Sec. 5).

The paper's feasibility argument rests on two quantitative claims that
this module makes computable:

1. **IoT links run far below the Shannon limit** (Sec. 3: technologies
   "operate at extremely suboptimal data rates relative to the Shannon
   limit"), which is *why* collisions are frequently separable —
   :func:`rate_margin_db` quantifies the slack per technology.
2. **Joint decoding has an information-theoretic boundary** (Sec. 5:
   "SNR regimes ... where the Shannon limit may not permit decoupling
   collisions") — :func:`collision_feasible` evaluates the
   multiple-access-capacity conditions for a concrete collision, and
   the matching ablation bench compares the predicted boundary with the
   decoder's measured behaviour.

Also included: correlation processing-gain and detection-threshold
helpers used to size the Figure 3(b) experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import ConfigurationError
from .phy.base import Modem

__all__ = [
    "shannon_capacity_bps",
    "rate_margin_db",
    "CollisionFeasibility",
    "collision_feasible",
    "processing_gain_db",
    "detectable_snr_db",
]


def shannon_capacity_bps(bandwidth_hz: float, snr_db: float) -> float:
    """AWGN channel capacity ``B log2(1 + SNR)``.

    Raises:
        ConfigurationError: for a non-positive bandwidth.
    """
    if bandwidth_hz <= 0:
        raise ConfigurationError("bandwidth must be positive")
    return bandwidth_hz * math.log2(1 + 10 ** (snr_db / 10))


def rate_margin_db(modem: Modem, snr_db: float) -> float:
    """How far below capacity a technology runs, in dB.

    ``10 log10(capacity / bit_rate)`` at the given in-band SNR — the
    paper's "extremely suboptimal data rates" in one number (LoRa SF7
    at 10 dB runs ~40x under capacity).
    """
    capacity = shannon_capacity_bps(modem.bandwidth, snr_db)
    if modem.bit_rate <= 0:
        raise ConfigurationError("modem bit rate must be positive")
    if capacity <= 0:
        return float("-inf")
    return 10 * math.log10(capacity / modem.bit_rate)


@dataclass(frozen=True)
class CollisionFeasibility:
    """Verdict on one collision's information-theoretic separability.

    Attributes:
        feasible: True when every rate constraint of the multiple-access
            capacity region is satisfied.
        sum_rate_bps: Aggregate offered rate.
        sum_capacity_bps: Multiple-access sum capacity over the shared
            band.
        worst_margin_db: Smallest per-constraint margin (negative when
            infeasible); the binding constraint.
    """

    feasible: bool
    sum_rate_bps: float
    sum_capacity_bps: float
    worst_margin_db: float


def collision_feasible(
    modems: list[Modem],
    snrs_db: list[float],
    shared_bandwidth_hz: float | None = None,
) -> CollisionFeasibility:
    """Check a collision against the multiple-access capacity region.

    Each transmission ``i`` offers rate ``R_i`` (the modem's bit rate)
    at in-band SNR ``snr_i``. Over a shared band ``B`` the Gaussian
    MAC requires, for every subset ``S``::

        sum_{i in S} R_i  <=  B log2(1 + sum_{i in S} SNR_i)

    When all constraints hold, a (possibly joint) decoder *can* separate
    the collision; when the sum-rate constraint fails, no decoder can —
    the regime the paper flags in Sec. 5.

    Args:
        modems: Colliding technologies.
        snrs_db: In-band SNR per transmission.
        shared_bandwidth_hz: The common band; defaults to the widest
            colliding signal's bandwidth.

    Raises:
        ConfigurationError: on mismatched inputs.
    """
    if len(modems) != len(snrs_db) or not modems:
        raise ConfigurationError("modems and snrs_db must align and be non-empty")
    band = shared_bandwidth_hz or max(m.bandwidth for m in modems)
    n = len(modems)
    worst = float("inf")
    feasible = True
    for mask in range(1, 1 << n):
        subset = [i for i in range(n) if mask & (1 << i)]
        rate = sum(modems[i].bit_rate for i in subset)
        snr_lin = sum(10 ** (snrs_db[i] / 10) for i in subset)
        cap = band * math.log2(1 + snr_lin)
        if rate <= 0:
            continue
        margin = 10 * math.log10(cap / rate) if cap > 0 else float("-inf")
        worst = min(worst, margin)
        if cap < rate:
            feasible = False
    total_rate = sum(m.bit_rate for m in modems)
    total_cap = band * math.log2(1 + sum(10 ** (s / 10) for s in snrs_db))
    return CollisionFeasibility(
        feasible=feasible,
        sum_rate_bps=total_rate,
        sum_capacity_bps=total_cap,
        worst_margin_db=worst,
    )


def processing_gain_db(template_samples: int) -> float:
    """Coherent correlation gain of an ``n``-sample template.

    Raises:
        ConfigurationError: for a non-positive length.
    """
    if template_samples <= 0:
        raise ConfigurationError("template length must be positive")
    return 10 * math.log10(template_samples)


def detectable_snr_db(
    template_samples: int, required_deflection_db: float = 14.0
) -> float:
    """Per-sample SNR at which a template becomes reliably detectable.

    A matched filter needs its output deflection (``E/sigma^2``) above
    roughly ``required_deflection_db`` to clear a CFAR threshold set
    for negligible false alarms over ~1e6 samples. The detectable
    per-sample SNR is that requirement minus the processing gain — the
    calculation behind the Figure 3(b) radio configuration (e.g. a
    32-chirp SF7 LoRa preamble: 45 dB of gain, detectable near
    -31 dB).
    """
    return required_deflection_db - processing_gain_db(template_samples)
