"""Shared dataclasses used across the gateway, cloud and simulator layers.

These types carry data between subsystems and deliberately hold no logic
beyond trivial derived properties, so any layer can produce or consume them
without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np
import numpy.typing as npt

__all__ = [
    "PacketTruth",
    "DetectionEvent",
    "DetectorLike",
    "Segment",
    "DecodeResult",
    "SceneTruth",
]


@dataclass(frozen=True)
class PacketTruth:
    """Ground truth for one packet placed into a simulated I/Q scene.

    Attributes:
        packet_id: Unique id within the scene.
        technology: Registry name of the transmitting technology
            (e.g. ``"lora"``, ``"xbee"``, ``"zwave"``).
        start: First sample index of the packet in the scene stream.
        length: Number of samples the packet occupies.
        snr_db: In-band SNR at which the packet was injected.
        payload: The transmitted MAC payload bytes.
        device_id: Identifier of the transmitting device (0 if N/A).
    """

    packet_id: int
    technology: str
    start: int
    length: int
    snr_db: float
    payload: bytes
    device_id: int = 0

    @property
    def end(self) -> int:
        """One past the last sample index of the packet."""
        return self.start + self.length

    def overlaps(self, other: PacketTruth) -> bool:
        """Whether this packet overlaps ``other`` in time."""
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class DetectionEvent:
    """One detection produced by a gateway packet detector.

    Attributes:
        index: Sample index at which the detector fired.
        score: Detector-specific score (normalized correlation, power
            ratio, ...). Larger is more confident.
        detector: Name of the detector that produced the event.
        technology: Technology hint if the detector knows it
            (the universal preamble detector does not, by design).
    """

    index: int
    score: float
    detector: str
    technology: str | None = None


class DetectorLike(Protocol):
    """Structural type for packet detectors.

    Anything exposing ``detect(samples) -> list[DetectionEvent]`` (the
    energy, preamble-bank and universal detectors all do) satisfies it.
    """

    def detect(
        self, samples: npt.NDArray[np.complex128]
    ) -> list[DetectionEvent]: ...


@dataclass
class Segment:
    """A slice of I/Q samples extracted around a detection.

    This is what the gateway ships to the edge or the cloud.
    """

    start: int
    samples: npt.NDArray[np.complex128]
    sample_rate: float
    detections: list[DetectionEvent] = field(default_factory=list)

    @property
    def length(self) -> int:
        """Number of complex samples in the segment."""
        return len(self.samples)

    @property
    def end(self) -> int:
        """One past the last sample index covered by the segment."""
        return self.start + self.length

    @property
    def duration(self) -> float:
        """Segment duration in seconds."""
        return self.length / self.sample_rate


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one transmission out of a segment.

    Attributes:
        technology: Registry name of the decoded technology.
        payload: Recovered payload bytes (``None`` when decoding failed).
        ok: True when a frame was recovered and its checksum passed.
        method: How the frame was recovered: ``"direct"`` (no collision),
            ``"sic"`` (successive interference cancellation) or
            ``"kill-frequency"`` / ``"kill-css"`` / ``"kill-codes"``.
        power_db: Estimated received power of this transmission, dBFS.
        start: Estimated start sample of the frame within the segment.
    """

    technology: str
    payload: bytes | None
    ok: bool
    method: str = "direct"
    power_db: float = float("nan")
    start: int = 0


@dataclass
class SceneTruth:
    """Ground truth bundle for a whole simulated scene."""

    sample_rate: float
    n_samples: int
    noise_power: float
    packets: list[PacketTruth] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Scene duration in seconds."""
        return self.n_samples / self.sample_rate

    def collisions(self) -> list[tuple[PacketTruth, PacketTruth]]:
        """All pairs of packets that overlap in time."""
        ordered = sorted(self.packets, key=lambda p: p.start)
        pairs: list[tuple[PacketTruth, PacketTruth]] = []
        for i, first in enumerate(ordered):
            for second in ordered[i + 1 :]:
                if second.start >= first.end:
                    break
                pairs.append((first, second))
        return pairs

    def collided_ids(self) -> set[int]:
        """Ids of packets involved in at least one collision."""
        ids: set[int] = set()
        for first, second in self.collisions():
            ids.add(first.packet_id)
            ids.add(second.packet_id)
        return ids
