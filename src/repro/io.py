"""I/Q capture file I/O.

Lets the library exchange captures with real SDR tooling:

* ``.cfile`` — raw interleaved complex64, the GNU Radio / gr-osmosdr
  convention (what an actual RTL-SDR capture of the paper's experiment
  would be saved as);
* ``.u8iq`` — raw interleaved offset-uint8, the rtl_sdr utility's native
  output format;
* a SigMF-flavoured JSON sidecar carrying sample rate, carrier and
  annotations, so synthetic scenes keep their ground truth on disk.

Only the subset of SigMF needed for this package is implemented; files
written here load in SigMF-aware tools, and ordinary rtl_sdr/GNU Radio
captures load here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .contracts import iq_contract
from .errors import ConfigurationError
from .types import PacketTruth, SceneTruth

__all__ = [
    "CaptureMeta",
    "write_cfile",
    "read_cfile",
    "write_rtl_u8",
    "read_rtl_u8",
    "write_meta",
    "read_meta",
    "save_scene",
    "load_scene",
]


@dataclass
class CaptureMeta:
    """Sidecar metadata for one capture file.

    Attributes:
        sample_rate: Complex sample rate in Hz.
        carrier_hz: Tuned RF centre frequency.
        datatype: ``"cf32_le"`` (cfile) or ``"cu8"`` (rtl_sdr).
        description: Free-form text.
        annotations: SigMF-style annotation dicts; scene ground truth is
            stored as one annotation per packet.
    """

    sample_rate: float
    carrier_hz: float = 868e6
    datatype: str = "cf32_le"
    description: str = ""
    annotations: list[dict] = field(default_factory=list)

    def to_sigmf(self) -> dict:
        """Render as a SigMF-flavoured dictionary."""
        return {
            "global": {
                "core:datatype": self.datatype,
                "core:sample_rate": self.sample_rate,
                "core:description": self.description,
                "core:version": "1.0.0",
            },
            "captures": [{"core:sample_start": 0, "core:frequency": self.carrier_hz}],
            "annotations": self.annotations,
        }

    @classmethod
    def from_sigmf(cls, doc: dict) -> CaptureMeta:
        """Parse the subset of SigMF this package writes."""
        glob = doc.get("global", {})
        captures = doc.get("captures", [{}])
        return cls(
            sample_rate=float(glob.get("core:sample_rate", 0.0)),
            carrier_hz=float(captures[0].get("core:frequency", 868e6))
            if captures
            else 868e6,
            datatype=str(glob.get("core:datatype", "cf32_le")),
            description=str(glob.get("core:description", "")),
            annotations=list(doc.get("annotations", [])),
        )


def write_cfile(path: str | Path, samples: np.ndarray) -> None:
    """Write interleaved complex64 (GNU Radio ``.cfile``)."""
    np.asarray(samples, dtype=np.complex64).tofile(str(path))


def read_cfile(path: str | Path) -> np.ndarray:
    """Read interleaved complex64 into a complex128 array."""
    data = np.fromfile(str(path), dtype=np.complex64)
    return data.astype(np.complex128)


@iq_contract("samples")
def write_rtl_u8(path: str | Path, samples: np.ndarray, full_scale: float | None = None) -> None:
    """Write rtl_sdr-style offset-uint8 interleaved I/Q.

    Args:
        samples: Complex samples.
        full_scale: Clip level mapped to 0/255; defaults to the peak.
    """
    x = np.asarray(samples)
    if full_scale is None:
        peak = float(
            np.max(np.abs(np.concatenate([x.real, x.imag]))) if len(x) else 1.0
        )
        full_scale = peak if peak > 0 else 1.0
    inter = np.empty(2 * len(x))
    inter[0::2] = x.real
    inter[1::2] = x.imag
    quant = np.clip(np.round(inter / full_scale * 127.5 + 127.5), 0, 255)
    quant.astype(np.uint8).tofile(str(path))


def read_rtl_u8(path: str | Path) -> np.ndarray:
    """Read rtl_sdr offset-uint8 I/Q into complex samples in [-1, 1]."""
    raw = np.fromfile(str(path), dtype=np.uint8).astype(np.float64)
    if len(raw) % 2:
        raw = raw[:-1]
    i = (raw[0::2] - 127.5) / 127.5
    q = (raw[1::2] - 127.5) / 127.5
    return i + 1j * q


def write_meta(path: str | Path, meta: CaptureMeta) -> None:
    """Write the SigMF-flavoured sidecar JSON."""
    Path(path).write_text(json.dumps(meta.to_sigmf(), indent=2))


def read_meta(path: str | Path) -> CaptureMeta:
    """Read a sidecar written by :func:`write_meta`."""
    return CaptureMeta.from_sigmf(json.loads(Path(path).read_text()))


def _truth_annotations(truth: SceneTruth) -> list[dict]:
    out = []
    for p in truth.packets:
        out.append(
            {
                "core:sample_start": p.start,
                "core:sample_count": p.length,
                "core:label": p.technology,
                "repro:snr_db": p.snr_db,
                "repro:payload_hex": p.payload.hex(),
                "repro:packet_id": p.packet_id,
                "repro:device_id": p.device_id,
            }
        )
    return out


@iq_contract("samples")
def save_scene(
    basepath: str | Path,
    samples: np.ndarray,
    truth: SceneTruth,
    carrier_hz: float = 868e6,
    description: str = "",
) -> tuple[Path, Path]:
    """Persist a synthetic scene as ``<base>.cfile`` + ``<base>.sigmf-meta``.

    Returns:
        ``(data_path, meta_path)``.
    """
    base = Path(basepath)
    data_path = base.with_suffix(".cfile")
    meta_path = base.with_suffix(".sigmf-meta")
    write_cfile(data_path, samples)
    meta = CaptureMeta(
        sample_rate=truth.sample_rate,
        carrier_hz=carrier_hz,
        datatype="cf32_le",
        description=description,
        annotations=_truth_annotations(truth),
    )
    write_meta(meta_path, meta)
    return data_path, meta_path


def load_scene(basepath: str | Path) -> tuple[np.ndarray, SceneTruth]:
    """Load a scene written by :func:`save_scene`.

    Raises:
        ConfigurationError: when the sidecar is missing or inconsistent.
    """
    base = Path(basepath)
    data_path = base.with_suffix(".cfile")
    meta_path = base.with_suffix(".sigmf-meta")
    if not data_path.exists() or not meta_path.exists():
        raise ConfigurationError(f"missing capture pair at {base}")
    samples = read_cfile(data_path)
    meta = read_meta(meta_path)
    if meta.sample_rate <= 0:
        raise ConfigurationError("sidecar lacks a sample rate")
    packets = []
    for ann in meta.annotations:
        packets.append(
            PacketTruth(
                packet_id=int(ann.get("repro:packet_id", len(packets))),
                technology=str(ann.get("core:label", "unknown")),
                start=int(ann.get("core:sample_start", 0)),
                length=int(ann.get("core:sample_count", 0)),
                snr_db=float(ann.get("repro:snr_db", float("nan"))),
                payload=bytes.fromhex(ann.get("repro:payload_hex", "")),
                device_id=int(ann.get("repro:device_id", 0)),
            )
        )
    truth = SceneTruth(
        sample_rate=meta.sample_rate,
        n_samples=len(samples),
        noise_power=float("nan"),
        packets=packets,
    )
    return samples, truth
