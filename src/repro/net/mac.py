"""ALOHA-style MAC with retransmissions.

Low-power IoT devices "wake up and transmit"; a frame that is not
acknowledged (here: not decoded by the gateway/cloud) is retransmitted
after a random backoff, up to a retry limit. The paper's energy argument
lives here: every collision that the cloud *cannot* resolve turns into
retransmissions, and retransmissions are what drain batteries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = ["PendingFrame", "MacState"]


@dataclass
class PendingFrame:
    """A frame awaiting (re)transmission.

    Attributes:
        device_id: Transmitting device.
        payload: MAC payload bytes.
        attempts: Transmissions already made (0 = fresh frame).
        frame_id: Unique id across the simulation.
    """

    device_id: int
    payload: bytes
    attempts: int = 0
    frame_id: int = 0


@dataclass
class MacState:
    """Per-simulation MAC bookkeeping.

    Attributes:
        max_attempts: Transmissions allowed per frame (1 = no retry).
        queue: Frames waiting for their next attempt.
        delivered: Count of frames eventually delivered.
        dropped: Frames abandoned after ``max_attempts``.
        transmissions: Total transmissions (the battery-relevant count).
    """

    max_attempts: int = 4
    queue: list[PendingFrame] = field(default_factory=list)
    delivered: int = 0
    dropped: int = 0
    transmissions: int = 0
    _next_id: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")

    def new_frame(self, device_id: int, payload: bytes) -> PendingFrame:
        """Register a fresh frame for transmission."""
        frame = PendingFrame(
            device_id=device_id, payload=bytes(payload), frame_id=self._next_id
        )
        self._next_id += 1
        self.queue.append(frame)
        return frame

    def take_round(
        self, rng: np.random.Generator, tx_prob: float = 1.0
    ) -> list[PendingFrame]:
        """Frames transmitting this round.

        Args:
            rng: Random source.
            tx_prob: Probability that a queued frame transmits this
                round rather than backing off. Values below 1 randomize
                retransmissions across rounds — without this, every
                failed frame retries simultaneously and a congested
                cell death-spirals (classic slotted-ALOHA behaviour).
        """
        if not 0 < tx_prob <= 1:
            raise ConfigurationError("tx_prob must be in (0, 1]")
        frames = []
        held = []
        for frame in self.queue:
            if frame.attempts == 0 or rng.random() < tx_prob:
                frames.append(frame)
            else:
                held.append(frame)
        self.queue = held
        rng.shuffle(frames)
        self.transmissions += len(frames)
        for frame in frames:
            frame.attempts += 1
        return frames

    def report(self, frame: PendingFrame, delivered: bool) -> None:
        """Feed back the decode outcome for one transmission."""
        if delivered:
            self.delivered += 1
        elif frame.attempts >= self.max_attempts:
            self.dropped += 1
        else:
            self.queue.append(frame)

    @property
    def attempts_per_delivery(self) -> float:
        """Average transmissions per delivered frame (battery proxy)."""
        if self.delivered == 0:
            return float("inf")
        return self.transmissions / self.delivered
