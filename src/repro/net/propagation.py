"""Propagation and deployment geometry.

Turns a floor-plan deployment (device positions around a gateway) into
the per-device SNRs the simulator consumes, with the standard
log-distance path-loss model:

    PL(d) = PL(d0) + 10 n log10(d / d0) + X_sigma

where ``n`` is the path-loss exponent (~2 free space, 3-4 indoors) and
``X_sigma`` is log-normal shadowing. Link budgets then convert TX power
and noise figure into an in-band SNR per device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..phy.base import Modem

__all__ = ["PathLossModel", "LinkBudget", "Position", "deployment_snrs"]

_BOLTZMANN_DBM = -173.8  # kT at 290 K in dBm/Hz


@dataclass(frozen=True)
class Position:
    """A 2-D coordinate in metres."""

    x: float
    y: float

    def distance_to(self, other: Position) -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with optional log-normal shadowing.

    Attributes:
        exponent: Path-loss exponent ``n``.
        reference_loss_db: PL(d0) — free-space loss at the reference
            distance (~31 dB at 1 m for 868 MHz).
        reference_m: Reference distance ``d0``.
        shadowing_sigma_db: Standard deviation of the shadowing term.
    """

    exponent: float = 2.9
    reference_loss_db: float = 31.0
    reference_m: float = 1.0
    shadowing_sigma_db: float = 0.0

    def __post_init__(self) -> None:
        if self.exponent <= 0 or self.reference_m <= 0:
            raise ConfigurationError("exponent and reference must be positive")

    def loss_db(
        self, distance_m: float, rng: np.random.Generator | None = None
    ) -> float:
        """Path loss in dB at ``distance_m`` (clamped to the reference)."""
        d = max(distance_m, self.reference_m)
        loss = self.reference_loss_db + 10 * self.exponent * math.log10(
            d / self.reference_m
        )
        if self.shadowing_sigma_db > 0:
            if rng is None:
                raise ConfigurationError("rng required for shadowing")
            loss += float(rng.normal(scale=self.shadowing_sigma_db))
        return loss


@dataclass(frozen=True)
class LinkBudget:
    """Radio-link parameters for SNR computation.

    Attributes:
        tx_power_dbm: Transmit power (14 dBm is the 868 MHz ERP limit).
        noise_figure_db: Receiver noise figure (RTL-SDR class: ~6 dB).
        antenna_gain_db: Combined TX+RX antenna gains.
    """

    tx_power_dbm: float = 14.0
    noise_figure_db: float = 6.0
    antenna_gain_db: float = 0.0

    def snr_db(self, path_loss_db: float, bandwidth_hz: float) -> float:
        """In-band SNR for a link with the given loss and signal bandwidth.

        Raises:
            ConfigurationError: for a non-positive bandwidth.
        """
        if bandwidth_hz <= 0:
            raise ConfigurationError("bandwidth must be positive")
        rx_dbm = self.tx_power_dbm + self.antenna_gain_db - path_loss_db
        noise_dbm = (
            _BOLTZMANN_DBM + 10 * math.log10(bandwidth_hz) + self.noise_figure_db
        )
        return rx_dbm - noise_dbm


def deployment_snrs(
    gateway: Position,
    devices: list[tuple[Position, Modem]],
    path_loss: PathLossModel | None = None,
    budget: LinkBudget | None = None,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """In-band SNR for each (position, modem) pair around a gateway."""
    path_loss = path_loss or PathLossModel()
    budget = budget or LinkBudget()
    out = []
    for position, modem in devices:
        loss = path_loss.loss_db(gateway.distance_to(position), rng)
        out.append(budget.snr_db(loss, modem.bandwidth))
    return out
