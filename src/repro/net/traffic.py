"""Traffic generators: organic duty-cycled traffic and forced collisions.

Two generators feed the experiments:

* :func:`poisson_scene` — every device wakes up on its own Poisson
  clock, exactly the uncoordinated "wake up and transmit" behaviour the
  paper describes; collisions happen by chance.
* :func:`collision_scene` — deliberately overlapping packets of chosen
  technologies at chosen SNRs, used by the Figure 3(c) throughput
  experiment (the paper adjusts duty cycles "to capture all possible
  scenarios, including intertechnology collisions").
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..phy.base import Modem
from ..types import SceneTruth
from .device import Device
from .scene import SceneBuilder

__all__ = ["poisson_scene", "collision_scene"]


def poisson_scene(
    devices: list[Device],
    sample_rate_hz: float,
    duration_s: float,
    rng: np.random.Generator,
    noise_power: float = 1.0,
    cfo_ppm_range: float = 0.0,
    carrier_hz: float = 868e6,
) -> tuple[np.ndarray, SceneTruth]:
    """Render a scene of independent Poisson transmitters.

    Args:
        devices: Transmitting devices (each with its own SNR and rate).
        sample_rate_hz: Capture sample rate.
        duration_s: Scene length.
        rng: Random source.
        noise_power: Scene noise floor.
        cfo_ppm_range: Each packet draws a crystal error uniform in
            ±``cfo_ppm_range`` ppm of ``carrier_hz``.
        carrier_hz: Carrier for the ppm→Hz conversion.
    """
    if not devices:
        raise ConfigurationError("at least one device is required")
    builder = SceneBuilder(sample_rate_hz, duration_s, noise_power)
    for dev in devices:
        for t in dev.draw_arrivals(duration_s, rng):
            payload = dev.draw_payload(rng)
            cfo = 0.0
            if cfo_ppm_range > 0:
                cfo = float(rng.uniform(-cfo_ppm_range, cfo_ppm_range))
                cfo = cfo * 1e-6 * carrier_hz
            builder.add_packet(
                dev.modem,
                payload,
                start=int(t * sample_rate_hz),
                snr_db=dev.snr_db,
                rng=rng,
                device_id=dev.device_id,
                cfo_hz=cfo,
            )
    return builder.render(rng)


def collision_scene(
    modems: list[Modem],
    snrs_db: list[float],
    sample_rate_hz: float,
    rng: np.random.Generator,
    payload_len: int = 16,
    overlap: float = 1.0,
    noise_power: float = 1.0,
    guard_s: float = 2e-3,
    snr_mode: str = "inband",
    cfo_ppm_range: float = 0.0,
    carrier_hz: float = 868e6,
) -> tuple[np.ndarray, SceneTruth]:
    """Render one deliberate collision of ``len(modems)`` packets.

    Args:
        modems: Colliding technologies (2 or more).
        snrs_db: In-band SNR per packet (same length as ``modems``).
        sample_rate_hz: Capture sample rate.
        rng: Random source (phases + payloads).
        payload_len: Payload size for every packet.
        overlap: 1.0 = all packets start together (complete overlap);
            0.0 = packets start back-to-back. Intermediate values slide
            later packets by ``(1 - overlap)`` of the first airtime.
        noise_power: Scene noise floor.
        guard_s: Silence before the first and after the last packet.
        snr_mode: SNR convention, see
            :meth:`repro.net.scene.SceneBuilder.add_packet`.
        cfo_ppm_range: Per-packet crystal error drawn uniform in ±range.
        carrier_hz: Carrier for the ppm→Hz conversion.

    Raises:
        ConfigurationError: on mismatched list lengths or bad overlap.
    """
    if len(modems) != len(snrs_db):
        raise ConfigurationError("modems and snrs_db must have equal length")
    if len(modems) < 1:
        raise ConfigurationError("at least one modem is required")
    if not 0.0 <= overlap <= 1.0:
        raise ConfigurationError("overlap must be in [0, 1]")
    airtimes = [m.frame_airtime(payload_len) for m in modems]
    guard = guard_s
    starts_s = []
    t = guard
    for i, _ in enumerate(modems):
        starts_s.append(t)
        if i + 1 < len(modems):
            t += airtimes[i] * (1.0 - overlap)
    duration = max(
        s + a for s, a in zip(starts_s, airtimes, strict=True)
    ) + guard
    builder = SceneBuilder(sample_rate_hz, duration, noise_power)
    for dev_id, (modem, snr, start_s) in enumerate(
        zip(modems, snrs_db, starts_s, strict=True)
    ):
        payload = rng.integers(0, 256, payload_len, dtype=np.uint8).tobytes()
        cfo = 0.0
        if cfo_ppm_range > 0:
            cfo = float(rng.uniform(-cfo_ppm_range, cfo_ppm_range))
            cfo = cfo * 1e-6 * carrier_hz
        builder.add_packet(
            modem,
            payload,
            start=int(start_s * sample_rate_hz),
            snr_db=snr,
            rng=rng,
            device_id=dev_id,
            cfo_hz=cfo,
            snr_mode=snr_mode,
        )
    return builder.render(rng)
