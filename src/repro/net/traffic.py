"""Traffic generators: organic duty-cycled traffic and forced collisions.

Two scene generators feed the experiments:

* :func:`poisson_scene` — every device wakes up on its own Poisson
  clock, exactly the uncoordinated "wake up and transmit" behaviour the
  paper describes; collisions happen by chance.
* :func:`collision_scene` — deliberately overlapping packets of chosen
  technologies at chosen SNRs, used by the Figure 3(c) throughput
  experiment (the paper adjusts duty cycles "to capture all possible
  scenarios, including intertechnology collisions").

On top of them sits the *fleet-scale* offered-load model used by the
ingestion-service benchmark: :class:`DutyCycleProfile` turns a device
population and a regulatory duty-cycle cap into an aggregate segment
arrival rate via airtime math (a device that may occupy the channel for
a fraction ``d`` of the time wakes up every ``airtime / d`` seconds on
average), and :func:`fleet_arrival_times` draws one merged Poisson
arrival stream at that aggregate rate — O(events), not O(devices), so a
10^6-device fleet costs the same as a ten-device one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..phy.base import Modem
from ..types import SceneTruth
from .device import Device
from .scene import SceneBuilder

__all__ = [
    "poisson_scene",
    "collision_scene",
    "DutyCycleProfile",
    "fleet_arrival_times",
]


def poisson_scene(
    devices: list[Device],
    sample_rate_hz: float,
    duration_s: float,
    rng: np.random.Generator,
    noise_power: float = 1.0,
    cfo_ppm_range: float = 0.0,
    carrier_hz: float = 868e6,
) -> tuple[np.ndarray, SceneTruth]:
    """Render a scene of independent Poisson transmitters.

    Args:
        devices: Transmitting devices (each with its own SNR and rate).
        sample_rate_hz: Capture sample rate.
        duration_s: Scene length.
        rng: Random source.
        noise_power: Scene noise floor.
        cfo_ppm_range: Each packet draws a crystal error uniform in
            ±``cfo_ppm_range`` ppm of ``carrier_hz``.
        carrier_hz: Carrier for the ppm→Hz conversion.
    """
    if not devices:
        raise ConfigurationError("at least one device is required")
    builder = SceneBuilder(sample_rate_hz, duration_s, noise_power)
    for dev in devices:
        for t in dev.draw_arrivals(duration_s, rng):
            payload = dev.draw_payload(rng)
            cfo = 0.0
            if cfo_ppm_range > 0:
                cfo = float(rng.uniform(-cfo_ppm_range, cfo_ppm_range))
                cfo = cfo * 1e-6 * carrier_hz
            builder.add_packet(
                dev.modem,
                payload,
                start=int(t * sample_rate_hz),
                snr_db=dev.snr_db,
                rng=rng,
                device_id=dev.device_id,
                cfo_hz=cfo,
            )
    return builder.render(rng)


def collision_scene(
    modems: list[Modem],
    snrs_db: list[float],
    sample_rate_hz: float,
    rng: np.random.Generator,
    payload_len: int = 16,
    overlap: float = 1.0,
    noise_power: float = 1.0,
    guard_s: float = 2e-3,
    snr_mode: str = "inband",
    cfo_ppm_range: float = 0.0,
    carrier_hz: float = 868e6,
) -> tuple[np.ndarray, SceneTruth]:
    """Render one deliberate collision of ``len(modems)`` packets.

    Args:
        modems: Colliding technologies (2 or more).
        snrs_db: In-band SNR per packet (same length as ``modems``).
        sample_rate_hz: Capture sample rate.
        rng: Random source (phases + payloads).
        payload_len: Payload size for every packet.
        overlap: 1.0 = all packets start together (complete overlap);
            0.0 = packets start back-to-back. Intermediate values slide
            each later packet by ``(1 - overlap)`` of the *preceding*
            packet's own airtime, so with heterogeneous technologies
            every consecutive pair overlaps for the same fraction of
            the earlier packet's frame.
        noise_power: Scene noise floor.
        guard_s: Silence before the first and after the last packet.
        snr_mode: SNR convention, see
            :meth:`repro.net.scene.SceneBuilder.add_packet`.
        cfo_ppm_range: Per-packet crystal error drawn uniform in ±range.
        carrier_hz: Carrier for the ppm→Hz conversion.

    Raises:
        ConfigurationError: on mismatched list lengths or bad overlap.
    """
    if len(modems) != len(snrs_db):
        raise ConfigurationError("modems and snrs_db must have equal length")
    if len(modems) < 2:
        raise ConfigurationError(
            "a collision needs 2 or more modems "
            "(use SceneBuilder directly for a single packet)"
        )
    if not 0.0 <= overlap <= 1.0:
        raise ConfigurationError("overlap must be in [0, 1]")
    airtimes = [m.frame_airtime(payload_len) for m in modems]
    guard = guard_s
    starts_s = []
    t = guard
    for i, _ in enumerate(modems):
        starts_s.append(t)
        if i + 1 < len(modems):
            t += airtimes[i] * (1.0 - overlap)
    duration = max(
        s + a for s, a in zip(starts_s, airtimes, strict=True)
    ) + guard
    builder = SceneBuilder(sample_rate_hz, duration, noise_power)
    for dev_id, (modem, snr, start_s) in enumerate(
        zip(modems, snrs_db, starts_s, strict=True)
    ):
        payload = rng.integers(0, 256, payload_len, dtype=np.uint8).tobytes()
        cfo = 0.0
        if cfo_ppm_range > 0:
            cfo = float(rng.uniform(-cfo_ppm_range, cfo_ppm_range))
            cfo = cfo * 1e-6 * carrier_hz
        builder.add_packet(
            modem,
            payload,
            start=int(start_s * sample_rate_hz),
            snr_db=snr,
            rng=rng,
            device_id=dev_id,
            cfo_hz=cfo,
            snr_mode=snr_mode,
        )
    return builder.render(rng)


@dataclass(frozen=True)
class DutyCycleProfile:
    """Aggregate traffic model of one homogeneous device population.

    The IoT-realistic way to specify offered load: instead of a raw
    "N segments per second", give the population size and the fraction
    of airtime each device uses (regulatory duty-cycle caps are the
    natural anchor — EU 868 MHz sub-bands allow 0.1%/1%/10%), and let
    the technology's frame airtime convert that into wake-up and
    arrival rates.

    Attributes:
        technology: Registry name of the population's radio technology.
        population: Number of devices (scales the aggregate rate only —
            no per-device state is ever materialized).
        duty_cycle: Fraction of time each device occupies the channel
            (e.g. ``0.01`` for the 1% regulatory cap).
        payload_len: Payload size in bytes used for the airtime math.
    """

    technology: str
    population: int
    duty_cycle: float
    payload_len: int = 16

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ConfigurationError("population must be >= 1")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigurationError("duty_cycle must be in (0, 1]")
        if self.payload_len < 1:
            raise ConfigurationError("payload_len must be >= 1")

    def mean_interval_s(self, airtime_s: float) -> float:
        """Mean per-device wake-up interval implied by the duty cycle.

        A device transmitting ``airtime_s``-long frames for a fraction
        ``duty_cycle`` of the time wakes up every
        ``airtime_s / duty_cycle`` seconds on average.
        """
        if airtime_s <= 0:
            raise ConfigurationError("airtime_s must be positive")
        return airtime_s / self.duty_cycle

    def aggregate_rate_hz(self, airtime_s: float) -> float:
        """Fleet-wide segment arrival rate (per second of channel time).

        The superposition of ``population`` independent Poisson
        processes is Poisson at the summed rate, which is what lets the
        load generator draw one merged arrival stream instead of
        simulating each device.
        """
        return self.population / self.mean_interval_s(airtime_s)


def fleet_arrival_times(
    rate_hz: float,
    duration_s: float,
    rng: np.random.Generator,
    max_events: int | None = None,
) -> np.ndarray:
    """Arrival times of one merged Poisson stream at ``rate_hz``.

    Draws exponential inter-arrival gaps until ``duration_s`` is covered
    (or ``max_events`` reached — at fleet scale the horizon is usually
    bounded by the event budget, not the clock). Cost is O(events)
    regardless of the population behind the rate.

    Raises:
        ConfigurationError: on non-positive rate or duration.
    """
    if rate_hz <= 0:
        raise ConfigurationError("rate_hz must be positive")
    if duration_s <= 0:
        raise ConfigurationError("duration_s must be positive")
    # Draw in chunks: one exponential per event, vectorized, resuming
    # until the horizon is covered or the budget is spent.
    times: list[np.ndarray] = []
    t = 0.0
    budget = max_events if max_events is not None else np.inf
    drawn = 0
    while t < duration_s and drawn < budget:
        chunk = min(4096, int(budget - drawn)) if np.isfinite(budget) else 4096
        gaps = rng.exponential(1.0 / rate_hz, size=chunk)
        arrivals = t + np.cumsum(gaps)
        keep = arrivals < duration_s
        times.append(arrivals[keep])
        drawn += int(keep.sum())
        if not keep.all():
            break
        t = float(arrivals[-1])
    if not times:
        return np.empty(0, dtype=float)
    merged = np.concatenate(times)
    if max_events is not None:
        merged = merged[:max_events]
    return merged
