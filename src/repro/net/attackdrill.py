"""Scored adversarial drill: legit-traffic survival under attack.

The attack counterpart of ``galiot chaos``: build one scene of honest
traffic, run it twice through the end-to-end pipeline — once clean and
unhardened (the baseline), once with a seeded
:class:`~repro.net.adversary.AttackPlan` rendered into the capture and
the hardened receive path enabled (jamming detector, decode guard,
resilient backhaul + degradation ladder) — and score the attacked run on
two axes:

* **survival** — the fraction of baseline-decoded frames still accepted
  under attack (gate: >= 95%, like the chaos drill);
* **acceptance hygiene** — replayed frames accepted beyond the
  legitimate original (``replay_accepts``) and accepted frames matching
  no honest transmission at all (``false_decodes``).

Everything is a pure function of ``(scenario, seed, scene parameters)``:
two same-seed drills produce byte-identical ledgers
(:meth:`AttackDrillReport.ledger`), which the CLI, the benchmark and the
tests all rely on. Used by ``galiot attack`` and
``benchmarks/bench_attack.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..guard import DecodeGuard, GuardStats
from ..telemetry import Telemetry
from .adversary import ATTACK_SCENARIOS, AttackLedger, build_attack_scenario, render_attack_plan

__all__ = ["AttackDrillReport", "run_attack_drill"]


@dataclass
class AttackDrillReport:
    """Outcome of one adversarial drill run.

    Attributes:
        scenario: Named attack scenario that was rendered.
        seed: Effective root seed (scene, plan and calibration).
        baseline_frames: Frames the clean, unhardened run decoded.
        accepted_frames: Frames the hardened run accepted under attack.
        survived: Baseline frames still accepted under attack.
        replay_accepts: Accepted occurrences of a replayed frame beyond
            its one legitimate decode. (If the original was lost to the
            attack and only the replay got through, the replay passes as
            the legitimate copy — payload matching cannot tell them
            apart — so it counts toward survival, not here.)
        false_decodes: Accepted frames matching no honest transmission.
        jamming_events: Spectrum anomalies the gateway flagged.
        detection_latency_s: Delay from the first jammer's on-air time
            to the first overlapping jamming event (``None`` without
            jammers, ``inf`` if jamming went undetected).
        degraded_segments: Metadata-only ships under attack.
        dropped_segments: Drop-policy evictions under attack.
        guard: The shared decode guard's accept/reject counters.
        telemetry: The attacked run's metrics sink (``attack.*`` live
            here).
    """

    scenario: str
    seed: int
    baseline_frames: int
    accepted_frames: int
    survived: int
    replay_accepts: int
    false_decodes: int
    jamming_events: int
    detection_latency_s: float | None
    degraded_segments: int
    dropped_segments: int
    guard: GuardStats
    telemetry: Telemetry = field(repr=False, default_factory=Telemetry)
    accepted: list[tuple[str, bytes]] = field(repr=False, default_factory=list)

    @property
    def survival(self) -> float:
        """Survived fraction of the baseline (1.0 for an empty baseline)."""
        if self.baseline_frames <= 0:
            return 1.0
        return self.survived / self.baseline_frames

    @property
    def false_decode_rate(self) -> float:
        """False decodes over accepted frames (0.0 when nothing accepted)."""
        if self.accepted_frames <= 0:
            return 0.0
        return self.false_decodes / self.accepted_frames

    def passed(
        self,
        survival_floor: float = 0.95,
        false_decode_ceiling: float = 0.01,
        replay_ceiling: int = 0,
    ) -> bool:
        """The drill's gate: survival up, acceptance hygiene clean."""
        return (
            self.survival >= survival_floor
            and self.false_decode_rate <= false_decode_ceiling
            and self.replay_accepts <= replay_ceiling
        )

    def ledger(self) -> list[str]:
        """Deterministic per-run ledger: two same-seed drills must
        produce identical lines (the reproducibility acceptance check).
        """
        lines = [
            f"scenario={self.scenario} seed={self.seed}",
            f"survival={self.survived}/{self.baseline_frames}",
            (
                f"accepted={self.accepted_frames} "
                f"replay_accepts={self.replay_accepts} "
                f"false_decodes={self.false_decodes}"
            ),
            (
                f"guard accepted={self.guard.accepted} "
                f"replays={self.guard.replays_rejected} "
                f"duplicates={self.guard.duplicates_rejected} "
                f"corrupt={self.guard.corrupt_rejected}"
            ),
            f"jamming_events={self.jamming_events}",
        ]
        for tech, payload in sorted(self.accepted):
            lines.append(f"frame {tech}:{payload.hex()}")
        return lines


def _detection_latency(
    plan_jammers, jamming_events
) -> float | None:
    if not plan_jammers:
        return None
    first = min(plan_jammers, key=lambda j: j.start_s)
    for event in sorted(jamming_events, key=lambda e: e.start_s):
        if event.end_s > first.start_s and event.start_s < first.end_s:
            return max(event.start_s - first.start_s, 0.0)
    return float("inf")


def run_attack_drill(
    scenario: str,
    seed: int = 0xC0FFEE,
    duration_s: float = 2.0,
    packets: int = 48,
    snr_db: float = 12.0,
    technologies: tuple[str, ...] = ("xbee", "zwave"),
    rate_mbps: float = 20.0,
    chunk: int = 262_144,
    hardened: bool = True,
) -> AttackDrillReport:
    """Run one scored adversarial drill.

    Args:
        scenario: One of :data:`~repro.net.adversary.ATTACK_SCENARIOS`
            (``"none"`` measures the hardening layer's clean-air
            overhead: same scene, no attacker).
        seed: Root seed for the scene, the attack plan and detector
            calibration.
        duration_s: Scene length in seconds.
        packets: Honest packets placed (round-robin over
            ``technologies``).
        snr_db: Per-packet capture SNR.
        technologies: Modem round-robin (compact-frame technologies;
            LoRa's huge extraction windows merge everything into one
            segment, collapsing the per-segment attack axes).
        rate_mbps: Backhaul link rate for the hardened run.
        chunk: Streaming chunk size in samples.
        hardened: Disable to measure the unguarded pipeline under the
            same attack (what the guards are actually worth).
    """
    from ..cloud import CloudService
    from ..gateway import (
        BackhaulLink,
        DegradationLadder,
        GalioTGateway,
        ResilientBackhaul,
        StreamingGateway,
        iter_chunks,
    )
    from ..phy import create_modem
    from ..sensing import JammingDetector
    from .scene import SceneBuilder

    if scenario not in ATTACK_SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from {ATTACK_SCENARIOS}"
        )
    fs = 1e6
    modems = [create_modem(name) for name in technologies]
    plan = build_attack_scenario(
        scenario,
        seed=seed,
        duration_s=duration_s,
        technologies=tuple(technologies),
        n_packets_hint=packets,
    )

    def build(attacked: bool):
        rng = np.random.default_rng(seed)
        builder = SceneBuilder(fs, duration_s)
        n_samples = int(duration_s * fs)
        for i in range(packets):
            modem = modems[i % len(modems)]
            start = int((i + 0.5) * n_samples / packets)
            builder.add_packet(
                modem, f"legit-{i}".encode(), start, snr_db, rng,
                snr_mode="capture",
            )
        ledger = AttackLedger()
        if attacked:
            # The adversary draws only from plan-derived generators, so
            # the legit packets and floor noise below stay bit-identical
            # between the two builds.
            ledger = render_attack_plan(builder, plan, modems)
        capture, truth = builder.render(rng)
        noise = (
            rng.normal(size=200_000) + 1j * rng.normal(size=200_000)
        ) * np.sqrt(truth.noise_power / 2)
        return capture, truth, noise, ledger

    def run(capture, noise, harden: bool):
        # Each run *is* a composition root: the baseline and attacked
        # pipelines need isolated registries so the report's attack.*
        # counters reflect only the attacked run.
        telemetry = Telemetry()  # noqa: GL005
        guard = DecodeGuard() if harden else None
        if harden:
            backhaul = ResilientBackhaul(
                BackhaulLink(rate_bps=rate_mbps * 1e6, max_queue_s=0.5)
            )
            ladder = DegradationLadder()
            jamming = JammingDetector(fs)
        else:
            backhaul, ladder, jamming = None, None, None
        gateway = GalioTGateway(
            modems, fs, use_edge=False, backhaul=backhaul,
            degradation=ladder, jamming=jamming, guard=guard,
            telemetry=telemetry,
        )
        gateway.detector.calibrate(noise)
        service = CloudService(
            modems, fs, guard=guard,
            sync_retries=2 if harden else 0,
            telemetry=telemetry,
        )
        stream = StreamingGateway(gateway)
        report = stream.process_stream(iter_chunks(capture, chunk))
        results = [
            r for s in report.shipped for r in service.process_segment(s)
        ]
        stats = guard if guard is not None else GuardStats()
        if isinstance(stats, DecodeGuard):
            stats = stats.stats
        return report, results, stats, telemetry

    base_capture, truth, noise, _ = build(attacked=False)
    atk_capture, _, _, ledger = build(attacked=True)

    _, base_results, _, _ = run(base_capture, noise, harden=False)
    report, results, guard_stats, telemetry = run(
        atk_capture, noise, harden=hardened
    )

    base_frames = [
        (r.technology, r.payload) for r in base_results if r.ok
    ]
    accepted = [(r.technology, r.payload) for r in results if r.ok]
    survived = sum(1 for f in base_frames if f in accepted)
    truth_frames = {(p.technology, p.payload) for p in truth.packets}
    false_decodes = sum(1 for f in accepted if f not in truth_frames)
    replay_accepts = sum(
        max(0, accepted.count(key) - 1)
        for key in ledger.replayed_payloads()
    )
    return AttackDrillReport(
        scenario=scenario,
        seed=seed,
        baseline_frames=len(base_frames),
        accepted_frames=len(accepted),
        survived=survived,
        replay_accepts=replay_accepts,
        false_decodes=false_decodes,
        jamming_events=len(report.jamming_events),
        detection_latency_s=_detection_latency(
            plan.jammers, report.jamming_events
        ),
        degraded_segments=report.degraded_segments,
        dropped_segments=report.dropped_segments,
        guard=guard_stats,
        telemetry=telemetry,
        accepted=accepted,
    )
