"""Energy and battery-life accounting.

Tracks transmission energy per device and converts it into the
battery-life numbers the paper's motivation cites: collisions that force
retransmissions multiply the transmit energy, which dominates the budget
of a duty-cycled device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .device import Device

__all__ = ["EnergyLedger"]


@dataclass
class EnergyLedger:
    """Cumulative per-device energy bookkeeping.

    Attributes:
        tx_energy_j: Transmit energy spent, per device id.
        tx_time_s: Airtime spent transmitting, per device id.
        elapsed_s: Wall-clock simulated time.
    """

    tx_energy_j: dict[int, float] = field(default_factory=dict)
    tx_time_s: dict[int, float] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def record_tx(self, device: Device, airtime_s: float) -> None:
        """Charge one transmission to a device's battery."""
        if airtime_s < 0:
            raise ConfigurationError("airtime_s must be >= 0")
        energy = device.energy.tx_energy(airtime_s)
        self.tx_energy_j[device.device_id] = (
            self.tx_energy_j.get(device.device_id, 0.0) + energy
        )
        self.tx_time_s[device.device_id] = (
            self.tx_time_s.get(device.device_id, 0.0) + airtime_s
        )

    def advance(self, seconds: float) -> None:
        """Advance simulated time (for sleep-power accounting)."""
        if seconds < 0:
            raise ConfigurationError("seconds must be >= 0")
        self.elapsed_s += seconds

    def average_power_w(self, device: Device) -> float:
        """Mean power draw of a device over the simulated interval."""
        if self.elapsed_s <= 0:
            raise ConfigurationError("no simulated time elapsed")
        tx = self.tx_energy_j.get(device.device_id, 0.0)
        sleep_time = max(
            self.elapsed_s - self.tx_time_s.get(device.device_id, 0.0), 0.0
        )
        sleep = device.energy.sleep_power_w * sleep_time
        return (tx + sleep) / self.elapsed_s

    def battery_life_days(self, device: Device) -> float:
        """Projected battery life at the observed duty cycle."""
        power = self.average_power_w(device)
        if power <= 0:
            return float("inf")
        return device.energy.battery_j / power / 86400.0
