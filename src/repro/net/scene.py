"""Scene composition: place packets on a timeline, produce one capture.

A *scene* is what the gateway's antenna sees: a complex baseband stream
at the capture rate containing a common AWGN floor plus every packet at
its own in-band SNR, start time, carrier phase and optional CFO. Ground
truth (:class:`repro.types.SceneTruth`) travels alongside so detectors
and decoders can be scored.

The noise floor is fixed at :data:`NOISE_POWER` (an arbitrary reference;
everything is relative) and packet amplitudes are derived from it via
:func:`repro.dsp.channel.scale_to_snr`, honouring the in-band SNR
convention documented in :mod:`repro.dsp.channel`.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..dsp.channel import add_at, scale_to_snr
from ..dsp.impairments import apply_cfo, apply_phase
from ..dsp.resample import to_rate
from ..errors import ConfigurationError
from ..phy.base import Modem
from ..types import PacketTruth, SceneTruth

__all__ = ["NOISE_POWER", "SceneBuilder"]

#: Common full-band noise power of every scene (linear, arbitrary ref).
NOISE_POWER = 1.0


class SceneBuilder:
    """Accumulates packets, then renders the capture + ground truth.

    Args:
        sample_rate_hz: Capture sample rate (1 MHz in the paper's prototype).
        duration_s: Scene length in seconds.
        noise_power: Full-band AWGN power (linear).
    """

    def __init__(
        self, sample_rate_hz: float, duration_s: float, noise_power: float = NOISE_POWER
    ):
        if sample_rate_hz <= 0 or duration_s <= 0:
            raise ConfigurationError("sample_rate_hz and duration_s must be positive")
        if noise_power < 0:
            raise ConfigurationError("noise_power must be >= 0")
        self.sample_rate_hz = float(sample_rate_hz)
        self.n_samples = int(round(duration_s * sample_rate_hz))
        self.noise_power = float(noise_power)
        self._stream = np.zeros(self.n_samples, dtype=complex)
        self._packets: list[PacketTruth] = []

    @property
    def fs(self) -> float:
        """Deprecated alias for :attr:`sample_rate_hz`."""
        warnings.warn(
            "SceneBuilder.fs is deprecated; use .sample_rate_hz",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.sample_rate_hz

    def add_packet(
        self,
        modem: Modem,
        payload: bytes,
        start: int,
        snr_db: float,
        rng: np.random.Generator,
        device_id: int = 0,
        cfo_hz: float = 0.0,
        random_phase: bool = True,
        snr_mode: str = "inband",
        fading: str | None = None,
    ) -> PacketTruth:
        """Modulate and inject one packet.

        Args:
            modem: Technology to transmit with.
            payload: MAC payload bytes.
            start: First sample index in the capture.
            snr_db: SNR against the scene's noise floor; interpreted per
                ``snr_mode``.
            rng: Source of the random carrier phase.
            device_id: Transmitting device id recorded in the truth.
            cfo_hz: Transmitter carrier offset applied to the waveform.
            random_phase: Draw a uniform carrier phase (real radios are
                never phase-aligned).
            snr_mode: ``"inband"`` — SNR inside the signal's own occupied
                bandwidth (the decoding-relevant figure); ``"capture"`` —
                per-sample SNR over the full capture bandwidth (what you
                get when injecting AWGN onto an RTL-SDR trace, as the
                paper's detection experiment does).
            fading: ``None`` for a fixed channel gain, ``"rayleigh"`` to
                draw the packet's flat-fading amplitude from a Rayleigh
                distribution (the SNR then becomes the *average* SNR).

        Returns:
            The ground-truth record appended to the scene.

        Raises:
            ConfigurationError: for an unknown ``snr_mode`` or fading
                model.
        """
        if snr_mode not in ("inband", "capture"):
            raise ConfigurationError(f"unknown snr_mode {snr_mode!r}")
        if fading not in (None, "rayleigh"):
            raise ConfigurationError(f"unknown fading model {fading!r}")
        wave = modem.modulate(payload)
        wave = to_rate(wave, modem.sample_rate, self.sample_rate_hz)
        if cfo_hz:
            wave = apply_cfo(wave, cfo_hz, self.sample_rate_hz)
        if random_phase:
            wave = apply_phase(wave, float(rng.uniform(0, 2 * np.pi)))
        if self.noise_power > 0:
            ref_bw = modem.bandwidth if snr_mode == "inband" else self.sample_rate_hz
            wave = scale_to_snr(
                wave, snr_db, self.noise_power, min(ref_bw, self.sample_rate_hz), self.sample_rate_hz
            )
        if fading == "rayleigh":
            # Unit-mean-square Rayleigh draw: |h|^2 ~ Exp(1), so the
            # configured SNR is the average over fades.
            wave = wave * float(rng.rayleigh(scale=np.sqrt(0.5)))
        add_at(self._stream, start, wave)
        truth = PacketTruth(
            packet_id=len(self._packets),
            technology=modem.name,
            start=max(start, 0),
            length=min(len(wave), self.n_samples - max(start, 0)),
            snr_db=snr_db,
            payload=bytes(payload),
            device_id=device_id,
        )
        self._packets.append(truth)
        return truth

    @property
    def packets(self) -> tuple[PacketTruth, ...]:
        """The legitimate packets placed so far (a replay attacker's menu)."""
        return tuple(self._packets)

    def add_interference(self, wave: np.ndarray, start: int) -> None:
        """Add a raw waveform into the capture without a truth record.

        This is the adversary's entry point
        (:mod:`repro.net.adversary`): jammer bursts, replayed frames and
        spoofed preambles are *not* legitimate packets, so they must not
        appear in :class:`~repro.types.SceneTruth` — detectors and
        decoders are scored against honest traffic only. The waveform is
        pre-scaled by the caller and clipped to the capture bounds.
        """
        add_at(self._stream, start, np.asarray(wave, dtype=complex))

    def render(self, rng: np.random.Generator) -> tuple[np.ndarray, SceneTruth]:
        """Add the AWGN floor and return ``(capture, truth)``."""
        capture = self._stream.copy()
        if self.noise_power > 0:
            sigma = np.sqrt(self.noise_power / 2)
            capture += rng.normal(scale=sigma, size=self.n_samples)
            capture += 1j * rng.normal(scale=sigma, size=self.n_samples)
        truth = SceneTruth(
            sample_rate=self.sample_rate_hz,
            n_samples=self.n_samples,
            noise_power=self.noise_power,
            packets=list(self._packets),
        )
        return capture, truth
