"""Multi-gateway diversity combining (the Charm direction).

The paper's reference [11] (Charm, IPSN'18 — by the same authors) shows
that LP-WAN packets too weak for any single gateway can be recovered by
*coherently combining* the I/Q of several gateways in the cloud. Since
GalioT already ships I/Q segments to the cloud, that capability falls
out naturally; this module implements it:

* :func:`receive_at_gateways` — renders one transmission as seen by N
  gateways (independent noise, per-gateway gain/phase/delay);
* :func:`combine_segments` — aligns and max-ratio combines the gateway
  copies into one higher-SNR stream;
* :func:`selection_diversity` — the baseline: decode whichever single
  gateway copy works.

An SNR gain of ~10·log10(N) dB over the best single gateway is the
theoretical ceiling; the tests verify packets undecodable at every
single gateway decode after combining.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cloud.sic import try_decode
from ..dsp.correlation import cross_correlate
from ..errors import ConfigurationError
from ..phy.base import FrameResult, Modem

__all__ = [
    "GatewayCopy",
    "receive_at_gateways",
    "combine_segments",
    "selection_diversity",
]


@dataclass
class GatewayCopy:
    """One gateway's view of the same transmission.

    Attributes:
        gateway_id: Which gateway captured it.
        samples: The captured segment (common sample rate).
        snr_db: The in-band SNR this gateway received the packet at
            (ground truth for experiments; real systems estimate it).
    """

    gateway_id: int
    samples: np.ndarray
    snr_db: float


def receive_at_gateways(
    modem: Modem,
    payload: bytes,
    snrs_db: list[float],
    rng: np.random.Generator,
    pad: int = 2000,
    max_delay: int = 8,
) -> list[GatewayCopy]:
    """Render one transmission as captured by several gateways.

    Each gateway sees the same waveform with its own complex channel
    gain (amplitude set by its SNR, uniform random phase), an integer
    propagation/trigger skew of up to ``max_delay`` samples, and
    independent AWGN.
    """
    if not snrs_db:
        raise ConfigurationError("at least one gateway is required")
    wave = modem.modulate(payload)
    copies = []
    for gid, snr in enumerate(snrs_db):
        delay = int(rng.integers(0, max_delay + 1))
        buf = np.zeros(pad * 2 + len(wave) + max_delay, dtype=complex)
        phase = np.exp(1j * rng.uniform(0, 2 * np.pi))
        amplitude = 10 ** (snr / 20)  # unit noise per sample below
        buf[pad + delay : pad + delay + len(wave)] = wave * amplitude * phase
        noise = (
            rng.normal(size=len(buf)) + 1j * rng.normal(size=len(buf))
        ) / np.sqrt(2)
        copies.append(
            GatewayCopy(gateway_id=gid, samples=buf + noise, snr_db=snr)
        )
    return copies


def combine_segments(
    copies: list[GatewayCopy],
    reference: np.ndarray,
    search: int = 64,
) -> np.ndarray:
    """Align and max-ratio combine gateway copies of one transmission.

    Args:
        copies: The gateway captures (equal sample rate; may have small
            relative delays).
        reference: A known waveform present in every copy (the
            technology's sync waveform) used to estimate each copy's
            delay, phase and amplitude.
        search: How many lead/lag samples around the first copy's peak
            to search when aligning the other copies. Gateways trigger
            on the same transmission, so relative delays are small;
            bounding the search keeps a noise or sidelobe peak far away
            in the capture from hijacking a copy's alignment.

    Returns:
        The combined stream, cropped to the shortest aligned copy. Each
        copy is weighted by its estimated complex amplitude (conjugate),
        which is maximal-ratio combining when noise is equal per copy.

    Raises:
        ConfigurationError: on empty input or a non-positive ``search``.
    """
    if not copies:
        raise ConfigurationError("no copies to combine")
    if search < 1:
        raise ConfigurationError("search must be >= 1")
    # Estimate per-copy delay and complex gain against the reference.
    # The first copy's global peak anchors the frame position; every
    # other copy's peak is constrained to ±search samples of it.
    aligned: list[tuple[np.ndarray, complex]] = []
    ref_energy = float(np.sum(np.abs(reference) ** 2))
    anchor: int | None = None
    for copy in copies:
        corr = cross_correlate(copy.samples, reference)
        if anchor is None:
            peak = int(np.argmax(np.abs(corr)))
            anchor = peak
        else:
            # Clamp the window into the valid correlation range (a
            # short copy may not even reach the anchor).
            lo = max(0, min(anchor - search, len(corr) - 1))
            hi = max(lo + 1, min(len(corr), anchor + search + 1))
            peak = lo + int(np.argmax(np.abs(corr[lo:hi])))
        gain = complex(corr[peak] / ref_energy)
        aligned.append((copy.samples[peak:], gain))
    # Re-reference all copies to the first one's frame position.
    base_len = min(len(x) for x, _ in aligned)
    combined = np.zeros(base_len, dtype=complex)
    total_weight = 0.0
    for x, gain in aligned:
        combined += np.conj(gain) * x[:base_len]
        total_weight += abs(gain) ** 2
    if total_weight > 0:
        combined /= np.sqrt(total_weight)
    # Re-prepend a little silence so frame sync has room before the peak.
    lead = np.zeros(256, dtype=complex)
    return np.concatenate([lead, combined])


def selection_diversity(
    copies: list[GatewayCopy], modem: Modem, sample_rate_hz: float
) -> FrameResult | None:
    """Baseline: first gateway copy that decodes on its own."""
    for copy in copies:
        frame = try_decode(modem, copy.samples, sample_rate_hz)
        if frame is not None:
            return frame
    return None
