"""Adversarial RF device models: ``repro.net.adversary``.

The paper's gateway/cloud split assumes every transmitter is honest;
production deployments face jamming, replayed frames and spoofed
preambles — the attack shapes the BLE/Zigbee SDR penetration-testing
literature demonstrates against real stacks, and the ones ChirpOTLE
scripts against LoRaWAN channels. This module gives the simulator those
attackers, under the same seeded-determinism contract as
:class:`repro.faults.FaultPlan`:

* **Jammers** (:class:`JammerSpec`) — CW tones, sawtooth sweeps and
  pulsed wideband noise bursts, synthesized by :mod:`repro.dsp.jam` and
  scaled relative to the scene's noise floor.
* **Replay attackers** (:class:`ReplaySpec`) — capture a legitimate
  frame and re-inject a bit-exact copy at a later offset (fresh carrier
  phase, optional gain): the frame decodes perfectly, which is exactly
  the problem — only a duplicate-payload guard can reject it.
* **Spoofers** (:class:`SpoofSpec`) — emit the technology's genuine
  preamble + sync followed by noise where the payload belongs: every
  detector fires, every decode fails, and the pipeline burns backhaul
  and cloud cycles on garbage (a false-decode guard's workload).

Determinism contract (mirrors :class:`~repro.faults.FaultPlan`): every
waveform an :class:`AttackPlan` injects is a pure function of
``(plan.seed, attack index, spec fields)`` — two same-seed renders are
bit-identical. ``plan=None`` is the universal default and costs nothing:
:func:`render_attack_plan` returns immediately and the scene is
bit-identical to a render without the adversary layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dsp.channel import scale_to_snr
from ..dsp.impairments import apply_phase
from ..dsp.jam import cw_tone, pulsed_noise, swept_tone
from ..dsp.resample import to_rate
from ..errors import ConfigurationError
from ..phy.base import Modem
from .scene import SceneBuilder

__all__ = [
    "JammerSpec",
    "ReplaySpec",
    "SpoofSpec",
    "AttackPlan",
    "AttackTruth",
    "AttackLedger",
    "render_attack_plan",
    "ATTACK_SCENARIOS",
    "build_attack_scenario",
]

# Per-attack-class RNG salts: each injected waveform draws from
# default_rng((plan.seed, salt, index)) so attack classes never share a
# stream and adding one attacker never reshuffles another's randomness.
_JAM_SALT = 0x1A
_REPLAY_SALT = 0x2B
_SPOOF_SALT = 0x3C

JAMMER_KINDS = ("cw", "sweep", "pulse")
"""Jammer flavours understood by :class:`JammerSpec`."""


@dataclass(frozen=True)
class JammerSpec:
    """One jammer burst occupying ``[start_s, end_s)`` of the capture.

    Attributes:
        kind: One of :data:`JAMMER_KINDS` — ``"cw"`` (a parked tone),
            ``"sweep"`` (a sawtooth chirp across a span) or ``"pulse"``
            (duty-cycled wideband noise bursts).
        start_s: Burst start on the capture time axis.
        end_s: Burst end (exclusive).
        power: Jam power as a linear multiple of the scene's full-band
            noise power (2.0 = 3 dB above the floor). For pulsed
            jammers this is the *in-burst* power.
        center_hz: Tone frequency (CW) or sweep-span centre (sweep).
        span_hz: Total sweep width (sweep only).
        period_s: Sweep repetition period, or pulse period.
        duty: On-fraction of each pulse period (pulse only).
    """

    kind: str
    start_s: float
    end_s: float
    power: float
    center_hz: float = 0.0
    span_hz: float = 0.0
    period_s: float = 0.01
    duty: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in JAMMER_KINDS:
            raise ConfigurationError(
                f"unknown jammer kind {self.kind!r}; choose from {JAMMER_KINDS}"
            )
        if self.end_s <= self.start_s:
            raise ConfigurationError("need start_s < end_s")
        if self.power < 0:
            raise ConfigurationError("power must be >= 0")
        if self.kind == "sweep" and self.span_hz <= 0:
            raise ConfigurationError("sweep jammers need span_hz > 0")

    def covers(self, at_time: float) -> bool:
        """Whether ``at_time`` falls inside the burst."""
        return self.start_s <= at_time < self.end_s


@dataclass(frozen=True)
class ReplaySpec:
    """Re-inject one legitimate frame at a later offset.

    Attributes:
        victim: Index into the scene's legitimate packets (taken modulo
            the packet count, so plans compose with any traffic volume).
        delay_s: Re-injection delay after the original frame start.
        gain_db: Replay gain relative to the original frame's SNR (a
            closer/louder attacker replays hotter than the victim).
    """

    victim: int
    delay_s: float
    gain_db: float = 0.0

    def __post_init__(self) -> None:
        if self.victim < 0:
            raise ConfigurationError("victim index must be >= 0")
        if self.delay_s <= 0:
            raise ConfigurationError("delay_s must be positive")


@dataclass(frozen=True)
class SpoofSpec:
    """Emit a valid preamble + sync with a corrupted payload.

    Attributes:
        technology: Registry name of the spoofed technology.
        start_s: Injection time on the capture axis.
        snr_db: Injection SNR (same convention as the scene's packets).
        payload_len: Length of the (garbage) payload body in bytes —
            sets the spoofed frame's airtime.
    """

    technology: str
    start_s: float
    snr_db: float
    payload_len: int = 12

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError("start_s must be >= 0")
        if self.payload_len < 1:
            raise ConfigurationError("payload_len must be >= 1")


@dataclass(frozen=True)
class AttackPlan:
    """A deterministic schedule of adversarial transmissions.

    Mirrors :class:`repro.faults.FaultPlan`: frozen, picklable, and a
    pure function of its fields — rendering the same plan against the
    same scene twice yields bit-identical captures. ``None`` is the
    no-adversary default everywhere, checked with a single ``is None``.

    Attributes:
        seed: Root seed; every injected waveform's randomness (phases,
            noise bursts, garbage payloads) derives from it.
        jammers: Jam bursts on the capture time axis.
        replays: Frame replays against the scene's legitimate packets.
        spoofs: Spoofed-preamble transmissions.
    """

    seed: int = 0
    jammers: tuple[JammerSpec, ...] = ()
    replays: tuple[ReplaySpec, ...] = ()
    spoofs: tuple[SpoofSpec, ...] = ()

    def is_empty(self) -> bool:
        """Whether the plan schedules no attack at all."""
        return not (self.jammers or self.replays or self.spoofs)

    def jam_windows(self) -> tuple[tuple[float, float], ...]:
        """The scheduled jam bursts as ``(start_s, end_s)`` pairs."""
        return tuple((j.start_s, j.end_s) for j in self.jammers)

    def jammed(self, at_time: float) -> bool:
        """Whether any jammer is on the air at ``at_time``."""
        return any(j.covers(at_time) for j in self.jammers)

    def jam_duty_cycle(self, duration_s: float) -> float:
        """Fraction of ``[0, duration_s)`` covered by at least one jammer.

        Overlapping bursts are unioned, not double-counted.
        """
        if duration_s <= 0:
            return 0.0
        spans = sorted(
            (max(j.start_s, 0.0), min(j.end_s, duration_s))
            for j in self.jammers
        )
        covered = 0.0
        cursor = 0.0
        for lo, hi in spans:
            if hi <= cursor:
                continue
            covered += hi - max(lo, cursor)
            cursor = hi
        return min(covered / duration_s, 1.0)


@dataclass(frozen=True)
class AttackTruth:
    """Ground truth for one injected adversarial transmission.

    Attributes:
        kind: ``"jam-cw"``, ``"jam-sweep"``, ``"jam-pulse"``,
            ``"replay"`` or ``"spoof"``.
        start: First capture sample of the injected waveform.
        length: Injected waveform length in capture samples.
        technology: Mimicked technology (replay/spoof; ``None`` for
            jammers).
        payload: The replayed frame's payload — what an unguarded
            decoder will happily accept twice. ``None`` for jammers and
            spoofs (a spoof's payload is garbage by construction).
    """

    kind: str
    start: int
    length: int
    technology: str | None = None
    payload: bytes | None = None


@dataclass
class AttackLedger:
    """Everything :func:`render_attack_plan` injected, for scoring.

    The drill compares decoded frames against this ledger: an accepted
    frame matching a replayed ``(technology, payload)`` beyond its first
    legitimate decode is a *replay accept*; an accepted frame matching
    nothing in the scene truth is a *false decode*.
    """

    injected: list[AttackTruth] = field(default_factory=list)

    @property
    def replayed(self) -> list[AttackTruth]:
        """The replay injections, in schedule order."""
        return [t for t in self.injected if t.kind == "replay"]

    @property
    def spoofed(self) -> list[AttackTruth]:
        """The spoof injections, in schedule order."""
        return [t for t in self.injected if t.kind == "spoof"]

    @property
    def jam_bursts(self) -> list[AttackTruth]:
        """The jam injections, in schedule order."""
        return [t for t in self.injected if t.kind.startswith("jam-")]

    def replayed_payloads(self) -> set[tuple[str, bytes]]:
        """``(technology, payload)`` pairs the replay attacker copied."""
        return {
            (t.technology, t.payload)
            for t in self.replayed
            if t.technology is not None and t.payload is not None
        }


def _as_modem_map(modems: list[Modem] | dict[str, Modem]) -> dict[str, Modem]:
    if isinstance(modems, dict):
        return modems
    return {m.name: m for m in modems}


def _jam_waveform(
    spec: JammerSpec,
    n_samples: int,
    sample_rate_hz: float,
    rng: np.random.Generator,
) -> np.ndarray:
    phase = float(rng.uniform(0, 2 * np.pi))
    if spec.kind == "cw":
        return cw_tone(n_samples, sample_rate_hz, spec.center_hz, phase)
    if spec.kind == "sweep":
        half = spec.span_hz / 2
        return swept_tone(
            n_samples,
            sample_rate_hz,
            spec.center_hz - half,
            spec.center_hz + half,
            spec.period_s,
            phase,
        )
    return pulsed_noise(
        n_samples, sample_rate_hz, spec.period_s, spec.duty, rng
    )


def render_attack_plan(
    builder: SceneBuilder,
    plan: AttackPlan | None,
    modems: list[Modem] | dict[str, Modem],
    snr_mode: str = "capture",
) -> AttackLedger:
    """Inject a plan's attack timeline into a scene under construction.

    Call after the legitimate packets are placed (replays copy them) and
    before :meth:`~repro.net.scene.SceneBuilder.render`. All adversary
    randomness comes from generators derived from ``plan.seed``, never
    from the scene's own generator — so a scene with ``plan=None`` (or
    an empty plan) is bit-identical to one built without this call, and
    two same-seed renders of the same plan are bit-identical to each
    other.

    Args:
        builder: The scene, with legitimate traffic already placed.
        plan: The attack schedule (``None`` → no-op, empty ledger).
        modems: The registered technologies (replays and spoofs
            re-modulate through them).
        snr_mode: SNR convention for replay/spoof amplitudes —
            ``"capture"`` or ``"inband"``, matching the convention the
            legitimate packets were added with.

    Raises:
        ConfigurationError: for an unknown ``snr_mode``, a replay against
            a scene with no packets, or a spoofed technology that is not
            registered.
    """
    ledger = AttackLedger()
    if plan is None or plan.is_empty():
        return ledger
    if snr_mode not in ("inband", "capture"):
        raise ConfigurationError(f"unknown snr_mode {snr_mode!r}")
    modem_map = _as_modem_map(modems)
    fs = builder.sample_rate_hz
    noise_power = builder.noise_power

    for i, spec in enumerate(plan.jammers):
        rng = np.random.default_rng((plan.seed, _JAM_SALT, i))
        lo = max(int(round(spec.start_s * fs)), 0)
        hi = min(int(round(spec.end_s * fs)), builder.n_samples)
        if hi <= lo:
            continue
        wave = _jam_waveform(spec, hi - lo, fs, rng)
        # Jam power is full-band relative to the noise floor; the
        # generators all emit unit in-burst power.
        wave = wave * np.sqrt(spec.power * max(noise_power, 1e-30))
        builder.add_interference(wave, lo)
        ledger.injected.append(
            AttackTruth(kind=f"jam-{spec.kind}", start=lo, length=hi - lo)
        )

    packets = list(builder.packets)
    for i, replay in enumerate(plan.replays):
        if not packets:
            raise ConfigurationError(
                "replay attack against a scene with no legitimate packets"
            )
        rng = np.random.default_rng((plan.seed, _REPLAY_SALT, i))
        target = packets[replay.victim % len(packets)]
        modem = modem_map[target.technology]
        wave = to_rate(modem.modulate(target.payload), modem.sample_rate, fs)
        wave = apply_phase(wave, float(rng.uniform(0, 2 * np.pi)))
        if noise_power > 0:
            ref_bw = modem.bandwidth if snr_mode == "inband" else fs
            wave = scale_to_snr(
                wave,
                target.snr_db + replay.gain_db,
                noise_power,
                min(ref_bw, fs),
                fs,
            )
        start = target.start + int(round(replay.delay_s * fs))
        builder.add_interference(wave, start)
        ledger.injected.append(
            AttackTruth(
                kind="replay",
                start=start,
                length=len(wave),
                technology=target.technology,
                payload=target.payload,
            )
        )

    for i, spoof in enumerate(plan.spoofs):
        if spoof.technology not in modem_map:
            raise ConfigurationError(
                f"spoofed technology {spoof.technology!r} is not registered"
            )
        rng = np.random.default_rng((plan.seed, _SPOOF_SALT, i))
        modem = modem_map[spoof.technology]
        payload = rng.integers(
            0, 256, size=spoof.payload_len, dtype=np.uint8
        ).tobytes()
        wave = np.array(modem.modulate(payload), dtype=complex)
        # Keep the genuine preamble + sync so every detector (and the
        # demodulator's sync search) fires; replace the body with noise
        # at the body's own RMS so the frame is energy-plausible but the
        # payload is unrecoverable garbage.
        keep = min(len(modem.sync_reference()), len(wave))
        body = len(wave) - keep
        if body > 0:
            rms = float(np.sqrt(np.mean(np.abs(wave[keep:]) ** 2)))
            garbage = (
                rng.normal(size=body) + 1j * rng.normal(size=body)
            ) / np.sqrt(2)
            wave[keep:] = garbage * rms
        wave = to_rate(wave, modem.sample_rate, fs)
        wave = apply_phase(wave, float(rng.uniform(0, 2 * np.pi)))
        if noise_power > 0:
            ref_bw = modem.bandwidth if snr_mode == "inband" else fs
            wave = scale_to_snr(
                wave, spoof.snr_db, noise_power, min(ref_bw, fs), fs
            )
        start = int(round(spoof.start_s * fs))
        builder.add_interference(wave, start)
        ledger.injected.append(
            AttackTruth(
                kind="spoof",
                start=start,
                length=len(wave),
                technology=spoof.technology,
            )
        )
    return ledger


ATTACK_SCENARIOS = (
    "none",
    "cw_jam",
    "sweep_jam",
    "pulse_jam",
    "replay",
    "spoof",
    "mixed",
)
"""Named attack scenarios understood by :func:`build_attack_scenario`
and ``galiot attack --scenario``."""


def build_attack_scenario(
    name: str,
    seed: int = 0,
    duration_s: float = 2.0,
    technologies: tuple[str, ...] = ("xbee", "zwave"),
    n_packets_hint: int = 48,
) -> AttackPlan:
    """Construct one of the canonical named attack scenarios.

    The scenario shapes are calibrated against the drill's default scene
    (compact-frame technologies at healthy SNR): jam bursts cover a
    minority of the capture at a power the hardened pipeline should ride
    through, replays copy a handful of frames, spoofs land between
    legitimate packets.

    Args:
        name: One of :data:`ATTACK_SCENARIOS`.
        seed: Root seed for the plan (attack placement derives from it).
        duration_s: Modelled capture length, for time-axis placement.
        technologies: Technologies available for spoofing.
        n_packets_hint: Expected legitimate-packet count; replay victims
            are spread across it.
    """
    if name not in ATTACK_SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {ATTACK_SCENARIOS}"
        )
    if name == "none":
        return AttackPlan(seed=seed)
    rng = np.random.default_rng((seed, ATTACK_SCENARIOS.index(name)))
    d = duration_s
    hint = max(n_packets_hint, 1)

    def jam(kind: str, lo: float, hi: float, power: float, **kw) -> JammerSpec:
        return JammerSpec(
            kind=kind, start_s=lo * d, end_s=hi * d, power=power, **kw
        )

    cw = (
        jam("cw", 0.10, 0.30, 4.0, center_hz=180e3),
        jam("cw", 0.55, 0.75, 4.0, center_hz=-220e3),
    )
    sweep = (
        jam(
            "sweep", 0.15, 0.40, 3.0,
            center_hz=0.0, span_hz=360e3, period_s=0.004,
        ),
        jam(
            "sweep", 0.60, 0.80, 3.0,
            center_hz=100e3, span_hz=240e3, period_s=0.006,
        ),
    )
    pulse = (
        jam("pulse", 0.10, 0.85, 2.5, period_s=0.020, duty=0.25),
    )
    n_replays = max(2, hint // 8)
    # Replays transmit hot (+3..6 dB): a real attacker is closer than
    # the victim, and the power separation is what lets the cloud's SIC
    # cancel a replay that lands on top of a live frame and still
    # recover the frame underneath.
    replays = tuple(
        ReplaySpec(
            victim=int(rng.integers(0, hint)),
            delay_s=float(rng.uniform(0.15, 0.35)) * d,
            gain_db=float(rng.uniform(3.0, 6.0)),
        )
        for _ in range(n_replays)
    )
    # Spoofs land mid-gap of the drill's packet grid (packets sit at
    # (i + 0.5) * d / hint): a same-technology, equal-power collision is
    # unrecoverable by construction, and the spoofer's goal is to fool
    # the acceptance path, not to body-block one frame.
    spoofs = tuple(
        SpoofSpec(
            technology=technologies[i % len(technologies)],
            start_s=((int(rng.integers(0, hint)) + 1.0) / hint) * d,
            snr_db=12.0,
            payload_len=10 + 2 * (i % 3),
        )
        for i in range(4)
    )
    if name == "cw_jam":
        return AttackPlan(seed=seed, jammers=cw)
    if name == "sweep_jam":
        return AttackPlan(seed=seed, jammers=sweep)
    if name == "pulse_jam":
        return AttackPlan(seed=seed, jammers=pulse)
    if name == "replay":
        return AttackPlan(seed=seed, replays=replays)
    if name == "spoof":
        return AttackPlan(seed=seed, spoofs=spoofs)
    # Mixed keeps the jam windows disjoint: each jammer alone is
    # calibrated to be survivable, but stacking both on the same packets
    # compounds the interference past what any receiver could ride out.
    return AttackPlan(
        seed=seed,
        jammers=(
            jam("cw", 0.55, 0.75, 4.0, center_hz=180e3),
            jam("pulse", 0.10, 0.45, 2.5, period_s=0.020, duty=0.25),
        ),
        replays=replays[: max(2, n_replays // 2)],
        spoofs=spoofs[:2],
    )
