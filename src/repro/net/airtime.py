"""Airtime accounting helpers.

Thin wrappers that convert between payload sizes, native-rate sample
counts and capture-rate sample counts. Centralized here because the
scene composer, the MAC model and the throughput experiments must all
agree on how long a frame occupies the channel.
"""

from __future__ import annotations

import math

from ..phy.base import Modem

__all__ = ["frame_airtime", "frame_samples_at", "goodput_bits"]


def frame_airtime(modem: Modem, payload_len: int) -> float:
    """Frame duration in seconds (delegates to the modem)."""
    return modem.frame_airtime(payload_len)


def frame_samples_at(modem: Modem, payload_len: int, sample_rate_hz: float) -> int:
    """Samples a frame occupies in a capture at rate ``sample_rate_hz``."""
    return math.ceil(frame_airtime(modem, payload_len) * sample_rate_hz)


def goodput_bits(payload_len: int) -> int:
    """Useful (MAC payload) bits delivered by one successful frame."""
    return 8 * payload_len
