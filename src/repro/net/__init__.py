"""IoT network substrate: devices, traffic, scenes, MAC, energy, sim."""

from .adversary import (
    ATTACK_SCENARIOS,
    AttackLedger,
    AttackPlan,
    AttackTruth,
    JammerSpec,
    ReplaySpec,
    SpoofSpec,
    build_attack_scenario,
    render_attack_plan,
)
from .airtime import frame_airtime, frame_samples_at, goodput_bits
from .attackdrill import AttackDrillReport, run_attack_drill
from .device import Device, EnergyProfile
from .energy import EnergyLedger
from .mac import MacState, PendingFrame
from .multigateway import (
    GatewayCopy,
    combine_segments,
    receive_at_gateways,
    selection_diversity,
)
from .propagation import LinkBudget, PathLossModel, Position, deployment_snrs
from .scene import NOISE_POWER, SceneBuilder
from .simulator import NetworkSimulator, SimulationResult, match_decodes
from .traffic import (
    DutyCycleProfile,
    collision_scene,
    fleet_arrival_times,
    poisson_scene,
)

__all__ = [
    "ATTACK_SCENARIOS",
    "AttackLedger",
    "AttackPlan",
    "AttackTruth",
    "JammerSpec",
    "ReplaySpec",
    "SpoofSpec",
    "build_attack_scenario",
    "render_attack_plan",
    "AttackDrillReport",
    "run_attack_drill",
    "frame_airtime",
    "frame_samples_at",
    "goodput_bits",
    "Device",
    "EnergyProfile",
    "EnergyLedger",
    "MacState",
    "PendingFrame",
    "GatewayCopy",
    "combine_segments",
    "receive_at_gateways",
    "selection_diversity",
    "PathLossModel",
    "LinkBudget",
    "Position",
    "deployment_snrs",
    "NOISE_POWER",
    "SceneBuilder",
    "NetworkSimulator",
    "SimulationResult",
    "match_decodes",
    "collision_scene",
    "poisson_scene",
    "DutyCycleProfile",
    "fleet_arrival_times",
]
