"""IoT end-device model.

The paper's core observation about IoT traffic: devices are low-power,
duty-cycled, and simply "wake up and transmit" — no carrier sensing, no
coordination. A :class:`Device` bundles the technology (a modem), a
payload generator, a mean transmit interval and the energy bookkeeping
used by the battery-drain results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..phy.base import Modem

__all__ = ["EnergyProfile", "Device"]


@dataclass(frozen=True)
class EnergyProfile:
    """Per-device energy parameters (coin-cell class defaults).

    Attributes:
        tx_power_w: Power drawn while transmitting (radio + MCU).
        sleep_power_w: Power drawn while sleeping.
        battery_j: Usable battery energy (a CR2032 is ~2.4 kJ).
    """

    tx_power_w: float = 0.12
    sleep_power_w: float = 10e-6
    battery_j: float = 2400.0

    def tx_energy(self, airtime_s: float) -> float:
        """Energy consumed by one transmission."""
        return self.tx_power_w * airtime_s


@dataclass
class Device:
    """One duty-cycled IoT transmitter.

    Attributes:
        device_id: Unique identifier.
        technology: Registry name of its radio technology.
        modem: The PHY modem used to modulate frames.
        mean_interval_s: Mean time between wake-ups (Poisson process).
        payload_range: Inclusive (min, max) payload size in bytes.
        snr_db: In-band SNR at which the gateway receives this device.
        energy: Energy profile for battery accounting.
    """

    device_id: int
    technology: str
    modem: Modem
    mean_interval_s: float = 1.0
    payload_range: tuple[int, int] = (8, 24)
    snr_db: float = 10.0
    energy: EnergyProfile = field(default_factory=EnergyProfile)

    def __post_init__(self) -> None:
        lo, hi = self.payload_range
        if not 0 <= lo <= hi:
            raise ConfigurationError("payload_range must satisfy 0 <= lo <= hi")
        if hi > self.modem.max_payload:
            raise ConfigurationError(
                f"payload_range upper bound {hi} exceeds the modem limit "
                f"{self.modem.max_payload}"
            )
        if self.mean_interval_s <= 0:
            raise ConfigurationError("mean_interval_s must be positive")

    def draw_payload(self, rng: np.random.Generator) -> bytes:
        """Random payload of a size drawn from ``payload_range``."""
        lo, hi = self.payload_range
        size = int(rng.integers(lo, hi + 1))
        return rng.integers(0, 256, size, dtype=np.uint8).tobytes()

    def draw_arrivals(
        self, duration_s: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Poisson wake-up times in [0, duration) — no carrier sensing."""
        times = []
        t = float(rng.exponential(self.mean_interval_s))
        while t < duration_s:
            times.append(t)
            t += float(rng.exponential(self.mean_interval_s))
        return np.array(times)
