"""Lightweight end-to-end telemetry for the gateway/cloud pipeline.

The paper's gateway is meant to run continuously on a Raspberry-Pi-class
device, so knowing *where time and bits go* is as important as the DSP
itself. This module is the observability substrate threaded through
every pipeline stage (detection, extraction, edge decode, compression,
backhaul, cloud decode): a process-local registry of

* **counters** — monotonically increasing totals (samples in, events,
  segments, bits shipped, drops, kill/SIC invocations);
* **gauges** — last-written values (queue depth, chunk size);
* **timers** — aggregate histograms of wall-clock spans, one per stage.

Design constraints, in order:

1. **Zero overhead when disabled.** Every stage takes a telemetry object
   defaulting to the shared :data:`NULL` singleton, whose operations are
   no-ops and whose :meth:`~NullTelemetry.span` returns one reusable
   no-op context manager — no clock reads, no allocation on the hot
   path.
2. **No dependencies, no threads.** Plain dicts and
   ``time.perf_counter``; a snapshot is an ordinary nested dict that
   prints, asserts and serializes trivially.
3. **Names are flat dotted strings** (``"detect.events"``,
   ``"compress.shipped_bits"``) so downstream aggregation (Prometheus,
   a CSV, a test assertion) needs no schema.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "TimerStats",
    "Span",
    "Telemetry",
    "ScopedTelemetry",
    "NullTelemetry",
    "NULL",
    "format_snapshot",
]


@dataclass
class TimerStats:
    """Aggregate statistics of one named timer (a histogram of spans)."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def observe(self, seconds: float) -> None:
        """Fold one measured duration into the aggregate."""
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        """Mean span duration (0.0 before any observation)."""
        return self.total_s / self.count if self.count else 0.0

    def merge(self, other: TimerStats) -> None:
        """Fold another timer's aggregate into this one (worker rollup)."""
        if other.count == 0:
            return
        self.count += other.count
        self.total_s += other.total_s
        if other.min_s < self.min_s:
            self.min_s = other.min_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view used by :meth:`Telemetry.snapshot`."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class Span:
    """Context manager timing one stage invocation.

    Created by :meth:`Telemetry.span`; on exit it folds the elapsed
    wall-clock into the owning timer. Re-entrant use creates separate
    observations.
    """

    __slots__ = ("_stats", "_started")

    def __init__(self, stats: TimerStats) -> None:
        self._stats = stats
        self._started = 0.0

    def __enter__(self) -> Span:
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stats.observe(time.perf_counter() - self._started)


class _NullSpan:
    """Reusable no-op span handed out by :class:`NullTelemetry`."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


@dataclass(eq=False)
class Telemetry:
    """Process-local metrics registry shared across pipeline stages.

    One instance is typically created per gateway (or per experiment)
    and handed to every stage; stages record under their own dotted
    prefix, so a single :meth:`snapshot` shows the whole pipeline.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    timers: dict[str, TimerStats] = field(default_factory=dict)

    @property
    def enabled(self) -> bool:
        """False only for the :class:`NullTelemetry` no-op."""
        return True

    def count(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration into timer ``name`` without a span."""
        self._timer(name).observe(seconds)

    def span(self, stage: str) -> Span | _NullSpan:
        """Context manager timing one invocation of ``stage``.

        The timer is registered as ``"<stage>.seconds"``.
        """
        return Span(self._timer(f"{stage}.seconds"))

    def _timer(self, name: str) -> TimerStats:
        stats = self.timers.get(name)
        if stats is None:
            stats = self.timers[name] = TimerStats()
        return stats

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Point-in-time plain-dict view of every metric."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {name: t.as_dict() for name, t in self.timers.items()},
        }

    def absorb_snapshot(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The rollup half of the parallel decode farm: workers record into
        their own sinks and the parent merges the snapshots — counters
        and timer histograms add, gauges take the incoming value (last
        write wins, in merge order). Merging every worker's snapshot
        yields the same counters (and timer counts) as running the whole
        workload against one sink.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, float(value))
        for name, stats in snapshot.get("timers", {}).items():
            count = int(stats["count"])
            incoming = TimerStats(
                count=count,
                total_s=float(stats["total_s"]),
                min_s=float(stats["min_s"]) if count else float("inf"),
                max_s=float(stats["max_s"]),
            )
            self._timer(name).merge(incoming)

    def reset(self) -> None:
        """Drop every metric (tests, between experiment repeats)."""
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()

    def scoped(self, prefix: str) -> Telemetry:
        """A prefixing view over this registry.

        Everything recorded through the view lands in *this* registry
        under ``"<prefix>.<name>"`` — the multi-tenant rollup idiom: the
        ingestion service hands each tenant
        ``telemetry.scoped(f"service.tenant.{tenant}")`` and one
        :meth:`snapshot` of the parent shows every tenant side by side.
        """
        return ScopedTelemetry(self, prefix)


class ScopedTelemetry(Telemetry):
    """Prefixing façade created by :meth:`Telemetry.scoped`.

    Holds no metrics of its own: every mutator delegates to the parent
    registry with the prefix applied, so scoped and unscoped writes
    aggregate in one place. :meth:`snapshot` filters the parent's view
    down to this scope (names returned *without* the prefix).
    """

    def __init__(self, parent: Telemetry, prefix: str) -> None:
        super().__init__()
        self._parent = parent
        self._prefix = prefix if prefix.endswith(".") else prefix + "."

    @property
    def enabled(self) -> bool:
        return self._parent.enabled

    def count(self, name: str, value: float = 1) -> None:
        self._parent.count(self._prefix + name, value)

    def gauge(self, name: str, value: float) -> None:
        self._parent.gauge(self._prefix + name, value)

    def observe(self, name: str, seconds: float) -> None:
        self._parent.observe(self._prefix + name, seconds)

    def span(self, stage: str) -> Span | _NullSpan:
        return self._parent.span(self._prefix + stage)

    def scoped(self, prefix: str) -> Telemetry:
        return ScopedTelemetry(self._parent, self._prefix + prefix)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        parent = self._parent.snapshot()
        n = len(self._prefix)
        return {
            "counters": {
                k[n:]: v
                for k, v in parent["counters"].items()
                if k.startswith(self._prefix)
            },
            "gauges": {
                k[n:]: v
                for k, v in parent["gauges"].items()
                if k.startswith(self._prefix)
            },
            "timers": {
                k[n:]: v
                for k, v in parent["timers"].items()
                if k.startswith(self._prefix)
            },
        }

    def absorb_snapshot(self, snapshot: dict[str, dict[str, Any]]) -> None:
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, float(value))
        for name, stats in snapshot.get("timers", {}).items():
            count = int(stats["count"])
            incoming = TimerStats(
                count=count,
                total_s=float(stats["total_s"]),
                min_s=float(stats["min_s"]) if count else float("inf"),
                max_s=float(stats["max_s"]),
            )
            self._parent._timer(self._prefix + name).merge(incoming)

    def reset(self) -> None:
        """Drop only this scope's metrics from the parent registry."""
        for registry in (
            self._parent.counters,
            self._parent.gauges,
            self._parent.timers,
        ):
            for key in [k for k in registry if k.startswith(self._prefix)]:
                del registry[key]


class NullTelemetry(Telemetry):
    """No-op telemetry: the default everywhere instrumentation exists.

    Every mutator returns immediately and :meth:`span` hands back one
    shared object whose enter/exit never read the clock, so the
    instrumented hot paths cost one attribute lookup and a call.
    """

    @property
    def enabled(self) -> bool:
        return False

    def count(self, name: str, value: float = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, seconds: float) -> None:
        return None

    def span(self, stage: str) -> Span | _NullSpan:
        return _NULL_SPAN

    def snapshot(self) -> dict[str, dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "timers": {}}

    def absorb_snapshot(self, snapshot: dict[str, dict[str, Any]]) -> None:
        return None

    def scoped(self, prefix: str) -> Telemetry:
        """Scoping a no-op registry is still a no-op."""
        return self


NULL = NullTelemetry()
"""Shared no-op instance used as the default by every stage."""


def format_snapshot(snapshot: dict[str, dict[str, Any]]) -> str:
    """Human-readable multi-line rendering of a :meth:`Telemetry.snapshot`.

    Timers are sorted by total time (the stage breakdown), counters and
    gauges alphabetically.
    """
    lines: list[str] = []
    timers = snapshot.get("timers", {})
    if timers:
        lines.append("stage timings (by total wall-clock):")
        width = max(len(n) for n in timers)
        ordered = sorted(
            timers.items(), key=lambda kv: kv[1]["total_s"], reverse=True
        )
        for name, t in ordered:
            lines.append(
                f"  {name:<{width}}  n={t['count']:<6d} "
                f"total={1e3 * t['total_s']:9.3f} ms  "
                f"mean={1e3 * t['mean_s']:8.3f} ms"
            )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            value = counters[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:<{width}}  {shown}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]}")
    return "\n".join(lines) if lines else "(no telemetry recorded)"
