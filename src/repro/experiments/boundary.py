"""Shannon-boundary ablation (paper Sec. 5, final paragraph).

The paper promises to "study the limits of our approach in decoding
collisions at a range of SNRs, particularly at certain SNR regimes
(e.g. extremely low values) where the Shannon limit may not permit
decoupling collisions". This experiment does exactly that: it sweeps a
LoRa+XBee full-overlap collision across in-band SNR, asks the
multiple-access capacity model of :mod:`repro.analysis` whether joint
decoding is information-theoretically feasible, and compares the
prediction against the GalioT decoder's measured success.

Expected shape: the decoder tracks the feasibility boundary with an
implementation gap — it fails somewhat above the Shannon wall (real
receivers are not capacity-achieving) and never succeeds below it.
"""

from __future__ import annotations

import numpy as np

from ..analysis import collision_feasible
from ..cloud.decoder import CloudDecoder
from ..net.traffic import collision_scene
from ..phy.registry import create_modem
from .common import DEFAULT_SEED, ExperimentTable

__all__ = ["run_boundary"]


def run_boundary(
    snrs_db: tuple[float, ...] = (-30.0, -20.0, -10.0, -4.0, 0.0, 6.0, 12.0),
    trials: int = 3,
    seed: int = DEFAULT_SEED,
) -> ExperimentTable:
    """Sweep collision SNR against the Shannon feasibility verdict.

    Args:
        snrs_db: In-band SNR points (both colliders at the same SNR).
        trials: Collisions decoded per SNR point.
        seed: RNG seed.
    """
    fs = 1e6
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    lora = modems[0]
    xbee = modems[1]
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        title="Ablation: Shannon feasibility vs measured joint decoding",
        columns=[
            "in-band SNR dB",
            "MAC feasible",
            "capacity margin dB",
            "frames decoded",
            "of",
        ],
    )
    for snr in snrs_db:
        verdict = collision_feasible([lora, xbee], [snr, snr])
        decoded = 0
        total = 0
        for _ in range(trials):
            capture, truth = collision_scene(
                [lora, xbee], [snr, snr], fs, rng, payload_len=10
            )
            want = {(p.technology, p.payload) for p in truth.packets}
            report = CloudDecoder.galiot(modems, fs).decode(capture)
            got = {(r.technology, r.payload) for r in report.results}
            decoded += len(got & want)
            total += len(want)
        table.rows.append(
            [
                snr,
                "yes" if verdict.feasible else "no",
                verdict.worst_margin_db,
                decoded,
                total,
            ]
        )
    table.notes.append(
        "the decoder must never beat the Shannon verdict; the gap above "
        "the boundary is the implementation loss of practical modems"
    )
    return table
