"""Ablation experiments for the design choices DESIGN.md calls out.

* :func:`run_scaling` — Sec. 4 motivation: universal-preamble detection
  cost is one correlation regardless of the number of registered
  technologies, while the optimal bank grows linearly.
* :func:`run_compression` — Sec. 6 "compute, compress or ship": backhaul
  bits for raw streaming vs detect-and-ship vs detect+requantize+zlib.
* :func:`run_kill_filters` — Sec. 5 filter design: per-filter
  suppression of the target technology and collateral damage to a
  co-channel bystander.
* :func:`run_edge_cloud` — Sec. 4 "Edge vs. the Cloud": fraction of
  segments the edge resolves locally vs ships.
* :func:`run_sic_depth` — cancellation depth vs crystal offset, the
  mechanism that separates SIC from the estimation-free kill filters.
"""

from __future__ import annotations

import time

import numpy as np

from ..cloud.kill_filters import kill_filter_for
from ..cloud.classify import SegmentClassifier
from ..cloud.sic import reconstruct_and_subtract, try_decode
from ..dsp.channel import signal_power
from ..gateway.compression import SegmentCodec
from ..gateway.detection import PreambleBankDetector
from ..gateway.extractor import SegmentExtractor
from ..gateway.gateway import GalioTGateway
from ..gateway.universal import UniversalPreamble, UniversalPreambleDetector
from ..net.scene import SceneBuilder
from ..phy.registry import create_modem
from .common import DEFAULT_SEED, ExperimentTable

__all__ = [
    "run_scaling",
    "run_compression",
    "run_kill_filters",
    "run_edge_cloud",
    "run_sic_depth",
]

_EXTENSION_ORDER = ["lora", "xbee", "zwave", "ble", "sigfox", "oqpsk154"]


def _scene(fs, modems, rng, snr=15.0, scene_s=0.25):
    builder = SceneBuilder(fs, scene_s)
    spacing = scene_s / (len(modems) + 1)
    for i, modem in enumerate(modems):
        builder.add_packet(
            modem,
            bytes(rng.integers(0, 256, 10, dtype=np.uint8)),
            start=int((i + 0.5) * spacing * fs),
            snr_db=snr,
            rng=rng,
            snr_mode="capture",
        )
    return builder.render(rng)


def run_scaling(seed: int = DEFAULT_SEED, repeats: int = 2) -> ExperimentTable:
    """Detection cost vs number of registered technologies."""
    fs = 1e6
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        title="Ablation: detector scaling with technology count",
        columns=[
            "#techs",
            "universal correlations",
            "bank correlations",
            "universal ms",
            "bank ms",
        ],
    )
    trio = [create_modem(n) for n in _EXTENSION_ORDER[:3]]
    capture, _ = _scene(fs, trio, rng)
    for n in range(2, len(_EXTENSION_ORDER) + 1):
        modems = [create_modem(name) for name in _EXTENSION_ORDER[:n]]
        universal = UniversalPreamble.build(modems, fs)
        uni = UniversalPreambleDetector(universal)
        bank = PreambleBankDetector(modems, fs)
        t0 = time.perf_counter()
        for _ in range(repeats):
            uni.detect(capture)
        t1 = time.perf_counter()
        for _ in range(repeats):
            bank.detect(capture)
        t2 = time.perf_counter()
        table.rows.append(
            [
                n,
                uni.n_correlations,
                bank.n_correlations,
                1e3 * (t1 - t0) / repeats,
                1e3 * (t2 - t1) / repeats,
            ]
        )
    table.notes.append(
        "universal stays at one correlation per capture; the optimal bank "
        "grows linearly (the paper's scalability argument)"
    )
    return table


def run_compression(seed: int = DEFAULT_SEED) -> ExperimentTable:
    """Backhaul bits: ship-everything vs detect-and-ship vs +zlib."""
    fs = 1e6
    rng = np.random.default_rng(seed)
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    capture, truth = _scene(fs, modems, rng, scene_s=0.6)
    raw_bits = len(capture) * 2 * 8
    universal = UniversalPreamble.build(modems, fs)
    detector = UniversalPreambleDetector(universal)
    extractor = SegmentExtractor(modems, fs)
    segments = extractor.extract(capture, detector.detect(capture))
    ship_bits = sum(s.length * 2 * 8 for s in segments)
    codec = SegmentCodec(bits=8)
    compressed_bits = 0
    for segment in segments:
        blob, _stats = codec.compress(segment)
        compressed_bits += blob.n_bits
    table = ExperimentTable(
        title="Ablation: backhaul bits per 0.6 s capture",
        columns=["strategy", "bits", "vs raw"],
    )
    table.rows.append(["ship raw stream", raw_bits, 1.0])
    table.rows.append(
        ["detect-and-ship (2x max frame)", ship_bits, ship_bits / raw_bits]
    )
    table.rows.append(
        [
            "detect + requantize + zlib",
            compressed_bits,
            compressed_bits / raw_bits,
        ]
    )
    table.notes.append(
        f"{len(truth.packets)} packets in the capture; raw streaming at "
        "1 MHz costs 16 Mbit/s forever regardless of occupancy"
    )
    return table


def run_kill_filters(seed: int = DEFAULT_SEED) -> ExperimentTable:
    """Per-filter suppression of the target and bystander collateral."""
    fs = 1e6
    rng = np.random.default_rng(seed)
    lora = create_modem("lora")
    xbee = create_modem("xbee")
    zwave = create_modem("zwave")
    classifier_modems = [lora, xbee, zwave]
    table = ExperimentTable(
        title="Ablation: kill-filter suppression",
        columns=[
            "filter",
            "target",
            "bystander",
            "target suppressed dB",
            "bystander lost dB",
            "bystander decodes",
        ],
    )
    cases = [
        (xbee, lora),   # KILL-FREQUENCY removes XBee, LoRa survives
        (zwave, lora),  # KILL-FREQUENCY removes Z-Wave, LoRa survives
        (lora, xbee),   # KILL-CSS removes LoRa, XBee survives
        (lora, zwave),  # KILL-CSS removes LoRa, Z-Wave survives
    ]
    classifier = SegmentClassifier(classifier_modems, fs)
    for target, bystander in cases:
        payload_t = bytes(rng.integers(0, 256, 12, dtype=np.uint8))
        payload_b = bytes(rng.integers(0, 256, 12, dtype=np.uint8))
        builder = SceneBuilder(fs, 0.12, noise_power=1e-6)
        builder.add_packet(target, payload_t, 2000, 60, rng, snr_mode="capture")
        target_only, _ = builder.render(rng)
        builder2 = SceneBuilder(fs, 0.12, noise_power=1e-6)
        builder2.add_packet(bystander, payload_b, 2000, 60, rng, snr_mode="capture")
        bystander_only, _ = builder2.render(rng)
        both = target_only + bystander_only
        kill = kill_filter_for(target)
        victims = [
            c for c in classifier.classify(both) if c.technology == target.name
        ]
        victim = victims[0] if victims else None
        filtered_t = kill.apply(target_only, fs, victim)
        filtered_b = kill.apply(bystander_only, fs, victim)
        sup = 10 * np.log10(
            signal_power(target_only) / max(signal_power(filtered_t), 1e-30)
        )
        lost = 10 * np.log10(
            signal_power(bystander_only) / max(signal_power(filtered_b), 1e-30)
        )
        survivor = try_decode(bystander, kill.apply(both, fs, victim), fs)
        table.rows.append(
            [
                kill.name,
                target.name,
                bystander.name,
                float(sup),
                float(lost),
                survivor is not None and survivor.payload == payload_b,
            ]
        )
    return table


def run_edge_cloud(seed: int = DEFAULT_SEED, rounds: int = 2) -> ExperimentTable:
    """Edge-vs-cloud split of detected segments."""
    fs = 1e6
    rng = np.random.default_rng(seed)
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    gateway = GalioTGateway(modems, fs, detector="universal", use_edge=True)
    total_segments = 0
    shipped = 0
    edge_frames = 0
    for _ in range(rounds):
        builder = SceneBuilder(fs, 0.4)
        # Two isolated packets plus one collision pair.
        layout = [("xbee", 0.1, 0), ("zwave", 0.4, 0), ("lora", 0.7, 0), ("xbee", 0.72, 0)]
        for tech, frac, _ in layout:
            modem = next(m for m in modems if m.name == tech)
            builder.add_packet(
                modem,
                bytes(rng.integers(0, 256, 10, dtype=np.uint8)),
                start=int(frac * 0.4 * fs),
                snr_db=15,
                rng=rng,
                snr_mode="capture",
            )
        capture, _truth = builder.render(rng)
        report = gateway.process(capture, rng)
        total_segments += len(report.segments)
        shipped += len(report.shipped)
        edge_frames += len(report.edge_results)
    table = ExperimentTable(
        title="Ablation: edge vs cloud segment split",
        columns=["segments", "resolved at edge only", "shipped to cloud", "edge frames"],
    )
    table.rows.append(
        [total_segments, total_segments - shipped, shipped, edge_frames]
    )
    table.notes.append(
        "segments with one clean frame stay at the edge; suspected "
        "collisions are shipped (paper Sec. 4, Edge vs. the Cloud)"
    )
    return table


def run_sic_depth(seed: int = DEFAULT_SEED) -> ExperimentTable:
    """Cancellation depth vs transmitter crystal offset."""
    fs = 1e6
    rng = np.random.default_rng(seed)
    lora = create_modem("lora")
    table = ExperimentTable(
        title="Ablation: SIC cancellation depth vs CFO",
        columns=["cfo ppm", "cfo Hz", "cancelled dB"],
    )
    for ppm in (0.0, 0.5, 1.0, 2.0, 5.0):
        cfo = ppm * 1e-6 * 868e6
        builder = SceneBuilder(fs, 0.1, noise_power=1e-9)
        payload = bytes(rng.integers(0, 256, 12, dtype=np.uint8))
        builder.add_packet(
            lora, payload, 2000, 40, rng, cfo_hz=cfo, snr_mode="capture"
        )
        capture, _ = builder.render(rng)
        frame = try_decode(lora, capture, fs)
        if frame is None:
            table.rows.append([ppm, cfo, float("nan")])
            continue
        _residual, recon = reconstruct_and_subtract(capture, fs, lora, frame)
        table.rows.append([ppm, cfo, recon.cancelled_db])
    table.notes.append(
        "reconstruction-based cancellation degrades with CFO; the kill "
        "filters are estimation-free and keep working (the Fig. 3(c) gap)"
    )
    return table
