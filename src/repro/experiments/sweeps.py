"""Parameter-sweep ablations: detector ROC, codec depth, overlap.

Three sweeps that probe the knobs the headline experiments hold fixed:

* :func:`run_roc` — detection probability vs false alarms as the CFAR
  factor sweeps (the operating point behind Figure 3(b));
* :func:`run_compression_depth` — backhaul bits vs decode success as the
  requantization depth drops (the Sec. 6 compression knob);
* :func:`run_overlap` — joint-decoding success vs collision overlap
  fraction (the paper's "complete overlaps in both time and frequency"
  is the hardest point of this curve).
"""

from __future__ import annotations

import numpy as np

from ..cloud.decoder import CloudDecoder
from ..cloud.pipeline import CloudService
from ..gateway.compression import SegmentCodec
from ..gateway.detection import match_events
from ..gateway.universal import UniversalPreamble, UniversalPreambleDetector
from ..net.scene import SceneBuilder
from ..net.traffic import collision_scene
from ..phy.registry import create_modem
from ..types import Segment
from .common import DEFAULT_SEED, ExperimentTable

__all__ = ["run_roc", "run_compression_depth", "run_overlap"]


def run_roc(
    k_values: tuple[float, ...] = (3.0, 5.0, 7.0, 9.0, 12.0),
    trials: int = 2,
    snr_db: float = -12.0,
    seed: int = DEFAULT_SEED,
) -> ExperimentTable:
    """Universal-preamble ROC: detections and false alarms vs CFAR k.

    Run at a sub-noise SNR where the threshold choice actually matters.
    """
    fs = 1e6
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    universal = UniversalPreamble.build(modems, fs)
    rng = np.random.default_rng(seed)
    scenes = []
    for _ in range(trials):
        builder = SceneBuilder(fs, 0.4)
        for i, modem in enumerate(modems):
            builder.add_packet(
                modem,
                bytes(rng.integers(0, 256, 10, dtype=np.uint8)),
                start=int((0.08 + 0.28 * i / len(modems)) * fs),
                snr_db=snr_db,
                rng=rng,
                snr_mode="capture",
            )
        scenes.append(builder.render(rng))
    table = ExperimentTable(
        title=f"Ablation: universal-preamble ROC at {snr_db:.0f} dB",
        columns=["CFAR k", "detected", "of", "false alarms"],
    )
    for k in k_values:
        detector = UniversalPreambleDetector(universal, k=k)
        hit = 0
        total = 0
        fas = 0
        for capture, truth in scenes:
            events = detector.detect(capture)
            detected, false_alarms = match_events(
                events, truth.packets, gate=universal.length
            )
            hit += len(detected)
            total += len(truth.packets)
            fas += len(false_alarms)
        table.rows.append([k, hit, total, fas])
    table.notes.append(
        "lowering k buys detections at the price of false alarms; the "
        "default k trades ~zero false alarms for the last few percent"
    )
    return table


def run_compression_depth(
    bit_depths: tuple[int, ...] = (8, 6, 5, 4, 3, 2),
    trials: int = 3,
    seed: int = DEFAULT_SEED,
) -> ExperimentTable:
    """Requantization depth vs backhaul bits vs decode success."""
    fs = 1e6
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    rng = np.random.default_rng(seed)
    # One captured segment per technology, at a workable SNR.
    segments = []
    for modem in modems:
        for _ in range(trials):
            payload = bytes(rng.integers(0, 256, 10, dtype=np.uint8))
            builder = SceneBuilder(fs, modem.frame_airtime(10) + 0.01)
            builder.add_packet(modem, payload, 3000, 14, rng)
            capture, _ = builder.render(rng)
            segments.append(
                (modem, payload, Segment(start=0, samples=capture, sample_rate=fs))
            )
    table = ExperimentTable(
        title="Ablation: requantization depth vs decode success",
        columns=["bits/rail", "shipped bits", "vs 8-bit", "decoded", "of"],
    )
    baseline_bits = None
    for bits in bit_depths:
        codec = SegmentCodec(bits=bits)
        shipped = 0
        ok = 0
        service = CloudService(modems, fs, codec=codec)
        for modem, payload, segment in segments:
            blob, _ = codec.compress(segment)
            shipped += blob.n_bits
            results = service.process_compressed(blob)
            ok += any(
                r.technology == modem.name and r.payload == payload
                for r in results
            )
        if baseline_bits is None:
            baseline_bits = shipped
        table.rows.append(
            [bits, shipped, shipped / baseline_bits, ok, len(segments)]
        )
    table.notes.append(
        "the backhaul knob of Sec. 6: depth can drop well below the "
        "RTL-SDR's 8 bits before decode success goes with it"
    )
    return table


def run_overlap(
    overlaps: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    trials: int = 3,
    snr_db: float = 12.0,
    seed: int = DEFAULT_SEED,
) -> ExperimentTable:
    """Joint decoding vs collision overlap fraction (LoRa + XBee)."""
    fs = 1e6
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    lora, xbee = modems[0], modems[1]
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        title="Ablation: decoding vs collision overlap (LoRa + XBee)",
        columns=["overlap", "SIC frames", "GalioT frames", "of"],
    )
    for overlap in overlaps:
        counts = {"sic": 0, "galiot": 0}
        total = 0
        for _ in range(trials):
            capture, truth = collision_scene(
                [lora, xbee],
                [snr_db, snr_db],
                fs,
                rng,
                payload_len=10,
                overlap=overlap,
                cfo_ppm_range=2.0,
                snr_mode="capture",
            )
            want = {(p.technology, p.payload) for p in truth.packets}
            total += len(want)
            for mode, decoder in (
                ("sic", CloudDecoder.sic_baseline(modems, fs)),
                ("galiot", CloudDecoder.galiot(modems, fs)),
            ):
                report = decoder.decode(capture)
                got = {(r.technology, r.payload) for r in report.results}
                counts[mode] += len(got & want)
        table.rows.append([overlap, counts["sic"], counts["galiot"], total])
    table.notes.append(
        "overlap 1.0 is the paper's hard case (complete time-frequency "
        "overlap); SIC degrades with overlap, GalioT stays near-flat"
    )
    return table
