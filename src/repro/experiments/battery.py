"""Battery-drain experiment (the paper's Sec. 1 motivation).

"These collisions are handled using retransmissions, resulting in
extensive battery drain." — the closed-loop simulator makes that
quantitative: identical collision-heavy traffic is run once with the
SIC-only cloud and once with GalioT, and the MAC's retransmission
counts are converted into projected battery life per device class.
"""

from __future__ import annotations

import numpy as np

from ..cloud.pipeline import CloudService
from ..gateway.gateway import GalioTGateway
from ..net.device import Device
from ..net.simulator import NetworkSimulator
from ..phy.registry import create_modem
from .common import DEFAULT_SEED, ExperimentTable

__all__ = ["run_battery"]


def _devices(modems, rng) -> list[Device]:
    devices = []
    device_id = 0
    for modem in modems:
        for _ in range(2):
            devices.append(
                Device(
                    device_id=device_id,
                    technology=modem.name,
                    modem=modem,
                    mean_interval_s=0.45,
                    payload_range=(8, 12),
                    snr_db=float(rng.uniform(11, 16)),
                )
            )
            device_id += 1
    return devices


def run_battery(
    rounds: int = 2, seed: int = DEFAULT_SEED
) -> ExperimentTable:
    """Closed-loop battery comparison, SIC vs GalioT.

    Args:
        rounds: Simulation rounds per decoder (0.5 s of air each).
        seed: RNG seed (identical traffic for both decoders).
    """
    fs = 1e6
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    rng = np.random.default_rng(seed)
    devices = _devices(modems, rng)
    table = ExperimentTable(
        title="Battery drain: retransmissions under SIC vs GalioT",
        columns=[
            "decoder",
            "delivered",
            "offered",
            "tx/delivery",
            "mJ per delivered kbit",
        ],
    )
    for label, kill, strict in (("sic", False, True), ("galiot", True, False)):
        gateway = GalioTGateway(modems, fs, detector="universal", use_edge=True)
        cloud = CloudService(
            modems, fs, use_kill_filters=kill, strict_order=strict
        )
        sim = NetworkSimulator(
            devices, gateway, cloud, fs, round_s=0.5, max_attempts=3
        )
        result = sim.run(rounds=rounds, rng=np.random.default_rng(seed + 1))
        total_energy_j = sum(result.energy.tx_energy_j.values())
        if result.delivered_bits > 0:
            mj_per_kbit = 1e3 * total_energy_j / (result.delivered_bits / 1e3)
        else:
            mj_per_kbit = float("inf")
        table.rows.append(
            [
                label,
                result.delivered_frames,
                result.offered_frames,
                result.mac.attempts_per_delivery,
                mj_per_kbit,
            ]
        )
    table.notes.append(
        "identical traffic both runs; the energy-per-delivered-bit delta "
        "is purely the retransmissions that collision decoding avoids"
    )
    return table
