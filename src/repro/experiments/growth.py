"""Universal-preamble growth study (paper Sec. 7, last paragraph).

"It is also seen that the universal preamble has higher susceptibility
to the white noise in comparison with the individual preamble. Hence it
will be interesting to refine the technique ... especially when more
technologies are added into the system - a task for future work."

This experiment does the future work: at a fixed low SNR, the registry
grows from one technology to six while the *traffic* stays fixed (the
prototype trio), and the universal detector's hit rate is recorded. The
matched-filter deflection loss is 10·log10(#groups)/2 dB, so detection
of the weakest preambles decays as unrelated technologies join the sum.
"""

from __future__ import annotations

import numpy as np

from ..gateway.detection import match_events
from ..gateway.universal import UniversalPreamble, UniversalPreambleDetector
from ..net.scene import SceneBuilder
from ..phy.registry import create_modem
from .common import DEFAULT_SEED, ExperimentTable

__all__ = ["run_universal_growth"]

_GROWTH_ORDER = ["lora", "xbee", "zwave", "ble", "sigfox", "oqpsk154"]


def run_universal_growth(
    snr_db: float = -14.0,
    trials: int = 2,
    seed: int = DEFAULT_SEED,
) -> ExperimentTable:
    """Detection ratio vs registry size at a fixed sub-noise SNR.

    Args:
        snr_db: Capture-band SNR of every injected packet — low enough
            that the deflection loss from a growing template matters.
        trials: Scenes per registry size.
        seed: RNG seed (same scenes re-detected at every size).
    """
    fs = 1e6
    traffic_modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    rng = np.random.default_rng(seed)
    scenes = []
    for _ in range(trials):
        builder = SceneBuilder(fs, 0.4)
        for i, modem in enumerate(traffic_modems):
            builder.add_packet(
                modem,
                bytes(rng.integers(0, 256, 10, dtype=np.uint8)),
                start=int((0.05 + 0.3 * i / 3) * fs * 1.2),
                snr_db=snr_db,
                rng=rng,
                snr_mode="capture",
            )
        scenes.append(builder.render(rng))
    table = ExperimentTable(
        title=f"Universal preamble growth at {snr_db:.0f} dB",
        columns=["registered techs", "groups", "detected", "of"],
    )
    for n in range(1, len(_GROWTH_ORDER) + 1):
        registered = [create_modem(name) for name in _GROWTH_ORDER[:n]]
        universal = UniversalPreamble.build(registered, fs)
        detector = UniversalPreambleDetector(universal)
        hit = 0
        total = 0
        for capture, truth in scenes:
            events = detector.detect(capture)
            # Only packets of *registered* technologies can count.
            eligible = [
                p
                for p in truth.packets
                if p.technology in {m.name for m in registered}
            ]
            detected, _ = match_events(events, eligible, gate=universal.length)
            hit += len(detected)
            total += len(eligible)
        table.rows.append([n, len(universal.groups), hit, total])
    table.notes.append(
        "traffic is fixed (the prototype trio); each added registry entry "
        "dilutes the summed template by ~10*log10(groups)/2 dB of "
        "matched-filter deflection — the degradation the paper flags as "
        "future work"
    )
    return table
