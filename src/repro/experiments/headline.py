"""H1-H3 — the paper's headline numbers.

* **H1** (Sec. 1): "Our universal preamble detects 50.89% more packets
  compared to energy detection at SNRs below -10 dB."
* **H2** (Sec. 1 / Sec. 8): "Our collision decoding algorithm improves
  throughput by 7.46 times as that provided by successive interference
  cancellation" / "an increase in average throughput by 745.96%".
* **H3** (Sec. 7): energy detection collapses from 84% to 0.04% below
  0 dB; the universal preamble maintains 62% detection at -30 dB; kill
  filters gain 818.36% at high SNR and 532.4% at low SNR.

Each headline is recomputed from the same machinery as Figures 3(b)
and 3(c) and reported paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import DEFAULT_SEED, ExperimentTable
from .fig3b_detection import Fig3bResult, run_fig3b
from .fig3c_collisions import PAPER_FIG3C, Fig3cResult, run_fig3c

__all__ = ["HeadlineResult", "run_headline"]


@dataclass
class HeadlineResult:
    """Measured headline metrics next to the paper's claims."""

    fig3b: Fig3bResult
    fig3c: Fig3cResult

    @property
    def h1_extra_detection(self) -> float:
        """Universal-over-energy detection advantage below -10 dB.

        The paper phrases this as "+50.89% more packets"; with energy
        detection at ~0 below -10 dB the measured ratio is reported as
        the absolute detection-ratio difference.
        """
        low_bands = [i for i, (lo, hi) in enumerate(self.fig3b.bands) if hi <= -10]
        uni = sum(self.fig3b.ratios["universal"][i] for i in low_bands)
        eng = sum(self.fig3b.ratios["energy"][i] for i in low_bands)
        n = max(len(low_bands), 1)
        return (uni - eng) / n

    @property
    def h2_throughput_gain(self) -> float:
        """Average GalioT/SIC throughput ratio."""
        return self.fig3c.average_gain()

    def table(self) -> ExperimentTable:
        """Paper-vs-measured headline table."""
        table = ExperimentTable(
            title="Headline claims (paper vs measured)",
            columns=["claim", "paper", "measured"],
        )
        table.rows.append(
            [
                "H1 extra packets detected below -10 dB (universal - energy)",
                "+50.89%",
                f"+{100 * self.h1_extra_detection:.1f}%",
            ]
        )
        table.rows.append(
            [
                "H2 avg throughput gain over SIC",
                f"x{PAPER_FIG3C['average']:.2f}",
                f"x{self.h2_throughput_gain:.2f}",
            ]
        )
        table.rows.append(
            [
                "H3 energy detection above 0 dB",
                "84%",
                f"{100 * self.fig3b.ratios['energy'][3]:.0f}%",
            ]
        )
        table.rows.append(
            [
                "H3 energy detection below 0 dB",
                "0.04%",
                f"{100 * max(self.fig3b.ratios['energy'][i] for i in (0, 1)):.2f}%",
            ]
        )
        table.rows.append(
            [
                "H3 universal detection in [-30,-20) dB",
                "62% (at -30)",
                f"{100 * self.fig3b.ratios['universal'][0]:.0f}%",
            ]
        )
        table.rows.append(
            [
                "H3 throughput gain, high SNR",
                f"x{PAPER_FIG3C['High']:.2f}",
                f"x{self.fig3c.gain('High'):.2f}",
            ]
        )
        table.rows.append(
            [
                "H3 throughput gain, low SNR",
                f"x{PAPER_FIG3C['Low']:.2f}",
                f"x{self.fig3c.gain('Low'):.2f}",
            ]
        )
        return table


def run_headline(
    seed: int = DEFAULT_SEED,
    detection_trials: int = 3,
    episodes_per_bucket: int = 8,
) -> HeadlineResult:
    """Recompute every headline from the figure machinery."""
    # Distinct root seeds per figure pipeline: both consume their seed
    # directly, so sharing one would feed identical random streams into
    # two supposedly independent experiments.
    return HeadlineResult(
        fig3b=run_fig3b(trials_per_band=detection_trials, seed=seed),
        fig3c=run_fig3c(
            episodes_per_bucket=episodes_per_bucket, seed=seed + 1
        ),
    )
