"""Shared experiment plumbing: result records and table printing.

Every experiment module exposes a ``run_*`` function returning a
dataclass with the measured rows plus the paper's reference values, and
a ``format_table`` helper so benchmarks and the CLI print identical
output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentTable", "format_table", "DEFAULT_SEED"]

DEFAULT_SEED = 20181115  # HotNets'18 presentation day


@dataclass
class ExperimentTable:
    """A generic named table of experiment rows.

    Attributes:
        title: Table/figure identifier (e.g. ``"Figure 3(b)"``).
        columns: Column headers.
        rows: Row values (strings or numbers).
        notes: Free-form caveats printed under the table.
    """

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def format_table(table: ExperimentTable) -> str:
    """Render a table as aligned monospace text."""
    cells = [[_fmt(v) for v in row] for row in table.rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(table.columns)
    ]
    lines = [table.title, "=" * len(table.title)]
    header = "  ".join(h.ljust(w) for h, w in zip(table.columns, widths, strict=True))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    for note in table.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
