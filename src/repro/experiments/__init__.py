"""Experiment harnesses regenerating every table and figure of the paper.

========  =============================  ==========================
Id        Paper artifact                 Entry point
========  =============================  ==========================
T1        Table 1                        :func:`run_table1`
F3b       Figure 3(b)                    :func:`run_fig3b`
F3c       Figure 3(c)                    :func:`run_fig3c`
H1-H3     Sec. 1/7/8 headline numbers    :func:`run_headline`
ablation  design-choice ablations        :mod:`repro.experiments.ablations`
========  =============================  ==========================
"""

from .ablations import (
    run_compression,
    run_edge_cloud,
    run_kill_filters,
    run_scaling,
    run_sic_depth,
)
from .battery import run_battery
from .boundary import run_boundary
from .growth import run_universal_growth
from .common import DEFAULT_SEED, ExperimentTable, format_table
from .hopping_exp import run_hopping
from .sweeps import run_compression_depth, run_overlap, run_roc
from .fig3b_detection import PAPER_FIG3B, Fig3bResult, fig3b_modems, run_fig3b
from .fig3c_collisions import PAPER_FIG3C, Fig3cResult, run_fig3c
from .headline import HeadlineResult, run_headline
from .table1 import run_table1

__all__ = [
    "DEFAULT_SEED",
    "ExperimentTable",
    "format_table",
    "run_table1",
    "run_fig3b",
    "run_fig3c",
    "run_headline",
    "run_scaling",
    "run_compression",
    "run_kill_filters",
    "run_edge_cloud",
    "run_sic_depth",
    "run_boundary",
    "run_hopping",
    "run_roc",
    "run_compression_depth",
    "run_overlap",
    "run_battery",
    "run_universal_growth",
    "Fig3bResult",
    "Fig3cResult",
    "HeadlineResult",
    "PAPER_FIG3B",
    "PAPER_FIG3C",
    "fig3b_modems",
]
