"""T1 — Table 1: common IoT technologies, modulation and preambles.

The registry *is* the table; this experiment renders it and checks the
implemented technologies against the paper's rows.
"""

from __future__ import annotations

from ..phy.registry import table1_rows
from .common import ExperimentTable

__all__ = ["run_table1"]


def run_table1() -> ExperimentTable:
    """Render Table 1 from the live registry."""
    table = ExperimentTable(
        title="Table 1: Common IoT technologies (registry)",
        columns=["Technology", "Modulation", "Sync", "Preamble", "Status"],
    )
    for row in table1_rows():
        table.rows.append(
            [
                row["technology"],
                row["modulation"],
                row["sync"],
                row["preamble"],
                row["implemented"],
            ]
        )
    table.notes.append(
        "paper rows reproduced verbatim; 'metadata-only' rows are the "
        "paper's own future-work technologies (WiFi HaLow, NB-IoT)"
    )
    return table
