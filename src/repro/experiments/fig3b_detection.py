"""F3b — Figure 3(b): ratio of packets detected vs SNR band.

Reproduces the paper's packet-detection comparison: energy detection,
GalioT's universal preamble, and the optimal per-technology correlation
bank, across SNR bands from -30 dB to +20 dB.

Methodology notes (documented deviations):

* SNR is **capture-band** (per-sample over the 1 MHz capture), matching
  the paper's procedure of injecting AWGN onto RTL-SDR traces.
* Radio configurations use longer (standard-legal) preambles than the
  bare minimum — LoRa with 32 preamble chirps, Z-Wave with a 24-byte
  preamble run — because correlation processing gain is what makes the
  paper's sub-noise detection claims physically reachable. The XBee
  profile keeps its 4-byte preamble, which is why (as in the paper) the
  second packet of a collision is the one most often missed at very low
  SNR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gateway.detection import EnergyDetector, PreambleBankDetector, match_events
from ..gateway.universal import UniversalPreamble, UniversalPreambleDetector
from ..net.scene import SceneBuilder
from ..phy.base import Modem
from ..phy.registry import create_modem
from .common import DEFAULT_SEED, ExperimentTable

__all__ = ["Fig3bResult", "fig3b_modems", "run_fig3b", "PAPER_FIG3B"]

#: SNR bands of the paper's x-axis.
SNR_BANDS = [(-30, -20), (-20, -10), (-10, 0), (0, 10), (10, 20)]

#: Approximate values read off the paper's Figure 3(b) bars and text
#: ("84% to 0.04% below 0 dB", "62% even at -30 dB", "universal close to
#: optimum above 0 dB"). Keys: detector -> per-band ratio.
PAPER_FIG3B = {
    "energy": [0.0004, 0.0004, 0.40, 0.84, 0.84],
    "universal": [0.62, 0.70, 0.85, 0.95, 0.97],
    "optimal": [0.70, 0.80, 0.90, 0.97, 0.99],
}


def fig3b_modems() -> list[Modem]:
    """The detection-experiment radio configuration (see module doc)."""
    return [
        create_modem("lora", preamble_len=32),
        create_modem("xbee"),
        create_modem("zwave", preamble_bytes=24),
    ]


@dataclass
class Fig3bResult:
    """Measured detection ratios per band per detector."""

    bands: list[tuple[float, float]]
    ratios: dict[str, list[float]] = field(default_factory=dict)
    false_alarms: dict[str, int] = field(default_factory=dict)

    def table(self) -> ExperimentTable:
        """Paper-vs-measured table for this figure."""
        table = ExperimentTable(
            title="Figure 3(b): ratio of packets detected vs SNR band",
            columns=[
                "SNR band (dB)",
                "energy",
                "universal",
                "optimal",
                "paper:energy",
                "paper:universal",
                "paper:optimal",
            ],
        )
        for i, (lo, hi) in enumerate(self.bands):
            table.rows.append(
                [
                    f"{lo:+.0f}..{hi:+.0f}",
                    self.ratios["energy"][i],
                    self.ratios["universal"][i],
                    self.ratios["optimal"][i],
                    PAPER_FIG3B["energy"][i],
                    PAPER_FIG3B["universal"][i],
                    PAPER_FIG3B["optimal"][i],
                ]
            )
        table.notes.append(
            "SNR is capture-band (AWGN injected on the 1 MHz trace, as in "
            "the paper); paper columns are approximate bar readings"
        )
        return table


def run_fig3b(
    trials_per_band: int = 3,
    seed: int = DEFAULT_SEED,
    scene_s: float = 0.45,
) -> Fig3bResult:
    """Run the detection comparison.

    Args:
        trials_per_band: Scenes rendered per SNR band (5 packets each,
            including one deliberate collision pair).
        seed: RNG seed.
        scene_s: Scene duration in seconds.
    """
    fs = 1e6
    modems = fig3b_modems()
    by_name = {m.name: m for m in modems}
    universal = UniversalPreamble.build(modems, fs)
    detectors = {
        "energy": EnergyDetector(),
        "universal": UniversalPreambleDetector(universal),
        "optimal": PreambleBankDetector(modems, fs),
    }
    gates = {
        "energy": 1024,
        "universal": universal.length,
        "optimal": max(len(t) for t in detectors["optimal"].templates.values()),
    }
    rng = np.random.default_rng(seed)
    result = Fig3bResult(bands=SNR_BANDS, false_alarms={k: 0 for k in detectors})
    for name in detectors:
        result.ratios[name] = []
    layout = [
        ("lora", 0.06),
        ("xbee", 0.30),
        ("zwave", 0.54),
        ("lora", 0.72),  # deliberate collision pair:
        ("xbee", 0.75),  # xbee starts inside the lora frame
    ]
    for lo, hi in SNR_BANDS:
        hits = {k: 0 for k in detectors}
        total = 0
        for _ in range(trials_per_band):
            builder = SceneBuilder(fs, scene_s)
            for tech, frac in layout:
                snr = float(rng.uniform(lo, hi))
                builder.add_packet(
                    by_name[tech],
                    bytes(rng.integers(0, 256, 14, dtype=np.uint8)),
                    start=int(frac * scene_s * fs),
                    snr_db=snr,
                    rng=rng,
                    snr_mode="capture",
                )
            capture, truth = builder.render(rng)
            total += len(truth.packets)
            for name, detector in detectors.items():
                events = detector.detect(capture)
                detected, fas = match_events(events, truth.packets, gates[name])
                hits[name] += len(detected)
                result.false_alarms[name] += len(fas)
        for name in detectors:
            result.ratios[name].append(hits[name] / max(total, 1))
    return result
