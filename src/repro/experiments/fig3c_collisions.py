"""F3c — Figure 3(c): collision-decoding throughput, SIC vs GalioT.

Monte-Carlo of collision episodes (the paper tunes duty cycles so "all
possible scenarios, including intertechnology collisions" occur): each
episode renders 1-3 overlapping transmissions of the prototype trio with
per-packet crystal offsets, then decodes the capture twice — once with
the classic SIC strawman (strict power order, stop at first failure) and
once with full GalioT (Algorithm 1: kill filters + fallback ordering).

Throughput is delivered payload bits per second of channel time. The
paper attributes part of its gain to devices being able to "transmit at
one rate higher" once collisions stop costing retransmissions; the
optional rate-adaptation factor models exactly that (delivery failures
push a device to a half-rate tier, doubling its airtime).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cloud.decoder import CloudDecoder
from ..net.traffic import collision_scene
from ..phy.base import Modem
from ..phy.registry import create_modem
from .common import DEFAULT_SEED, ExperimentTable

__all__ = ["Fig3cResult", "run_fig3c", "PAPER_FIG3C", "SNR_BUCKETS"]

#: Capture-band SNR buckets; the paper labels them Low (<5 dB),
#: Medium and High (>20 dB).
SNR_BUCKETS = {
    "Low": (-2.0, 5.0),
    "Medium": (5.0, 20.0),
    "High": (20.0, 30.0),
}

#: The paper's reported kill-filter throughput gains over SIC.
PAPER_FIG3C = {
    "Low": 5.324,   # "532.4% in low SNR"
    "High": 8.1836,  # "818.36% in high SNR"
    "average": 7.4596,  # "increase in average throughput by 745.96%"
}

#: Episode mix: (number of colliding technologies, weight).
EPISODE_MIX = [(1, 0.15), (2, 0.60), (3, 0.25)]


@dataclass
class Fig3cResult:
    """Throughput per bucket per decoding mode."""

    buckets: list[str]
    throughput_bps: dict[str, dict[str, float]] = field(default_factory=dict)
    frames: dict[str, dict[str, tuple[int, int]]] = field(default_factory=dict)
    methods: dict[str, int] = field(default_factory=dict)

    def gain(self, bucket: str) -> float:
        """GalioT / SIC throughput ratio for a bucket."""
        sic = self.throughput_bps[bucket]["sic"]
        galiot = self.throughput_bps[bucket]["galiot"]
        if sic <= 0:
            return float("inf") if galiot > 0 else 1.0
        return galiot / sic

    def average_gain(self) -> float:
        """Throughput ratio pooled over all buckets."""
        sic = sum(self.throughput_bps[b]["sic"] for b in self.buckets)
        galiot = sum(self.throughput_bps[b]["galiot"] for b in self.buckets)
        if sic <= 0:
            return float("inf") if galiot > 0 else 1.0
        return galiot / sic

    def table(self) -> ExperimentTable:
        """Paper-vs-measured table for this figure."""
        table = ExperimentTable(
            title="Figure 3(c): collision-decoding throughput (bps)",
            columns=[
                "SNR bucket",
                "SIC bps",
                "GalioT bps",
                "gain x",
                "paper gain x",
            ],
        )
        for bucket in self.buckets:
            paper = PAPER_FIG3C.get(bucket)
            table.rows.append(
                [
                    bucket,
                    self.throughput_bps[bucket]["sic"],
                    self.throughput_bps[bucket]["galiot"],
                    self.gain(bucket),
                    paper if paper is not None else "-",
                ]
            )
        table.rows.append(
            [
                "average",
                sum(self.throughput_bps[b]["sic"] for b in self.buckets),
                sum(self.throughput_bps[b]["galiot"] for b in self.buckets),
                self.average_gain(),
                PAPER_FIG3C["average"],
            ]
        )
        table.notes.append(
            "SIC baseline = classic successive cancellation (strict power "
            "order, stops at first failure); GalioT = Algorithm 1"
        )
        table.notes.append(f"GalioT decode methods: {self.methods}")
        return table


def _draw_episode(
    rng: np.random.Generator, modems: list[Modem]
) -> list[Modem]:
    weights = np.array([w for _, w in EPISODE_MIX])
    sizes = [n for n, _ in EPISODE_MIX]
    n = int(rng.choice(sizes, p=weights / weights.sum()))
    idx = rng.choice(len(modems), size=n, replace=False)
    return [modems[i] for i in idx]


def run_fig3c(
    episodes_per_bucket: int = 10,
    seed: int = DEFAULT_SEED,
    cfo_ppm: float = 2.0,
    rate_adaptation: bool = True,
) -> Fig3cResult:
    """Run the collision-throughput comparison.

    Args:
        episodes_per_bucket: Collision episodes per SNR bucket.
        seed: RNG seed.
        cfo_ppm: Per-packet crystal error range (±ppm at 868 MHz).
        rate_adaptation: Model the paper's rate effect — a device whose
            frame was lost falls back to a half-rate tier, so its
            *next* delivery costs twice the airtime. Throughput then
            reflects both lost frames and the slower rates lost frames
            force.
    """
    fs = 1e6
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    rng = np.random.default_rng(seed)
    result = Fig3cResult(buckets=list(SNR_BUCKETS))
    for bucket, (lo, hi) in SNR_BUCKETS.items():
        bits = {"sic": 0.0, "galiot": 0.0}
        airtime = {"sic": 0.0, "galiot": 0.0}
        frames_ok = {"sic": 0, "galiot": 0}
        frames_all = 0
        # Rate tier per (mode, technology): tier t halves the rate t
        # times, i.e. multiplies the airtime per delivered bit by 2**t.
        tier: dict[tuple[str, str], int] = {}
        for _ in range(episodes_per_bucket):
            episode_modems = _draw_episode(rng, modems)
            snrs = [float(rng.uniform(lo, hi)) for _ in episode_modems]
            capture, truth = collision_scene(
                episode_modems,
                snrs,
                fs,
                rng,
                payload_len=12,
                snr_mode="capture",
                cfo_ppm_range=cfo_ppm,
            )
            want = {(p.technology, p.payload) for p in truth.packets}
            frames_all += len(want)
            duration = truth.duration
            for mode, decoder in (
                ("sic", CloudDecoder.sic_baseline(modems, fs)),
                ("galiot", CloudDecoder.galiot(modems, fs)),
            ):
                report = decoder.decode(capture)
                got = {(r.technology, r.payload) for r in report.results}
                delivered = got & want
                frames_ok[mode] += len(delivered)
                if mode == "galiot":
                    for r in report.results:
                        result.methods[r.method] = (
                            result.methods.get(r.method, 0) + 1
                        )
                airtime[mode] += duration
                for tech, payload in sorted(want):
                    key = (mode, tech)
                    t = tier.get(key, 0)
                    if (tech, payload) in delivered:
                        # Delivered at the current tier: bits land, but a
                        # half-rate tier spends 2**t the airtime.
                        if rate_adaptation:
                            airtime[mode] += duration * (2**t - 1) / max(
                                len(want), 1
                            )
                            tier[key] = max(t - 1, 0)
                        bits[mode] += 8 * len(payload)
                    elif rate_adaptation:
                        tier[key] = min(t + 1, 3)
        result.throughput_bps[bucket] = {
            m: bits[m] / airtime[m] if airtime[m] > 0 else 0.0
            for m in ("sic", "galiot")
        }
        result.frames[bucket] = {
            m: (frames_ok[m], frames_all) for m in ("sic", "galiot")
        }
    return result
