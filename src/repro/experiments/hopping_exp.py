"""Frequency-hopping ablation (paper Sec. 6 design space).

One tuner, four 1 MHz channels, traffic concentrated on a subset of
them. Compares a round-robin scan against the exponential-weights
scheduler that "dynamically learns the schedule". Reported per policy:
dwells on busy channels and packets detected.
"""

from __future__ import annotations

import numpy as np

from ..dsp.filters import frequency_shift
from ..dsp.resample import to_rate
from ..gateway.hopping import ChannelPlan, HopScheduler, run_hopping_campaign
from ..gateway.universal import UniversalPreamble, UniversalPreambleDetector
from ..phy.registry import create_modem
from .common import DEFAULT_SEED, ExperimentTable

__all__ = ["run_hopping"]


def _wide_scene(
    plan: ChannelPlan,
    rng: np.random.Generator,
    busy_channels: tuple[int, ...],
    n_packets: int,
    duration_s: float,
) -> np.ndarray:
    xbee = create_modem("xbee")
    wide = np.zeros(int(plan.wide_fs * duration_s), dtype=complex)
    for i in range(n_packets):
        channel = busy_channels[i % len(busy_channels)]
        wave = to_rate(
            xbee.modulate(bytes([i % 250]) * 6), xbee.sample_rate, plan.wide_fs
        )
        wave = frequency_shift(wave, plan.centers_hz[channel], plan.wide_fs)
        start = int(rng.uniform(0, duration_s - 0.05) * plan.wide_fs)
        stop = min(start + len(wave), len(wide))
        wide[start:stop] += wave[: stop - start]
    noise = 0.05 * (
        rng.normal(size=len(wide)) + 1j * rng.normal(size=len(wide))
    )
    return wide + noise


def run_hopping(
    n_packets: int = 24,
    duration_s: float = 3.0,
    seed: int = DEFAULT_SEED,
) -> ExperimentTable:
    """Run the learned-vs-round-robin hopping comparison."""
    plan = ChannelPlan.uniform(wide_fs=4e6, channel_bw=1e6, n_channels=4)
    busy = (1, 3)
    rng = np.random.default_rng(seed)
    wide = _wide_scene(plan, rng, busy, n_packets, duration_s)
    modems = [create_modem("xbee")]
    universal = UniversalPreamble.build(modems, plan.channel_bw)
    detector = UniversalPreambleDetector(universal)
    dwell = int(0.1 * plan.wide_fs)
    table = ExperimentTable(
        title="Ablation: frequency hopping, learned vs round-robin",
        columns=["policy", "dwells on busy channels", "dwells total", "detections"],
    )
    # Both campaigns share one *derived* child stream — identical to each
    # other (paired A/B: the scheduler is the only difference) but
    # decorrelated from the scene noise drawn from the root seed above.
    rr = run_hopping_campaign(
        wide, plan, detector, dwell, np.random.default_rng((seed, 1))
    )
    sched = HopScheduler(n_channels=plan.n_channels, explore=0.2)
    learned = run_hopping_campaign(
        wide, plan, detector, dwell, np.random.default_rng((seed, 1)),
        scheduler=sched,
    )
    for label, results in (("round-robin", rr), ("learned", learned)):
        busy_dwells = sum(1 for d in results if d.channel in busy)
        table.rows.append(
            [
                label,
                busy_dwells,
                len(results),
                sum(d.detections for d in results),
            ]
        )
    table.notes.append(
        f"traffic concentrated on channels {busy}; the learner shifts its "
        "dwells there (paper Sec. 6: 'dynamically learns the schedule')"
    )
    return table
