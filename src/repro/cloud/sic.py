"""Successive interference cancellation (SIC).

The strawman the paper compares against (and a building block GalioT
itself uses after a kill filter): decode the strongest transmission,
remodulate it, fit its complex channel gain by least squares, subtract,
and repeat. SIC works when colliding powers are well separated and
fails when they are comparable — which is precisely the regime the kill
filters rescue.

Reconstruction fits the gain per block (not once per frame) so slow
phase drift between transmitter and receiver clocks does not cap the
cancellation depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import iq_contract
from ..dsp.backend import backend_enabled, blocked_ls_subtract
from ..dsp.fastcorr import (
    TemplateBank,
    TrackSpec,
    correlate_accumulate,
    correlate_many,
    fastcorr_enabled,
)
from ..dsp.resample import NativeRateCache, to_rate
from ..errors import ReproError
from ..phy.base import FrameResult, Modem
from ..telemetry import NULL, Telemetry

__all__ = [
    "FrameWaveformMemo",
    "ReconstructionReport",
    "reconstruct_and_subtract",
    "try_decode",
]

#: Cap on the alignment-search half-width in segment-rate samples. The
#: half-width scales with ``sample_rate_hz / modem.sample_rate`` (a
#: native-rate timing bias spans that many segment samples), but a
#: pathological rate ratio must not turn the local search into a
#: full-segment scan.
MAX_ALIGN_HALF_WIDTH = 512


class FrameWaveformMemo:
    """Per-segment cache of remodulated + resampled frame waveforms.

    Algorithm 1 reconstructs the *same* decoded frame more than once per
    segment: a kill-filter retry that re-decodes the victim, or repeated
    SIC passes over a multi-collision, each pay ``modulate()`` plus
    ``to_rate()`` for an identical ``(technology, payload, rate)``
    triple. The memo returns a read-only waveform so every consumer can
    share one buffer safely. Scope it to one segment: payload bytes are
    arbitrary, so an unbounded process-wide cache would grow without
    limit.
    """

    def __init__(self) -> None:
        self._waves: dict[tuple[str, bytes, float], np.ndarray] = {}

    def wave(
        self, modem: Modem, payload: bytes, sample_rate_hz: float
    ) -> np.ndarray:
        """The frame waveform of ``payload`` resampled to ``sample_rate_hz``."""
        key = (modem.name, bytes(payload), float(sample_rate_hz))
        wave = self._waves.get(key)
        if wave is None:
            wave = to_rate(
                modem.modulate(payload), modem.sample_rate, sample_rate_hz
            )
            wave.flags.writeable = False
            self._waves[key] = wave
        return wave


@dataclass(frozen=True)
class ReconstructionReport:
    """Accounting for one cancellation step.

    Attributes:
        gain: Fitted complex gain of the first block.
        cancelled_db: Power removed from the overlap region, in dB
            (larger is deeper cancellation).
    """

    gain: complex
    cancelled_db: float


@iq_contract("samples")
def try_decode(
    modem: Modem,
    samples: np.ndarray,
    sample_rate_hz: float,
    rates: NativeRateCache | None = None,
    telemetry: Telemetry = NULL,
    sync_retries: int = 0,
) -> FrameResult | None:
    """Attempt a plain decode of ``modem`` on ``samples`` at rate ``sample_rate_hz``.

    Returns ``None`` instead of raising when sync or decoding fails or
    the checksum is bad — Algorithm 1 treats all three identically.
    A modem that leaks a bare exception (``ValueError``/``IndexError``
    on a heavily-killed residual, say) is also a miss, not a crash: the
    serial :class:`~repro.cloud.pipeline.CloudService` has no
    retry/quarantine net under it, so a single brittle demodulator must
    not take down the whole segment. Such escapes are counted as
    ``cloud.decode_errors`` in ``telemetry``.

    ``rates``, when given, must wrap ``samples`` and supplies the
    memoized native-rate view instead of resampling again.

    ``sync_retries`` is the anti-spoofing knob: a demodulator locks onto
    its best sync match, so a *valid preamble with a corrupt body* — the
    spoofer's signature — shadows every later frame of the same
    technology in the buffer and one forged preamble silences a real
    one. With retries enabled, each CRC failure nulls the failed
    frame's sync region (in a private copy; cached native-rate views
    are shared) and re-syncs, up to ``sync_retries`` times. Zero keeps
    the historical single-lock behavior bit-identical.
    """
    try:
        if rates is not None:
            native = rates.view(modem.sample_rate)
        else:
            native = to_rate(samples, sample_rate_hz, modem.sample_rate)
        frame = modem.demodulate(native)
    except ReproError:
        return None
    except Exception:
        telemetry.count("cloud.decode_errors")
        return None
    for _ in range(sync_retries):
        if frame.crc_ok:
            break
        lo = max(int(frame.start), 0)
        if lo >= len(native):
            break
        telemetry.count("cloud.sync_retries")
        native = np.array(native, copy=True)
        native[lo : lo + len(modem.sync_reference())] = 0
        try:
            frame = modem.demodulate(native)
        except ReproError:
            return None
        except Exception:
            telemetry.count("cloud.decode_errors")
            return None
    return frame if frame.crc_ok else None


def _align_start(
    samples: np.ndarray,
    probe: np.ndarray,
    start: int,
    half: int,
    block: int,
) -> int:
    """Best-scoring frame start within ``start +- half`` segment samples.

    Candidates are scored by non-coherent block correlation of ``probe``
    against the segment (full blocks plus the remainder: a probe shorter
    than one block would otherwise score 0.0 for every candidate and the
    search would silently snap to the window edge, smearing short frames
    instead of cancelling them). Ties keep the earliest candidate.

    With the shared-FFT engine on, all candidates are scored by one
    :func:`~repro.dsp.fastcorr.correlate_many` call over the probe's
    blocks — entry ``cand - lo + pos`` of block ``pos``'s correlation
    track *is* that candidate's block inner product — instead of a
    Python loop of ``O(half * blocks)`` ``vdot`` calls. Engine off keeps
    the historical time-domain loop, bit-identical to prior releases at
    equal rates.
    """
    offsets = list(range(0, len(probe), block))
    lo = max(start - half, 0)
    hi = min(start + half, len(samples) - len(probe))
    if hi < lo or not offsets:
        return start
    if fastcorr_enabled():
        bank = TemplateBank(
            {pos: probe[pos : pos + block] for pos in offsets}
        )
        region = samples[lo : hi + len(probe)]
        out_len = hi - lo + 1
        if backend_enabled():
            # Fused: block magnitudes accumulate inside the engine's
            # chunk loop instead of materializing per-block tracks.
            spec = TrackSpec(
                pairs=tuple((pos, pos) for pos in offsets),
                out_len=out_len,
                squared=False,
            )
            metric = correlate_accumulate(region, bank, {0: spec})[0]
        else:
            tracks = correlate_many(region, bank)
            metric = np.zeros(out_len)
            for pos in offsets:
                track = tracks[pos]
                metric += np.abs(track[pos : pos + out_len])
        return lo + int(np.argmax(metric))
    best_metric = -1.0
    best_start = start
    for cand in range(lo, hi + 1):
        window = samples[cand : cand + len(probe)]
        metric = 0.0
        for pos in offsets:
            metric += abs(
                np.vdot(probe[pos : pos + block], window[pos : pos + block])
            )
        if metric > best_metric:
            best_metric = metric
            best_start = cand
    return best_start


@iq_contract("samples")
def reconstruct_and_subtract(
    samples: np.ndarray,
    sample_rate_hz: float,
    modem: Modem,
    frame: FrameResult,
    block_s: float = 0.25e-3,
    memo: FrameWaveformMemo | None = None,
) -> tuple[np.ndarray, ReconstructionReport]:
    """Subtract a decoded frame's waveform from ``samples``.

    Args:
        samples: The working segment at rate ``sample_rate_hz``.
        sample_rate_hz: Segment sample rate.
        modem: Technology of the decoded frame.
        frame: The decode result (``payload`` + native-rate ``start``).
        block_s: Gain-fit block length in seconds.
        memo: Optional per-segment :class:`FrameWaveformMemo`; repeated
            reconstructions of the same frame then skip the
            remodulate + resample step.

    Returns:
        ``(residual, report)``. The subtraction never amplifies: blocks
        where the LS fit is degenerate are left unchanged.
    """
    if memo is not None:
        wave = memo.wave(modem, frame.payload, sample_rate_hz)
    else:
        wave = to_rate(
            modem.modulate(frame.payload), modem.sample_rate, sample_rate_hz
        )
    start = int(round(frame.start * sample_rate_hz / modem.sample_rate))
    # Local alignment search: a carrier offset biases chirp correlation
    # peaks by several samples (time-frequency coupling), and a
    # misaligned subtraction smears instead of cancelling. Score small
    # offsets with non-coherent block correlation and keep the best.
    probe = wave[: min(len(wave), int(8e-3 * sample_rate_hz))]
    block = max(int(0.25e-3 * sample_rate_hz), 128)
    # The timing bias is native to the *modem's* rate (a chirp peak
    # lands a few native samples early under CFO), so the search window
    # must cover that many native samples expressed at the segment
    # rate; a fixed +-16 is blind past a 16x rate ratio and the
    # subtraction smears instead of cancelling.
    ratio = sample_rate_hz / float(modem.sample_rate)
    half = int(min(max(16, round(16 * ratio)), MAX_ALIGN_HALF_WIDTH))
    start = _align_start(samples, probe, start, half, block)
    stop = min(start + len(wave), len(samples))
    if stop <= start:
        return samples.copy(), ReconstructionReport(gain=0j, cancelled_db=0.0)
    ref = wave[: stop - start]
    region = samples[start:stop]
    before = float(np.sum(np.abs(region) ** 2))
    block = max(int(block_s * sample_rate_hz), 128)
    residual = samples.copy()
    if backend_enabled():
        # Batched per-block LS: all full blocks fit in two einsum
        # contractions instead of a Python loop of per-block sums.
        fitted, first_gain = blocked_ls_subtract(ref, region, block)
        residual[start:stop] = fitted
    else:
        first_gain = 0j
        for pos in range(0, len(ref), block):
            r = ref[pos : pos + block]
            x = region[pos : pos + block]
            energy = float(np.sum(np.abs(r) ** 2))
            if energy <= 0:
                continue
            gain = complex(np.sum(np.conj(r) * x) / energy)
            if pos == 0:
                first_gain = gain
            residual[start + pos : start + pos + len(r)] = x - gain * r
    after = float(np.sum(np.abs(residual[start:stop]) ** 2))
    cancelled_db = (
        10 * np.log10(before / after) if after > 0 and before > 0 else 0.0
    )
    return residual, ReconstructionReport(
        gain=first_gain, cancelled_db=float(cancelled_db)
    )
