"""Successive interference cancellation (SIC).

The strawman the paper compares against (and a building block GalioT
itself uses after a kill filter): decode the strongest transmission,
remodulate it, fit its complex channel gain by least squares, subtract,
and repeat. SIC works when colliding powers are well separated and
fails when they are comparable — which is precisely the regime the kill
filters rescue.

Reconstruction fits the gain per block (not once per frame) so slow
phase drift between transmitter and receiver clocks does not cap the
cancellation depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import iq_contract
from ..dsp.resample import NativeRateCache, to_rate
from ..errors import ReproError
from ..phy.base import FrameResult, Modem

__all__ = ["ReconstructionReport", "reconstruct_and_subtract", "try_decode"]


@dataclass(frozen=True)
class ReconstructionReport:
    """Accounting for one cancellation step.

    Attributes:
        gain: Fitted complex gain of the first block.
        cancelled_db: Power removed from the overlap region, in dB
            (larger is deeper cancellation).
    """

    gain: complex
    cancelled_db: float


@iq_contract("samples")
def try_decode(
    modem: Modem,
    samples: np.ndarray,
    sample_rate_hz: float,
    rates: NativeRateCache | None = None,
) -> FrameResult | None:
    """Attempt a plain decode of ``modem`` on ``samples`` at rate ``sample_rate_hz``.

    Returns ``None`` instead of raising when sync or decoding fails or
    the checksum is bad — Algorithm 1 treats all three identically.
    ``rates``, when given, must wrap ``samples`` and supplies the
    memoized native-rate view instead of resampling again.
    """
    try:
        if rates is not None:
            native = rates.view(modem.sample_rate)
        else:
            native = to_rate(samples, sample_rate_hz, modem.sample_rate)
        frame = modem.demodulate(native)
    except ReproError:
        return None
    return frame if frame.crc_ok else None


@iq_contract("samples")
def reconstruct_and_subtract(
    samples: np.ndarray,
    sample_rate_hz: float,
    modem: Modem,
    frame: FrameResult,
    block_s: float = 0.25e-3,
) -> tuple[np.ndarray, ReconstructionReport]:
    """Subtract a decoded frame's waveform from ``samples``.

    Args:
        samples: The working segment at rate ``sample_rate_hz``.
        sample_rate_hz: Segment sample rate.
        modem: Technology of the decoded frame.
        frame: The decode result (``payload`` + native-rate ``start``).
        block_s: Gain-fit block length in seconds.

    Returns:
        ``(residual, report)``. The subtraction never amplifies: blocks
        where the LS fit is degenerate are left unchanged.
    """
    wave = modem.modulate(frame.payload)
    wave = to_rate(wave, modem.sample_rate, sample_rate_hz)
    start = int(round(frame.start * sample_rate_hz / modem.sample_rate))
    # Local alignment search: a carrier offset biases chirp correlation
    # peaks by several samples (time-frequency coupling), and a
    # misaligned subtraction smears instead of cancelling. Score small
    # offsets with non-coherent block correlation and keep the best.
    probe = wave[: min(len(wave), int(8e-3 * sample_rate_hz))]
    block = max(int(0.25e-3 * sample_rate_hz), 128)
    best_metric = -1.0
    best_start = start
    for cand in range(start - 16, start + 17):
        if cand < 0 or cand + len(probe) > len(samples):
            continue
        window = samples[cand : cand + len(probe)]
        metric = 0.0
        # Score full blocks plus the remainder: a probe shorter than one
        # block would otherwise score 0.0 for every candidate and the
        # search would silently snap to ``start - 16``, smearing short
        # frames instead of cancelling them.
        for pos in range(0, len(probe), block):
            metric += abs(np.vdot(probe[pos : pos + block], window[pos : pos + block]))
        if metric > best_metric:
            best_metric = metric
            best_start = cand
    start = best_start
    stop = min(start + len(wave), len(samples))
    if stop <= start:
        return samples.copy(), ReconstructionReport(gain=0j, cancelled_db=0.0)
    ref = wave[: stop - start]
    region = samples[start:stop]
    before = float(np.sum(np.abs(region) ** 2))
    block = max(int(block_s * sample_rate_hz), 128)
    residual = samples.copy()
    first_gain = 0j
    for pos in range(0, len(ref), block):
        r = ref[pos : pos + block]
        x = region[pos : pos + block]
        energy = float(np.sum(np.abs(r) ** 2))
        if energy <= 0:
            continue
        gain = complex(np.sum(np.conj(r) * x) / energy)
        if pos == 0:
            first_gain = gain
        residual[start + pos : start + pos + len(r)] = x - gain * r
    after = float(np.sum(np.abs(residual[start:stop]) ** 2))
    cancelled_db = (
        10 * np.log10(before / after) if after > 0 and before > 0 else 0.0
    )
    return residual, ReconstructionReport(
        gain=first_gain, cancelled_db=float(cancelled_db)
    )
