"""Technology classification of shipped segments.

The gateway deliberately does not know which technologies are inside a
detected segment (Sec. 4: that task is outsourced to the cloud). The
classifier correlates the segment against every registered technology's
sync waveform and returns the candidates above threshold, each with a
start estimate and a least-squares amplitude estimate — the power
ordering Algorithm 1 keys on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import iq_contract
from ..dsp.correlation import find_peaks_above
from ..dsp.resample import NativeRateCache, to_rate
from ..errors import ConfigurationError
from ..gateway.detection import cfar_threshold, matched_filter_track
from ..phy.base import Modem

__all__ = ["ClassifiedSignal", "SegmentClassifier"]


@dataclass
class ClassifiedSignal:
    """One candidate transmission found inside a segment.

    Attributes:
        technology: Registry name.
        start: Estimated frame start (native-rate samples of the modem).
        score: Matched-filter detection score.
        amplitude: LS complex amplitude of the sync waveform at ``start``
            (its magnitude squared is the power Algorithm 1 sorts by).
        center_hz: Estimated carrier offset of the transmission relative
            to baseband (Hz). The frequency-selective kill filter
            notches around this estimate so a channel-offset victim is
            removed where it actually sits.
    """

    technology: str
    start: int
    score: float
    amplitude: complex
    center_hz: float = 0.0

    @property
    def power(self) -> float:
        """Estimated received power (|amplitude|^2, template-relative)."""
        return float(abs(self.amplitude) ** 2)


class SegmentClassifier:
    """Finds which technologies (and where) live inside a segment.

    Args:
        modems: Registered technologies.
        sample_rate_hz: Sample rate of incoming segments.
        k: CFAR factor for declaring a technology present.
        max_per_technology: Cap on same-technology frames per segment
            (each extra candidate costs the decoder a decode attempt,
            and same-technology collisions inside one segment are rare).
    """

    def __init__(
        self,
        modems: list[Modem],
        sample_rate_hz: float,
        k: float = 8.0,
        max_per_technology: int = 2,
    ):
        if not modems:
            raise ConfigurationError("at least one modem is required")
        self.modems = list(modems)
        self.sample_rate_hz = float(sample_rate_hz)
        self.k = float(k)
        self.max_per_technology = int(max_per_technology)
        # Precompute per-modem sync references once: classify() runs
        # repeatedly (Algorithm 1 re-classifies after every
        # cancellation) and regenerating long waveforms dominates.
        self._refs: list[tuple[Modem, np.ndarray, np.ndarray, int, int | None, float]] = []
        for modem in self.modems:
            ref = (
                modem.sync_waveform()
                if hasattr(modem, "sync_waveform")
                else modem.preamble_waveform()
            )
            stride = max(int(modem.sync_decimation), 1)
            tpl = ref[::stride] if stride > 1 else ref
            block = modem.sync_block
            if block is not None and stride > 1:
                block = max(block // stride, 8)
            ref_energy = float(np.sum(np.abs(ref) ** 2))
            self._refs.append((modem, ref, tpl, stride, block, ref_energy))

    @staticmethod
    def _estimate_center(window: np.ndarray, sample_rate_hz: float) -> float:
        """Power-weighted spectral centroid of ``window`` (Hz).

        Channel-scale accuracy (a few kHz of bias from modulation
        asymmetry), which is the scale that matters: the consumer is the
        frequency-selective kill filter, whose notches span the victim's
        tone bandwidth. A phase-slope estimate against the sync
        reference would be finer but collapses when the correlation
        peak snaps to the wrong period of a periodic preamble; the
        centroid is indifferent to alignment.
        """
        if len(window) < 2:
            return 0.0
        spectrum = np.abs(np.fft.fft(window)) ** 2
        total = float(spectrum.sum())
        if total <= 0:
            return 0.0
        freqs = np.fft.fftfreq(len(window), 1.0 / sample_rate_hz)
        return float(np.sum(spectrum * freqs) / total)

    @iq_contract("samples")
    def classify(
        self, samples: np.ndarray, rates: NativeRateCache | None = None
    ) -> list[ClassifiedSignal]:
        """Rank the transmissions present in ``samples`` by power.

        Args:
            samples: The segment (or working residual) to classify.
            rates: Optional memoized native-rate views of ``samples``
                (must wrap the same buffer). Algorithm 1 passes one so
                repeated classify/decode/kill calls in a single
                iteration resample the residual once per distinct rate.
        """
        found: list[ClassifiedSignal] = []
        for modem, ref, tpl, stride, block, ref_energy in self._refs:
            if rates is not None:
                native = rates.view(modem.sample_rate)
            else:
                native = to_rate(samples, self.sample_rate_hz, modem.sample_rate)
            if len(ref) > len(native):
                continue
            # Spread-spectrum references correlate at a stride (the
            # modem's fine sync absorbs the timing quantization).
            sig = native[::stride] if stride > 1 else native
            track = matched_filter_track(sig, tpl, block=block)
            threshold = cfar_threshold(track, self.k)
            min_dist = max(len(tpl) // 2, 1)
            peaks = find_peaks_above(track, threshold, min_dist)
            peaks = sorted(peaks, key=lambda i: track[i], reverse=True)
            for idx in peaks[: self.max_per_technology]:
                start = int(idx) * stride
                window = native[start : start + len(ref)]
                if len(window) < len(ref):
                    continue
                amplitude = complex(
                    np.sum(np.conj(ref) * window) / ref_energy
                )
                found.append(
                    ClassifiedSignal(
                        technology=modem.name,
                        start=start,
                        score=float(track[idx]),
                        amplitude=amplitude,
                        center_hz=self._estimate_center(
                            window, modem.sample_rate
                        ),
                    )
                )
        return sorted(found, key=lambda c: c.power, reverse=True)
