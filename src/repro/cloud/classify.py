"""Technology classification of shipped segments.

The gateway deliberately does not know which technologies are inside a
detected segment (Sec. 4: that task is outsourced to the cloud). The
classifier correlates the segment against every registered technology's
sync waveform and returns the candidates above threshold, each with a
start estimate and a least-squares amplitude estimate — the power
ordering Algorithm 1 keys on.

Correlation runs on the shared-FFT engine (:mod:`repro.dsp.fastcorr`):
modems are grouped by ``(native rate, correlation stride)`` and each
group owns one persistent :class:`~repro.dsp.fastcorr.TemplateBank`
holding every member's coherent sync sub-blocks, so one
:func:`~repro.dsp.fastcorr.correlate_many` call per group shares a
single forward FFT per overlap-save segment across every technology in
the group — and the conjugate template spectra, cached on the bank, are
paid once per FFT length rather than once per segment per SIC
iteration. With ``GALIOT_FASTCORR=off`` the engine falls back to one
``fftconvolve`` per sub-block, bit-identical to the historical
per-modem :func:`~repro.gateway.detection.matched_filter_track` loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import iq_contract
from ..dsp.backend import backend_enabled
from ..dsp.correlation import find_peaks_above
from ..dsp.fastcorr import TemplateBank, TrackSpec, correlate_accumulate, correlate_many
from ..dsp.resample import NativeRateCache, to_rate
from ..errors import ConfigurationError
from ..gateway.detection import cfar_threshold
from ..phy.base import Modem
from ..telemetry import NULL, Telemetry

__all__ = ["ClassifiedSignal", "SegmentClassifier"]


@dataclass
class ClassifiedSignal:
    """One candidate transmission found inside a segment.

    Attributes:
        technology: Registry name.
        start: Estimated frame start (native-rate samples of the modem).
        score: Matched-filter detection score.
        amplitude: LS complex amplitude of the sync waveform at ``start``
            (its magnitude squared is the power Algorithm 1 sorts by).
        center_hz: Estimated carrier offset of the transmission relative
            to baseband (Hz). The frequency-selective kill filter
            notches around this estimate so a channel-offset victim is
            removed where it actually sits.
    """

    technology: str
    start: int
    score: float
    amplitude: complex
    center_hz: float = 0.0

    @property
    def power(self) -> float:
        """Estimated received power (|amplitude|^2, template-relative)."""
        return float(abs(self.amplitude) ** 2)


@dataclass
class _Ref:
    """Precomputed per-modem classification state."""

    modem: Modem
    ref: np.ndarray  # full-rate sync reference
    tpl: np.ndarray  # strided correlation template
    stride: int
    block: int | None  # coherent block length at template rate
    ref_energy: float
    tpl_norm: float
    offsets: list[int]  # coherent sub-block offsets into ``tpl``


class SegmentClassifier:
    """Finds which technologies (and where) live inside a segment.

    Args:
        modems: Registered technologies.
        sample_rate_hz: Sample rate of incoming segments.
        k: CFAR factor for declaring a technology present.
        max_per_technology: Cap on same-technology frames per segment
            (each extra candidate costs the decoder a decode attempt,
            and same-technology collisions inside one segment are rare).
        telemetry: Metrics sink threaded into the correlation engine.
    """

    def __init__(
        self,
        modems: list[Modem],
        sample_rate_hz: float,
        k: float = 8.0,
        max_per_technology: int = 2,
        telemetry: Telemetry = NULL,
    ):
        if not modems:
            raise ConfigurationError("at least one modem is required")
        self.modems = list(modems)
        self.sample_rate_hz = float(sample_rate_hz)
        self.k = float(k)
        self.max_per_technology = int(max_per_technology)
        self.telemetry = telemetry
        # Precompute per-modem sync references once: classify() runs
        # repeatedly (Algorithm 1 re-classifies after every
        # cancellation) and regenerating long waveforms dominates.
        self._refs: list[_Ref] = []
        for modem in self.modems:
            ref = modem.sync_reference()
            stride = max(int(modem.sync_decimation), 1)
            tpl = ref[::stride] if stride > 1 else ref
            block = modem.sync_block
            if block is not None and stride > 1:
                block = max(block // stride, 8)
            tpl_norm = float(np.sqrt(np.sum(np.abs(tpl) ** 2)))
            if tpl_norm <= 0:
                raise ConfigurationError(
                    f"{modem.name}: sync template has zero energy"
                )
            if block is None:
                offsets = [0]
            else:
                offsets = [
                    b * block for b in range(-(-len(tpl) // block))
                ]
            self._refs.append(
                _Ref(
                    modem=modem,
                    ref=ref,
                    tpl=tpl,
                    stride=stride,
                    block=block,
                    ref_energy=float(np.sum(np.abs(ref) ** 2)),
                    tpl_norm=tpl_norm,
                    offsets=offsets,
                )
            )
        # One persistent bank per (native rate, stride) group: every
        # modem in a group correlates against the *same* decimated
        # residual, so their sub-block templates share one forward FFT
        # per overlap-save segment, and the conjugate template spectra
        # (cached on the bank per FFT length) survive across segments
        # and SIC iterations. Keys are ``(ref_index, block_offset)``.
        self._groups: dict[tuple[float, int], list[int]] = {}
        for index, entry in enumerate(self._refs):
            key = (float(entry.modem.sample_rate), entry.stride)
            self._groups.setdefault(key, []).append(index)
        self._banks: dict[tuple[float, int], TemplateBank] = {}
        for key, indices in self._groups.items():
            templates = {
                (index, offset): self._refs[index].tpl[
                    offset : offset + self._refs[index].block
                ]
                if self._refs[index].block is not None
                else self._refs[index].tpl
                for index in indices
                for offset in self._refs[index].offsets
            }
            self._banks[key] = TemplateBank(templates)

    @staticmethod
    def _estimate_center(window: np.ndarray, sample_rate_hz: float) -> float:
        """Power-weighted spectral centroid of ``window`` (Hz).

        Channel-scale accuracy (a few kHz of bias from modulation
        asymmetry), which is the scale that matters: the consumer is the
        frequency-selective kill filter, whose notches span the victim's
        tone bandwidth. A phase-slope estimate against the sync
        reference would be finer but collapses when the correlation
        peak snaps to the wrong period of a periodic preamble; the
        centroid is indifferent to alignment.
        """
        if len(window) < 2:
            return 0.0
        spectrum = np.abs(np.fft.fft(window)) ** 2
        total = float(spectrum.sum())
        if total <= 0:
            return 0.0
        freqs = np.fft.fftfreq(len(window), 1.0 / sample_rate_hz)
        return float(np.sum(spectrum * freqs) / total)

    def _track(
        self,
        entry: _Ref,
        tracks: dict[tuple[int, int], np.ndarray],
        index: int,
        sig_len: int,
    ) -> np.ndarray:
        """Combine one modem's sub-block correlations into a score track.

        Replicates :func:`~repro.gateway.detection.matched_filter_track`
        exactly: coherent blocks combine non-coherently (sum of
        magnitude squares, CFO tolerance), normalized by the template
        norm.
        """
        out_len = sig_len - len(entry.tpl) + 1
        if entry.block is None:
            return np.abs(tracks[(index, 0)]) / entry.tpl_norm
        acc = np.zeros(out_len)
        for offset in entry.offsets:
            corr = np.abs(tracks[(index, offset)])
            acc += corr[offset : offset + out_len] ** 2
        return np.sqrt(acc) / entry.tpl_norm

    def _score_tracks(
        self,
        sig: np.ndarray,
        group: tuple[float, int],
        live: list[int],
    ) -> dict[int, np.ndarray]:
        """Score tracks for every live modem of one bank group.

        With the compute backend on, the per-modem sub-block magnitudes
        are accumulated *inside* the correlation engine's chunk loop
        (:func:`~repro.dsp.fastcorr.correlate_accumulate`), so the
        classify pass never materializes the per-template complex
        tracks it used to reduce immediately. Backend off keeps the
        historical ``correlate_many`` + :meth:`_track` combination.
        """
        bank = self._banks[group]
        if backend_enabled():
            specs = {
                index: TrackSpec(
                    pairs=tuple(
                        ((index, offset), offset)
                        for offset in self._refs[index].offsets
                    ),
                    out_len=len(sig) - len(self._refs[index].tpl) + 1,
                    squared=self._refs[index].block is not None,
                )
                for index in live
            }
            combined = correlate_accumulate(
                sig, bank, specs, telemetry=self.telemetry
            )
            tracks: dict[int, np.ndarray] = {}
            for index in live:
                entry = self._refs[index]
                acc = combined[index]
                if entry.block is None:
                    tracks[index] = acc / entry.tpl_norm
                else:
                    tracks[index] = np.sqrt(acc) / entry.tpl_norm
            return tracks
        keys = [
            (index, offset)
            for index in live
            for offset in self._refs[index].offsets
        ]
        raw = correlate_many(sig, bank, keys, telemetry=self.telemetry)
        return {
            index: self._track(self._refs[index], raw, index, len(sig))
            for index in live
        }

    @iq_contract("samples")
    def classify(
        self, samples: np.ndarray, rates: NativeRateCache | None = None
    ) -> list[ClassifiedSignal]:
        """Rank the transmissions present in ``samples`` by power.

        Args:
            samples: The segment (or working residual) to classify.
            rates: Optional memoized native-rate views of ``samples``
                (must wrap the same buffer). Algorithm 1 passes one so
                repeated classify/decode/kill calls in a single
                iteration resample the residual once per distinct rate.
        """
        # Candidates per registered modem, so the final list preserves
        # registration-order appends regardless of group iteration.
        per_ref: dict[int, list[ClassifiedSignal]] = {}
        for (rate, stride), indices in self._groups.items():
            if rates is not None:
                native = rates.view(rate)
            else:
                native = to_rate(samples, self.sample_rate_hz, rate)
            # Spread-spectrum references correlate at a stride (the
            # modem's fine sync absorbs the timing quantization).
            sig = native[::stride] if stride > 1 else native
            live = [
                index
                for index in indices
                if len(self._refs[index].ref) <= len(native)
            ]
            if not live:
                continue
            score_tracks = self._score_tracks(sig, (rate, stride), live)
            for index in live:
                entry = self._refs[index]
                track = score_tracks[index]
                threshold = cfar_threshold(track, self.k)
                min_dist = max(len(entry.tpl) // 2, 1)
                peaks = find_peaks_above(track, threshold, min_dist)
                # Pin the tie order (score desc, then index asc): equal
                # scores must not depend on the peak finder's return
                # order, or the engine-on/off equivalence gate would
                # pass or fail on suppression-order accidents.
                peaks = sorted(peaks, key=lambda i: (-track[i], i))
                candidates: list[ClassifiedSignal] = []
                for idx in peaks[: self.max_per_technology]:
                    start = int(idx) * entry.stride
                    window = native[start : start + len(entry.ref)]
                    if len(window) < len(entry.ref):
                        continue
                    amplitude = complex(
                        np.sum(np.conj(entry.ref) * window)
                        / entry.ref_energy
                    )
                    candidates.append(
                        ClassifiedSignal(
                            technology=entry.modem.name,
                            start=start,
                            score=float(track[idx]),
                            amplitude=amplitude,
                            center_hz=self._estimate_center(
                                window, entry.modem.sample_rate
                            ),
                        )
                    )
                per_ref[index] = candidates
        found = [
            candidate
            for index in range(len(self._refs))
            for candidate in per_ref.get(index, [])
        ]
        return sorted(found, key=lambda c: c.power, reverse=True)
