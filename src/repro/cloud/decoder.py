"""The cloud collision decoder — Algorithm 1 of the paper.

Pseudo-code being implemented (paper, Sec. 5)::

    procedure CLOUDDECODE(S)
        if S = S_i then Decode(S_i)                      # no collision
        else pick S_i | P(S_i) > P(S_j)
            if Decode(S_i) = True then
                cancel S_i from S and repeat             # SIC
            else find S_j with least power orthogonal to S_i
                if S_j in FSK or PSK: KILL-FREQUENCY(S_j), retry decode
                elif S_j in CSS: KILL-CSS(S_j), retry decode
                elif S_j in orthogonal codes: KILL-CODE(S_j), retry decode
                else find next least S_j
        if Decode(S) = False:
            S_i <- next highest powered signal, repeat

"Orthogonal" S_j means a different modulation class from S_i, so
removing it cannot take S_i with it. Two flavours are exposed:

* :class:`CloudDecoder` with ``use_kill_filters=True`` — full GalioT.
* ``use_kill_filters=False`` — the SIC-only strawman baseline used in
  Figure 3(c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..contracts import iq_contract
from ..dsp.resample import NativeRateCache, to_rate
from ..errors import ConfigurationError
from ..phy.base import Modem
from ..telemetry import NULL, Telemetry
from ..types import DecodeResult
from .classify import ClassifiedSignal, SegmentClassifier
from .kill_filters import kill_filter_for
from .sic import FrameWaveformMemo, reconstruct_and_subtract, try_decode

__all__ = ["CloudDecodeReport", "CloudDecoder"]


@dataclass
class CloudDecodeReport:
    """Output of one CLOUDDECODE run.

    Attributes:
        results: Successfully decoded frames, in decode order.
        candidates: The classifier's initial view of the segment.
        kill_invocations: How many kill-filter applications ran.
        sic_cancellations: How many reconstruct-and-subtract steps ran.
    """

    results: list[DecodeResult] = field(default_factory=list)
    candidates: list[ClassifiedSignal] = field(default_factory=list)
    kill_invocations: int = 0
    sic_cancellations: int = 0


class CloudDecoder:
    """Algorithm-1 joint decoder over a set of registered technologies.

    Args:
        modems: Registered technologies.
        sample_rate_hz: Sample rate of incoming segments.
        use_kill_filters: False disables the kill filters.
        strict_order: True makes the decoder a *classic* SIC receiver:
            it decodes strictly in decreasing power order and stops at
            the first failure (you cannot cancel what you cannot
            decode). The paper's baseline is
            ``use_kill_filters=False, strict_order=True``; full GalioT
            is ``use_kill_filters=True, strict_order=False``.
        max_iterations: Safety bound on the decode loop.
        classifier_k: CFAR factor handed to the classifier.
        sync_retries: Per-decode re-sync attempts after a CRC failure
            (see :func:`~repro.cloud.sic.try_decode`). Zero — the
            default, bit-identical to prior releases — lets one forged
            preamble shadow a real same-technology frame in the same
            segment; the hardened receive path runs with 2.
        telemetry: Metrics sink (the shared no-op by default).
    """

    def __init__(
        self,
        modems: list[Modem],
        sample_rate_hz: float,
        use_kill_filters: bool = True,
        strict_order: bool = False,
        max_iterations: int = 12,
        classifier_k: float = 8.0,
        sync_retries: int = 0,
        telemetry: Telemetry = NULL,
    ):
        if not modems:
            raise ConfigurationError("at least one modem is required")
        if sync_retries < 0:
            raise ConfigurationError("sync_retries must be >= 0")
        self.modems = {m.name: m for m in modems}
        self.sample_rate_hz = float(sample_rate_hz)
        self.use_kill_filters = use_kill_filters
        self.strict_order = strict_order
        self.max_iterations = int(max_iterations)
        self.sync_retries = int(sync_retries)
        self.classifier = SegmentClassifier(
            modems, sample_rate_hz, k=classifier_k, telemetry=telemetry
        )
        self.telemetry = telemetry

    @classmethod
    def galiot(cls, modems: list[Modem], sample_rate_hz: float, **kwargs) -> CloudDecoder:
        """Full GalioT decoder (kill filters + power-order fallback)."""
        return cls(modems, sample_rate_hz, use_kill_filters=True, strict_order=False, **kwargs)

    @classmethod
    def sic_baseline(
        cls, modems: list[Modem], sample_rate_hz: float, **kwargs
    ) -> CloudDecoder:
        """The paper's strawman: classic SIC, stop at the first failure."""
        return cls(modems, sample_rate_hz, use_kill_filters=False, strict_order=True, **kwargs)

    # -- internals --------------------------------------------------------

    def _kill(
        self,
        rates: NativeRateCache,
        victim: ClassifiedSignal,
    ) -> np.ndarray | None:
        """Apply the victim's kill filter at its native rate.

        Reads the working buffer through the shared native-rate view
        cache (every kill filter copies before mutating, so the cached
        view survives for the next victim).
        """
        modem = self.modems[victim.technology]
        try:
            kill = kill_filter_for(modem)
        except ConfigurationError:
            return None
        native = rates.view(modem.sample_rate)
        filtered = kill.apply(native, modem.sample_rate, victim)
        return to_rate(filtered, modem.sample_rate, self.sample_rate_hz)

    def _record(
        self,
        report: CloudDecodeReport,
        working: np.ndarray,
        candidate: ClassifiedSignal,
        frame,
        method: str,
        memo: FrameWaveformMemo | None = None,
    ) -> np.ndarray:
        """Store a success and cancel the frame from the working signal."""
        modem = self.modems[candidate.technology]
        residual, recon = reconstruct_and_subtract(
            working, self.sample_rate_hz, modem, frame, memo=memo
        )
        report.sic_cancellations += 1
        report.results.append(
            DecodeResult(
                technology=candidate.technology,
                payload=frame.payload,
                ok=True,
                method=method,
                power_db=float(10 * np.log10(max(candidate.power, 1e-30))),
                start=frame.start,
            )
        )
        return residual

    @staticmethod
    def _same_frame(a: DecodeResult, frame_start: int, technology: str) -> bool:
        return a.technology == technology and abs(a.start - frame_start) < 256

    def _open_candidates(
        self,
        rates: NativeRateCache,
        report: CloudDecodeReport,
        failed: list,
    ) -> tuple[list[ClassifiedSignal], list[ClassifiedSignal]]:
        """Re-classify the residual signal.

        Returns:
            ``(targets, residuals)``: fresh decode targets, and leftover
            energy of already-decoded frames. Residuals are not decoded
            again, but they remain valid *victims* for kill filters —
            imperfect SIC cancellation (CFO, clock drift) leaves residue
            that an estimation-free kill filter can still remove.
        """
        fresh = self.classifier.classify(rates.samples, rates=rates)
        targets: list[ClassifiedSignal] = []
        residuals: list[ClassifiedSignal] = []
        for cand in fresh:
            if any(
                self._same_frame(r, cand.start, cand.technology)
                for r in report.results
            ):
                residuals.append(cand)
                continue
            if any(
                cand.technology == f.technology and abs(cand.start - f.start) < 256
                for f in failed
            ):
                continue
            targets.append(cand)
        return targets, residuals

    # -- the algorithm -------------------------------------------------------

    @iq_contract("samples")
    def decode(self, samples: np.ndarray) -> CloudDecodeReport:
        """Run CLOUDDECODE over one segment."""
        with self.telemetry.span("cloud.decode"):
            report = self._decode(samples)
        self.telemetry.count("cloud.segments")
        self.telemetry.count("cloud.frames", len(report.results))
        self.telemetry.count("cloud.kill_invocations", report.kill_invocations)
        self.telemetry.count("cloud.sic_cancellations", report.sic_cancellations)
        return report

    def _decode(self, samples: np.ndarray) -> CloudDecodeReport:
        report = CloudDecodeReport()
        # One waveform memo per segment: repeated reconstructions of the
        # same decoded frame (kill-filter retries, deep SIC stacks) skip
        # the remodulate + resample step.
        memo = FrameWaveformMemo()
        working = np.asarray(samples, dtype=complex).copy()
        # One native-rate view cache per working buffer: every classify,
        # decode and kill attempt in an iteration shares the same
        # resampled views (rebuilt only when a cancellation replaces the
        # buffer), so the residual hits each modem's rate once.
        rates = NativeRateCache(working, self.sample_rate_hz)
        report.candidates = self.classifier.classify(working, rates=rates)
        failed: list[ClassifiedSignal] = []
        open_candidates = list(report.candidates)
        residuals: list[ClassifiedSignal] = []
        iterations = 0
        while open_candidates and iterations < self.max_iterations:
            iterations += 1
            open_candidates.sort(key=lambda c: c.power, reverse=True)
            strongest = open_candidates[0]
            modem = self.modems[strongest.technology]
            frame = try_decode(
                modem, working, self.sample_rate_hz, rates=rates,
                telemetry=self.telemetry, sync_retries=self.sync_retries,
            )
            if frame is not None and not any(
                self._same_frame(r, frame.start, strongest.technology)
                for r in report.results
            ):
                working = self._record(
                    report, working, strongest, frame, method="sic",
                    memo=memo,
                )
                rates = NativeRateCache(working, self.sample_rate_hz)
                # Algorithm 1 line 6: cancel and *repeat* — the residual
                # may now reveal transmissions the collision masked.
                open_candidates, residuals = self._open_candidates(
                    rates, report, failed
                )
                continue
            if frame is not None:
                # Already decoded this frame (duplicate classification).
                open_candidates.pop(0)
                continue
            recovered = False
            if self.use_kill_filters:
                # Victims of a *different* modulation class, weakest first.
                # Cancellation residue of already-decoded frames is always
                # a victim: its position is known exactly, and the kill
                # filters remove it without any channel estimate.
                decoded_victims = [
                    ClassifiedSignal(
                        technology=r.technology,
                        start=r.start,
                        score=0.0,
                        amplitude=0j,
                    )
                    for r in report.results
                ]
                victims = decoded_victims + sorted(
                    (
                        c
                        for c in open_candidates[1:] + residuals
                        if not any(
                            self._same_frame(r, c.start, c.technology)
                            for r in report.results
                        )
                    ),
                    key=lambda c: c.power,
                )
                victims = [
                    v
                    for v in victims
                    if self.modems[v.technology].modulation
                    is not modem.modulation
                ]
                for victim in victims:
                    filtered = self._kill(rates, victim)
                    if filtered is None:
                        continue
                    report.kill_invocations += 1
                    frame = try_decode(
                        modem, filtered, self.sample_rate_hz,
                        telemetry=self.telemetry,
                        sync_retries=self.sync_retries,
                    )
                    if frame is not None and any(
                        self._same_frame(r, frame.start, strongest.technology)
                        for r in report.results
                    ):
                        # The filter exposed a frame we already decoded —
                        # drop this candidate instead of recording a dupe.
                        frame = None
                        open_candidates.pop(0)
                        recovered = True
                        break
                    if frame is not None:
                        # Subtract the recovered frame from the *unfiltered*
                        # signal so the victim is still there for SIC.
                        kill_name = kill_filter_for(
                            self.modems[victim.technology]
                        ).name
                        working = self._record(
                            report, working, strongest, frame,
                            method=kill_name, memo=memo,
                        )
                        rates = NativeRateCache(working, self.sample_rate_hz)
                        open_candidates, residuals = self._open_candidates(
                            rates, report, failed
                        )
                        recovered = True
                        break
            if not recovered:
                if self.strict_order:
                    # Classic SIC: the strongest signal could not be
                    # decoded, so nothing can be cancelled — stop.
                    break
                # Give up on the strongest; move to the next (last line
                # of Algorithm 1).
                failed.append(strongest)
                open_candidates.pop(0)
        return report
