"""GalioT cloud: classification, kill filters, SIC and Algorithm 1."""

from .classify import ClassifiedSignal, SegmentClassifier
from .decoder import CloudDecodeReport, CloudDecoder
from .dispatch import Assignment, ComputeNode, Dispatcher, SlaPolicy
from .kill_filters import KillCodes, KillCss, KillFrequency, kill_filter_for
from .parallel import CloudResilience, ParallelCloudService, QuarantinedSegment
from .pipeline import CloudService, CloudStats
from .sic import ReconstructionReport, reconstruct_and_subtract, try_decode

__all__ = [
    "ClassifiedSignal",
    "SegmentClassifier",
    "Assignment",
    "ComputeNode",
    "Dispatcher",
    "SlaPolicy",
    "CloudDecodeReport",
    "CloudDecoder",
    "KillFrequency",
    "KillCss",
    "KillCodes",
    "kill_filter_for",
    "CloudService",
    "CloudStats",
    "CloudResilience",
    "ParallelCloudService",
    "QuarantinedSegment",
    "ReconstructionReport",
    "reconstruct_and_subtract",
    "try_decode",
]
