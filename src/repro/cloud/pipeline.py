"""The GalioT cloud service: decompress shipped segments, joint-decode.

Binds the wire format (:mod:`repro.gateway.compression`) to the
Algorithm-1 decoder and aggregates statistics across segments — the
"GalioT Cloud" box of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gateway.compression import CompressedSegment, SegmentCodec
from ..guard import DecodeGuard
from ..phy.base import Modem
from ..telemetry import NULL, Telemetry
from ..types import DecodeResult, Segment
from .decoder import CloudDecodeReport, CloudDecoder

__all__ = ["CloudStats", "CloudService"]


@dataclass
class CloudStats:
    """Aggregate counters across all processed segments.

    The last four fields are resilience outcomes, written by the
    parallel decode farm's fault handling (a serial, fault-free run
    leaves them at zero):

    * ``retried`` — decode attempts repeated after a decode exception;
    * ``requeued`` — submissions re-dispatched after a worker crash or
      a per-segment decode timeout;
    * ``quarantined`` — segments given up on after exhausting retries
      (poison) or requeues (persistent crash/hang);
    * ``degraded`` — decode-timeout events: a segment that overran its
      budget at least once, whether its requeue later succeeded or not.
    """

    segments: int = 0
    frames_decoded: int = 0
    by_method: dict[str, int] = field(default_factory=dict)
    by_technology: dict[str, int] = field(default_factory=dict)
    kill_invocations: int = 0
    sic_cancellations: int = 0
    retried: int = 0
    requeued: int = 0
    quarantined: int = 0
    degraded: int = 0

    def absorb(self, report: CloudDecodeReport) -> None:
        """Fold one segment's report into the totals."""
        self.segments += 1
        self.kill_invocations += report.kill_invocations
        self.sic_cancellations += report.sic_cancellations
        for result in report.results:
            self.frames_decoded += 1
            self.by_method[result.method] = (
                self.by_method.get(result.method, 0) + 1
            )
            self.by_technology[result.technology] = (
                self.by_technology.get(result.technology, 0) + 1
            )

    def merge(self, other: CloudStats) -> None:
        """Fold another stats block into this one (worker rollup).

        Merging the per-segment stats of any partition of a workload, in
        any order, yields the same totals as processing it serially.
        """
        self.segments += other.segments
        self.frames_decoded += other.frames_decoded
        self.kill_invocations += other.kill_invocations
        self.sic_cancellations += other.sic_cancellations
        self.retried += other.retried
        self.requeued += other.requeued
        self.quarantined += other.quarantined
        self.degraded += other.degraded
        for method, n in other.by_method.items():
            self.by_method[method] = self.by_method.get(method, 0) + n
        for technology, n in other.by_technology.items():
            self.by_technology[technology] = (
                self.by_technology.get(technology, 0) + n
            )


class CloudService:
    """Stateful cloud endpoint consuming shipped segments.

    Args:
        modems: Registered technologies.
        sample_rate_hz: Capture sample rate of arriving segments.
        use_kill_filters: False runs the SIC-only baseline.
        codec: Wire codec for compressed segments.
        guard: Optional :class:`~repro.guard.DecodeGuard` applied to
            every decoded frame (replay / duplicate / false-decode
            admission control). Share one instance with the gateway's
            edge decoder so edge-resolved frames inoculate the cloud.
        telemetry: Metrics sink threaded into the decoder and codec
            (the shared no-op by default).
    """

    def __init__(
        self,
        modems: list[Modem],
        sample_rate_hz: float,
        use_kill_filters: bool = True,
        strict_order: bool = False,
        codec: SegmentCodec | None = None,
        guard: DecodeGuard | None = None,
        sync_retries: int = 0,
        telemetry: Telemetry = NULL,
    ):
        self.telemetry = telemetry
        self.decoder = CloudDecoder(
            modems,
            sample_rate_hz,
            use_kill_filters=use_kill_filters,
            strict_order=strict_order,
            sync_retries=sync_retries,
            telemetry=telemetry,
        )
        self.codec = codec or SegmentCodec(telemetry=telemetry)
        if self.codec.telemetry is NULL:
            self.codec.telemetry = telemetry
        self.guard = guard
        if self.guard is not None and self.guard.telemetry is NULL:
            self.guard.telemetry = telemetry
        self.stats = CloudStats()

    def process_segment(self, segment: Segment) -> list[DecodeResult]:
        """Joint-decode one (already decompressed) segment."""
        with self.telemetry.span("cloud.pipeline"):
            report = self.decoder.decode(segment.samples)
        self.stats.absorb(report)
        # Re-base frame starts onto capture-time sample indices. The
        # decoder reports starts in the *decoding modem's native-rate*
        # samples, so each must be converted to the capture rate before
        # the segment offset (capture-rate samples) is added — adding
        # them raw misplaces every frame of a modem whose native rate
        # differs from the capture rate.
        capture_rate = self.decoder.sample_rate_hz
        results = [
            DecodeResult(
                technology=r.technology,
                payload=r.payload,
                ok=r.ok,
                method=r.method,
                power_db=r.power_db,
                start=segment.start
                + int(
                    round(
                        r.start
                        * capture_rate
                        / self.decoder.modems[r.technology].sample_rate
                    )
                ),
            )
            for r in report.results
        ]
        if self.guard is not None:
            results = self.guard.filter(results, capture_rate)
        return results

    def process_compressed(
        self, compressed: CompressedSegment
    ) -> list[DecodeResult]:
        """Decompress a wire blob, then joint-decode it."""
        return self.process_segment(self.codec.decompress(compressed))
