"""The parallel cloud decode farm: ``repro.cloud.parallel``.

The paper's cloud absorbs every detected segment from every gateway, and
Algorithm 1's cost is superlinear in collision depth — so the cloud
side, not the Pi-class front end, is the throughput bottleneck of a
deployment. :class:`ParallelCloudService` fans decompressed segments out
over a ``concurrent.futures`` pool while keeping the three properties
the serial :class:`~repro.cloud.pipeline.CloudService` guarantees:

* **Determinism.** Results are merged in *submission* order, never
  completion order, so a parallel run is result-identical to the serial
  service over the same segments (segments are independent by
  construction: each is decoded from its own sample buffer). Retries
  and requeues keep their original sequence slot, so a faulty run is
  deterministic too: same fault plan, same merged results, same
  counters.
* **Aggregated stats.** Every worker reports a per-segment
  :class:`~repro.cloud.pipeline.CloudStats` delta; the parent folds them
  with :meth:`CloudStats.merge`, so the totals equal a serial run's.
* **Telemetry rollup.** Workers record into their own sinks; the parent
  absorbs each per-segment snapshot
  (:meth:`~repro.telemetry.Telemetry.absorb_snapshot`) in sequence
  order — counters and span counts match the serial pipeline's exactly,
  wall-clock totals reflect the actual per-worker time spent.

On top of that sits the resilience layer (all off by default, zero
overhead when unused):

* **Per-segment decode timeouts** (:attr:`CloudResilience.
  decode_timeout_s`): a segment that overruns its budget is counted
  ``degraded`` and requeued; one that keeps overrunning is quarantined
  instead of wedging ``drain()`` forever.
* **Crash recovery.** A dead process-pool worker surfaces as
  ``BrokenProcessPool``, which poisons *every* in-flight future; the
  farm respawns the pool once per breakage and requeues everything that
  had not already finished. A breakage also poisons ``submit()`` itself,
  so new arrivals (e.g. from the streaming gateway's ``on_shipped``
  hook) trigger the same respawn instead of being rejected at the door.
  Thread-pool crash injection raises
  :class:`~repro.errors.InjectedCrash` and takes the same requeue path
  (minus the respawn — the pool itself is intact).
* **Retry-once-then-quarantine.** A decode exception (poison segment,
  corrupt blob, injected fault) is retried up to
  :attr:`CloudResilience.max_retries` times; a segment that still
  fails lands in :attr:`ParallelCloudService.quarantine` with its
  reason, and the pipeline moves on.

All outcomes are surfaced twice: as telemetry counters
(``cloud.parallel.retried`` / ``requeued`` / ``quarantined`` /
``degraded`` / ``timeouts`` / ``crashes`` / ``pool_respawns``) and in
:class:`CloudStats`.

Worker state (one :class:`CloudService` per worker, built once by the
pool initializer) lives in a ``threading.local``: a process-pool worker
runs tasks on its single main thread and a thread-pool worker is a
thread, so the same initializer serves both executors.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import (
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from ..errors import ConfigurationError, InjectedCrash
from ..faults import FaultPlan
from ..gateway.compression import CompressedSegment, SegmentCodec
from ..phy.base import Modem
from ..telemetry import NULL, Telemetry
from ..types import DecodeResult, DetectionEvent, Segment
from .pipeline import CloudService, CloudStats

__all__ = ["CloudResilience", "QuarantinedSegment", "ParallelCloudService"]


@dataclass(frozen=True)
class CloudResilience:
    """Fault-handling policy for the decode farm.

    Attributes:
        decode_timeout_s: Per-segment wall-clock decode budget; ``None``
            (default) waits forever, exactly like the pre-resilience
            farm.
        max_retries: Decode-exception retries before quarantine
            (retry *once* then quarantine, by default).
        max_requeues: Crash/timeout requeues before quarantine — bounds
            how long a persistently hanging segment can churn the pool.
        propagate_errors: Re-raise decode exceptions instead of
            quarantining (restores the fail-fast behaviour; crash and
            timeout handling stay active).
    """

    decode_timeout_s: float | None = None
    max_retries: int = 1
    max_requeues: int = 3
    propagate_errors: bool = False

    def __post_init__(self) -> None:
        if self.decode_timeout_s is not None and self.decode_timeout_s <= 0:
            raise ConfigurationError("decode_timeout_s must be positive")
        if self.max_retries < 0 or self.max_requeues < 0:
            raise ConfigurationError(
                "max_retries and max_requeues must be >= 0"
            )


@dataclass(frozen=True)
class QuarantinedSegment:
    """One segment the farm gave up on, with the evidence."""

    seq: int
    payload: Segment | CompressedSegment
    reason: str
    attempts: int
    requeues: int


#: Segments below this many samples are pickled to process workers: the
#: shared-memory round trip (create + copy + attach) costs two syscalls
#: and a page-table walk, which only pays for itself on buffers big
#: enough that pickle's serialize/deserialize copies dominate.
SHM_MIN_SAMPLES = 8192


@dataclass(frozen=True)
class _ShmSegment:
    """Wire descriptor for a segment whose samples live in shared memory.

    What crosses the pickle boundary instead of the I/Q buffer: the
    block name plus the metadata needed to rebuild the
    :class:`~repro.types.Segment` around a zero-copy view. The *parent*
    owns the block's lifetime — it creates, registers and unlinks; the
    worker only attaches, reads and closes. (With the default ``fork``
    start method the workers share the parent's resource tracker, so the
    attach-side registration is a set no-op and the parent's single
    unlink leaves the tracker clean.)
    """

    shm_name: str
    length: int
    dtype: str
    start: int
    sample_rate: float
    detections: list[DetectionEvent] = field(default_factory=list)


def _attach_shm_segment(
    wire: _ShmSegment,
) -> tuple[shared_memory.SharedMemory, Segment]:
    """Rebuild a :class:`~repro.types.Segment` over the shared block.

    The returned samples are a read-only, zero-copy view of the block
    (the decoder copies into its working buffer anyway, and fault
    corruption returns fresh arrays) — the caller must drop the Segment
    before closing the handle or ``close()`` raises ``BufferError``.
    """
    shm = shared_memory.SharedMemory(name=wire.shm_name)
    samples = np.ndarray(
        (wire.length,), dtype=np.dtype(wire.dtype), buffer=shm.buf
    )
    samples.flags.writeable = False
    return shm, Segment(
        start=wire.start,
        samples=samples,
        sample_rate=wire.sample_rate,
        detections=wire.detections,
    )


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a worker needs to rebuild the serial service."""

    modems: tuple[Modem, ...]
    sample_rate_hz: float
    use_kill_filters: bool
    strict_order: bool
    codec: SegmentCodec | None
    faults: FaultPlan | None = None
    is_process: bool = True


_worker = threading.local()


def _init_worker(config: _WorkerConfig) -> None:
    """Pool initializer: build one serial service per worker."""
    # A worker *is* a composition root: it lives in another process (or
    # thread) and its private sink is snapshotted back to the parent
    # after every segment, which is the rollup GL005 wants.
    telemetry = Telemetry()  # noqa: GL005
    service = CloudService(
        list(config.modems),
        config.sample_rate_hz,
        use_kill_filters=config.use_kill_filters,
        strict_order=config.strict_order,
        codec=config.codec,
        telemetry=telemetry,
    )
    # The codec crossed a pickle boundary, so identity checks against
    # the NULL singleton no longer apply — rewire it explicitly.
    service.codec.telemetry = telemetry
    _worker.service = service
    _worker.telemetry = telemetry
    _worker.faults = config.faults
    _worker.is_process = config.is_process


_WorkerResult = tuple[list[DecodeResult], CloudStats, dict[str, dict[str, Any]]]


def _run_one(
    payload: Segment | CompressedSegment | _ShmSegment,
    seq: int,
    submission: int,
) -> _WorkerResult:
    """Decode one segment in a worker; return (results, stats, telemetry).

    ``seq`` is the segment's stable sequence number (identical across
    retries), ``submission`` the retry-inclusive pool-submission counter
    — the two axes a :class:`~repro.faults.FaultPlan` keys its worker
    faults on.
    """
    shm = None
    if isinstance(payload, _ShmSegment):
        shm, payload = _attach_shm_segment(payload)
    try:
        service: CloudService = _worker.service
        telemetry: Telemetry = _worker.telemetry
        faults: FaultPlan | None = getattr(_worker, "faults", None)
        if faults is not None:
            faults.apply_in_worker(seq, submission, _worker.is_process)
            if isinstance(payload, Segment):
                payload = Segment(
                    start=payload.start,
                    samples=faults.corrupt_samples(seq, payload.samples),
                    sample_rate=payload.sample_rate,
                    detections=payload.detections,
                )
            else:
                payload = CompressedSegment(
                    blob=faults.corrupt_blob(seq, payload.blob)
                )
        service.stats = CloudStats()
        telemetry.reset()
        if isinstance(payload, CompressedSegment):
            results = service.process_compressed(payload)
        else:
            results = service.process_segment(payload)
        return results, service.stats, telemetry.snapshot()
    finally:
        if shm is not None:
            # The zero-copy view must die before the handle closes.
            del payload
            try:
                shm.close()
            except BufferError:
                pass  # a stray view keeps the mapping; GC closes it


@dataclass
class _Pending:
    """Parent-side bookkeeping for one in-flight segment.

    ``payload`` is always the caller's original segment (what retries
    re-decode and quarantine preserves); ``wire``/``shm`` are set when
    its samples were staged into a shared-memory block, in which case
    the descriptor is what crosses the pool boundary and the parent
    unlinks the block once the segment is finished or given up on.
    """

    seq: int
    payload: Segment | CompressedSegment
    future: Future
    generation: int
    attempts: int = 0
    requeues: int = 0
    timed_out: bool = False
    wire: _ShmSegment | None = None
    shm: shared_memory.SharedMemory | None = None


class ParallelCloudService:
    """Fan segments out over a worker pool; merge in submission order.

    Drop-in for the serial service at the workload level: ``submit()``
    segments (or compressed wire blobs) as they arrive — e.g. from the
    streaming gateway's ``on_shipped`` hook — then ``drain()`` for the
    merged results. :meth:`process_segments` wraps both for batch use.

    Args:
        modems: Registered technologies (pickled to process workers).
        sample_rate_hz: Capture sample rate of arriving segments.
        workers: Pool size.
        use_kill_filters: False runs the SIC-only baseline.
        strict_order: Classic-SIC decode order (see ``CloudDecoder``).
        codec: Wire codec for compressed segments.
        telemetry: Parent sink receiving the per-worker rollups.
        executor: ``"process"`` (default — real parallelism for the
            CPU-bound decode) or ``"thread"`` (cheaper startup, shared
            memory; useful for tests and I/O-bound deployments).
        faults: Optional :class:`~repro.faults.FaultPlan` shipped to
            every worker (chaos testing).
        resilience: Fault-handling policy; the default behaves like the
            pre-resilience farm for healthy workloads but quarantines
            failing segments instead of raising out of ``drain()``.
    """

    def __init__(
        self,
        modems: list[Modem],
        sample_rate_hz: float,
        workers: int = 2,
        use_kill_filters: bool = True,
        strict_order: bool = False,
        codec: SegmentCodec | None = None,
        telemetry: Telemetry = NULL,
        executor: str = "process",
        faults: FaultPlan | None = None,
        resilience: CloudResilience | None = None,
    ):
        if not modems:
            raise ConfigurationError("at least one modem is required")
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if executor not in ("process", "thread"):
            raise ConfigurationError(
                f"executor must be 'process' or 'thread', got {executor!r}"
            )
        self.telemetry = telemetry
        self.workers = int(workers)
        self.executor_kind = executor
        self.resilience = resilience if resilience is not None else CloudResilience()
        self.stats = CloudStats()
        self.quarantine: list[QuarantinedSegment] = []
        self._config = _WorkerConfig(
            modems=tuple(modems),
            sample_rate_hz=float(sample_rate_hz),
            use_kill_filters=bool(use_kill_filters),
            strict_order=bool(strict_order),
            codec=codec,
            faults=faults,
            is_process=executor == "process",
        )
        self._generation = 0
        self._seq = 0
        self._submissions = 0
        self._closed = False
        if executor == "process":
            # Start the resource tracker *before* the pool forks workers
            # so every worker inherits the parent's tracker: attach-side
            # registrations then dedupe against the parent's and the
            # single unlink here leaves nothing for trackers to clean.
            resource_tracker.ensure_running()
        self._pool = self._make_pool()
        self._pending: list[_Pending] = []

    # -- pool lifecycle ---------------------------------------------------

    def _make_pool(self):
        pool_cls = (
            ProcessPoolExecutor
            if self.executor_kind == "process"
            else ThreadPoolExecutor
        )
        return pool_cls(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self._config,),
        )

    def _respawn(self) -> None:
        """Replace a broken pool; in-flight work must be resubmitted."""
        old = self._pool
        self._generation += 1
        try:
            old.shutdown(wait=False, cancel_futures=True)
        except Exception:
            # A broken pool may refuse even shutdown — abandon it, but
            # leave a trace so leaked pools show up in telemetry.
            self.telemetry.count("cloud.parallel.shutdown_errors")
        self._pool = self._make_pool()
        self.telemetry.count("cloud.parallel.pool_respawns")

    # -- submission -------------------------------------------------------

    def _dispatch(self, item: _Pending) -> None:
        """(Re-)submit one pending item to the current pool.

        A broken process pool poisons ``submit()`` itself, not just the
        in-flight futures — without this respawn-and-resubmit, every
        segment arriving between a worker crash and the next ``drain()``
        (e.g. from the streaming gateway's ``on_shipped`` hook) would be
        rejected at the door and lost outside the requeue accounting.
        """
        try:
            item.future = self._submit(item)
        except BrokenExecutor:
            self.telemetry.count("cloud.parallel.crashes")
            self._respawn()
            item.future = self._submit(item)

    def _submit(self, item: _Pending) -> Future:
        submission = self._submissions
        self._submissions += 1
        item.generation = self._generation
        wire = item.wire if item.wire is not None else item.payload
        return self._pool.submit(_run_one, wire, item.seq, submission)

    def _stage_shm(self, item: _Pending) -> None:
        """Stage a big segment's samples into a shared-memory block.

        Process workers then receive a tiny pickled descriptor instead
        of a multi-megabyte serialized ndarray. Anything that cannot or
        should not be staged — thread pools (already zero-copy), small
        segments, compressed blobs (decompressed worker-side), or an
        exhausted ``/dev/shm`` — silently keeps the pickle path, which
        decodes identically.
        """
        if self.executor_kind != "process":
            return
        if not isinstance(item.payload, Segment):
            return
        samples = np.ascontiguousarray(item.payload.samples)
        if len(samples) < SHM_MIN_SAMPLES:
            return
        try:
            shm = shared_memory.SharedMemory(create=True, size=samples.nbytes)
        except OSError:
            self.telemetry.count("cloud.parallel.shm_fallbacks")
            return
        np.ndarray(samples.shape, dtype=samples.dtype, buffer=shm.buf)[
            :
        ] = samples
        item.shm = shm
        item.wire = _ShmSegment(
            shm_name=shm.name,
            length=len(samples),
            dtype=str(samples.dtype),
            start=item.payload.start,
            sample_rate=item.payload.sample_rate,
            detections=item.payload.detections,
        )
        self.telemetry.count("cloud.parallel.shm_segments")

    def _release_shm(self, item: _Pending) -> None:
        """Drop a finished item's shared block (parent owns the unlink)."""
        if item.shm is None:
            return
        try:
            item.shm.close()
            item.shm.unlink()
        except OSError:
            pass  # already gone (e.g. /dev/shm purged underneath us)
        item.shm = None
        item.wire = None

    def _enqueue(self, payload: Segment | CompressedSegment) -> None:
        item = _Pending(
            seq=self._seq, payload=payload, future=None, generation=self._generation
        )
        self._seq += 1
        self._stage_shm(item)
        self._dispatch(item)
        self._pending.append(item)
        self.telemetry.count("cloud.parallel.submitted")

    def submit(self, segment: Segment) -> None:
        """Queue one decompressed segment for decoding."""
        self._enqueue(segment)

    def submit_compressed(self, compressed: CompressedSegment) -> None:
        """Queue one wire blob; the worker decompresses it (so codec
        telemetry lands in the worker sink, exactly as in a serial run)."""
        self._enqueue(compressed)

    def submit_future(
        self, payload: Segment | CompressedSegment
    ) -> Future:
        """Out-of-band decode: submit one segment, get its Future back.

        The per-segment handle the asyncio ingestion tier
        (:mod:`repro.service`) is built on: the caller awaits each
        segment individually (``asyncio.wrap_future``) instead of
        batching through :meth:`drain`, so completions can be observed
        — and latencies measured — as they happen. The future resolves
        to the worker's raw ``(results, stats, telemetry_snapshot)``
        triple; :meth:`absorb_result` folds one into the parent's
        aggregates (call it in a deterministic order for reproducible
        rollups).

        Differences from the :meth:`submit`/:meth:`drain` path: the
        segment does not participate in :meth:`drain`'s merge or its
        retry/requeue bookkeeping — error policy belongs to the caller
        (the service retries then quarantines at its own layer). A
        broken pool is still respawned on submission, and a staged
        shared-memory block is released when the future settles,
        whatever the outcome.
        """
        item = _Pending(
            seq=self._seq,
            payload=payload,
            future=None,
            generation=self._generation,
        )
        self._seq += 1
        self._stage_shm(item)
        self._dispatch(item)
        if item.shm is not None:
            # The parent owns the unlink; the callback fires on
            # completion, cancellation and error alike.
            item.future.add_done_callback(
                lambda _f, it=item: self._release_shm(it)
            )
        self.telemetry.count("cloud.parallel.submitted")
        return item.future

    def absorb_result(self, result: _WorkerResult) -> list[DecodeResult]:
        """Fold one :meth:`submit_future` result into stats/telemetry.

        Returns the decode results. Callers that care about
        reproducible aggregates must absorb results in a deterministic
        order (e.g. segment-sequence order), exactly like
        :meth:`drain` does.
        """
        results, stats, snapshot = result
        self.stats.merge(stats)
        self.telemetry.absorb_snapshot(snapshot)
        return results

    # -- collection -------------------------------------------------------

    def drain(self) -> list[DecodeResult]:
        """Wait for every outstanding segment; merge in sequence order.

        Returns the concatenated decode results. Stats and telemetry
        rollups happen here, in segment-sequence order, so repeated runs
        over the same segments produce identical aggregates regardless
        of worker scheduling — with or without injected faults. Crashed
        or timed-out submissions are requeued (bounded), failing decodes
        retried then quarantined; ``drain()`` itself only raises when
        :attr:`CloudResilience.propagate_errors` is set.
        """
        pending, self._pending = self._pending, []
        queue = deque(pending)
        done: dict[int, _WorkerResult] = {}
        try:
            self._drain_queue(queue, done)
        except BaseException:
            # The propagate_errors escape hatch (or a KeyboardInterrupt)
            # must not leak /dev/shm blocks of the abandoned queue.
            for item in queue:
                self._release_shm(item)
            raise
        merged: list[DecodeResult] = []
        for seq in sorted(done):
            results, stats, snapshot = done[seq]
            merged.extend(results)
            self.stats.merge(stats)
            self.telemetry.absorb_snapshot(snapshot)
        self.telemetry.count("cloud.parallel.drained", len(done))
        return merged

    def _drain_queue(
        self, queue: deque[_Pending], done: dict[int, _WorkerResult]
    ) -> None:
        with self.telemetry.span("cloud.parallel.drain"):
            while queue:
                item = queue.popleft()
                try:
                    done[item.seq] = item.future.result(
                        timeout=self.resilience.decode_timeout_s
                    )
                    self._release_shm(item)
                except FutureTimeoutError:
                    item.future.cancel()
                    item.timed_out = True
                    self.stats.degraded += 1
                    self.telemetry.count("cloud.parallel.timeouts")
                    self.telemetry.count("cloud.parallel.degraded")
                    self._requeue(item, queue, reason="decode timeout")
                except (BrokenExecutor, InjectedCrash) as exc:
                    self.telemetry.count("cloud.parallel.crashes")
                    if (
                        isinstance(exc, BrokenExecutor)
                        and item.generation == self._generation
                    ):
                        self._respawn()
                    self._requeue(item, queue, reason=f"worker crash: {exc!r}")
                except Exception as exc:
                    if self.resilience.propagate_errors:
                        self._release_shm(item)
                        raise
                    if item.attempts < self.resilience.max_retries:
                        item.attempts += 1
                        self.stats.retried += 1
                        self.telemetry.count("cloud.parallel.retried")
                        self._dispatch(item)
                        queue.append(item)
                    else:
                        self._quarantine(item, f"decode failure: {exc!r}")
                except BaseException:
                    # Not a handled fault class (KeyboardInterrupt, ...):
                    # release the popped item; drain() sweeps the rest.
                    self._release_shm(item)
                    raise

    def _requeue(self, item: _Pending, queue: deque, reason: str) -> None:
        """Give a crashed/timed-out submission another trip, bounded."""
        if item.requeues < self.resilience.max_requeues:
            item.requeues += 1
            self.stats.requeued += 1
            self.telemetry.count("cloud.parallel.requeued")
            self._dispatch(item)
            queue.append(item)
        else:
            self._quarantine(item, reason)

    def _quarantine(self, item: _Pending, reason: str) -> None:
        self._release_shm(item)
        self.quarantine.append(
            QuarantinedSegment(
                seq=item.seq,
                payload=item.payload,
                reason=reason,
                attempts=item.attempts,
                requeues=item.requeues,
            )
        )
        self.stats.quarantined += 1
        self.telemetry.count("cloud.parallel.quarantined")

    def process_segments(self, segments: list[Segment]) -> list[DecodeResult]:
        """Batch convenience: submit every segment, then drain."""
        for segment in segments:
            self.submit(segment)
        return self.drain()

    def process_compressed_batch(
        self, blobs: list[CompressedSegment]
    ) -> list[DecodeResult]:
        """Batch convenience for wire blobs."""
        for blob in blobs:
            self.submit_compressed(blob)
        return self.drain()

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down (outstanding work completes first).

        Idempotent and exception-safe: double-``close()``, ``close()``
        after a worker crash, and ``__exit__`` on an error path are all
        no-ops or absorbed (counted as ``cloud.parallel.close_errors``).
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._pool.shutdown(wait=True)
        except Exception:
            self.telemetry.count("cloud.parallel.close_errors")
        # Undrained submissions' shared blocks die with the farm (the
        # shutdown above waited for any worker still reading them).
        for item in self._pending:
            self._release_shm(item)

    def __enter__(self) -> ParallelCloudService:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
