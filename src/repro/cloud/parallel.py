"""The parallel cloud decode farm: ``repro.cloud.parallel``.

The paper's cloud absorbs every detected segment from every gateway, and
Algorithm 1's cost is superlinear in collision depth — so the cloud
side, not the Pi-class front end, is the throughput bottleneck of a
deployment. :class:`ParallelCloudService` fans decompressed segments out
over a ``concurrent.futures`` pool while keeping the three properties
the serial :class:`~repro.cloud.pipeline.CloudService` guarantees:

* **Determinism.** Results are merged in *submission* order, never
  completion order, so a parallel run is result-identical to the serial
  service over the same segments (segments are independent by
  construction: each is decoded from its own sample buffer).
* **Aggregated stats.** Every worker reports a per-segment
  :class:`~repro.cloud.pipeline.CloudStats` delta; the parent folds them
  with :meth:`CloudStats.merge`, so the totals equal a serial run's.
* **Telemetry rollup.** Workers record into their own sinks; the parent
  absorbs each per-segment snapshot
  (:meth:`~repro.telemetry.Telemetry.absorb_snapshot`) in submission
  order — counters and span counts match the serial pipeline's exactly,
  wall-clock totals reflect the actual per-worker time spent.

Worker state (one :class:`CloudService` per worker, built once by the
pool initializer) lives in a ``threading.local``: a process-pool worker
runs tasks on its single main thread and a thread-pool worker is a
thread, so the same initializer serves both executors.
"""

from __future__ import annotations

import threading
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError
from ..gateway.compression import CompressedSegment, SegmentCodec
from ..phy.base import Modem
from ..telemetry import NULL, Telemetry
from ..types import DecodeResult, Segment
from .pipeline import CloudService, CloudStats

__all__ = ["ParallelCloudService"]


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a worker needs to rebuild the serial service."""

    modems: tuple[Modem, ...]
    sample_rate_hz: float
    use_kill_filters: bool
    strict_order: bool
    codec: SegmentCodec | None


_worker = threading.local()


def _init_worker(config: _WorkerConfig) -> None:
    """Pool initializer: build one serial service per worker."""
    # A worker *is* a composition root: it lives in another process (or
    # thread) and its private sink is snapshotted back to the parent
    # after every segment, which is the rollup GL005 wants.
    telemetry = Telemetry()  # noqa: GL005
    service = CloudService(
        list(config.modems),
        config.sample_rate_hz,
        use_kill_filters=config.use_kill_filters,
        strict_order=config.strict_order,
        codec=config.codec,
        telemetry=telemetry,
    )
    # The codec crossed a pickle boundary, so identity checks against
    # the NULL singleton no longer apply — rewire it explicitly.
    service.codec.telemetry = telemetry
    _worker.service = service
    _worker.telemetry = telemetry


_WorkerResult = tuple[list[DecodeResult], CloudStats, dict[str, dict[str, Any]]]


def _run_one(segment: Segment | CompressedSegment) -> _WorkerResult:
    """Decode one segment in a worker; return (results, stats, telemetry)."""
    service: CloudService = _worker.service
    telemetry: Telemetry = _worker.telemetry
    service.stats = CloudStats()
    telemetry.reset()
    if isinstance(segment, CompressedSegment):
        results = service.process_compressed(segment)
    else:
        results = service.process_segment(segment)
    return results, service.stats, telemetry.snapshot()


class ParallelCloudService:
    """Fan segments out over a worker pool; merge in submission order.

    Drop-in for the serial service at the workload level: ``submit()``
    segments (or compressed wire blobs) as they arrive — e.g. from the
    streaming gateway's ``on_shipped`` hook — then ``drain()`` for the
    merged results. :meth:`process_segments` wraps both for batch use.

    Args:
        modems: Registered technologies (pickled to process workers).
        sample_rate_hz: Capture sample rate of arriving segments.
        workers: Pool size.
        use_kill_filters: False runs the SIC-only baseline.
        strict_order: Classic-SIC decode order (see ``CloudDecoder``).
        codec: Wire codec for compressed segments.
        telemetry: Parent sink receiving the per-worker rollups.
        executor: ``"process"`` (default — real parallelism for the
            CPU-bound decode) or ``"thread"`` (cheaper startup, shared
            memory; useful for tests and I/O-bound deployments).
    """

    def __init__(
        self,
        modems: list[Modem],
        sample_rate_hz: float,
        workers: int = 2,
        use_kill_filters: bool = True,
        strict_order: bool = False,
        codec: SegmentCodec | None = None,
        telemetry: Telemetry = NULL,
        executor: str = "process",
    ):
        if not modems:
            raise ConfigurationError("at least one modem is required")
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if executor not in ("process", "thread"):
            raise ConfigurationError(
                f"executor must be 'process' or 'thread', got {executor!r}"
            )
        self.telemetry = telemetry
        self.workers = int(workers)
        self.executor_kind = executor
        self.stats = CloudStats()
        config = _WorkerConfig(
            modems=tuple(modems),
            sample_rate_hz=float(sample_rate_hz),
            use_kill_filters=bool(use_kill_filters),
            strict_order=bool(strict_order),
            codec=codec,
        )
        pool_cls = (
            ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
        )
        self._pool = pool_cls(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(config,),
        )
        self._pending: list[Future[_WorkerResult]] = []

    # -- submission -------------------------------------------------------

    def submit(self, segment: Segment) -> None:
        """Queue one decompressed segment for decoding."""
        self._pending.append(self._pool.submit(_run_one, segment))
        self.telemetry.count("cloud.parallel.submitted")

    def submit_compressed(self, compressed: CompressedSegment) -> None:
        """Queue one wire blob; the worker decompresses it (so codec
        telemetry lands in the worker sink, exactly as in a serial run)."""
        self._pending.append(self._pool.submit(_run_one, compressed))
        self.telemetry.count("cloud.parallel.submitted")

    # -- collection -------------------------------------------------------

    def drain(self) -> list[DecodeResult]:
        """Wait for every outstanding segment; merge in submission order.

        Returns the concatenated decode results. Stats and telemetry
        rollups happen here, also in submission order, so repeated runs
        over the same segments produce identical aggregates regardless
        of worker scheduling.
        """
        pending, self._pending = self._pending, []
        merged: list[DecodeResult] = []
        with self.telemetry.span("cloud.parallel.drain"):
            for future in pending:
                results, stats, snapshot = future.result()
                merged.extend(results)
                self.stats.merge(stats)
                self.telemetry.absorb_snapshot(snapshot)
        self.telemetry.count("cloud.parallel.drained", len(pending))
        return merged

    def process_segments(self, segments: list[Segment]) -> list[DecodeResult]:
        """Batch convenience: submit every segment, then drain."""
        for segment in segments:
            self.submit(segment)
        return self.drain()

    def process_compressed_batch(
        self, blobs: list[CompressedSegment]
    ) -> list[DecodeResult]:
        """Batch convenience for wire blobs."""
        for blob in blobs:
            self.submit_compressed(blob)
        return self.drain()

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down (outstanding work completes first)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> ParallelCloudService:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
