"""SLA-aware edge/cloud dispatch (paper Sec. 4, "Edge vs. the Cloud").

The paper's implementation ships a segment to the cloud only when edge
decoding fails, and leaves as future work "factoring in SLAs to abide by
quality-of-service requirements for different technologies and ensuring
load-balancing between multiple edge computing nodes vs. the cloud".
This module implements that future-work dispatcher as a discrete model:

* :class:`ComputeNode` — an edge box or the cloud: a FIFO processor with
  a service rate (segment-seconds of I/Q per wall-clock second) and a
  network round-trip;
* :class:`SlaPolicy` — per-technology decode deadlines (a Z-Wave lock
  command needs an answer in tens of ms; a LoRa sensor reading can wait);
* :class:`Dispatcher` — earliest-completion-time assignment under the
  deadline: prefer the cheapest node that still meets the segment's SLA,
  fall back to the fastest completion when none can.

The model is deliberately queue-theoretic (no I/Q flows through it); the
decode pipeline itself lives in :mod:`repro.cloud.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..types import Segment

__all__ = ["ComputeNode", "SlaPolicy", "Assignment", "Dispatcher"]


@dataclass
class ComputeNode:
    """One place a segment can be decoded.

    Attributes:
        name: Identifier ("edge-0", "cloud").
        speed: Processing speed as a multiple of real time — a node with
            ``speed=4`` decodes one second of I/Q in 0.25 s.
        rtt_s: Network round trip to reach the node and return results.
        cost: Abstract per-second-of-IQ cost (cloud compute is cheap at
            scale, edge boxes are free but scarce — model as you like).
    """

    name: str
    speed: float
    rtt_s: float = 0.0
    cost: float = 0.0
    _busy_until: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ConfigurationError("speed must be positive")
        if self.rtt_s < 0:
            raise ConfigurationError("rtt_s must be >= 0")

    def completion_time(self, duration_s: float, at_time: float) -> float:
        """When a segment of ``duration_s`` submitted at ``at_time``
        would finish on this node (FIFO queue + service + RTT)."""
        start = max(at_time, self._busy_until)
        return start + duration_s / self.speed + self.rtt_s

    def commit(self, duration_s: float, at_time: float) -> float:
        """Enqueue the work; returns the completion time."""
        start = max(at_time, self._busy_until)
        done = start + duration_s / self.speed
        self._busy_until = done
        return done + self.rtt_s


@dataclass(frozen=True)
class SlaPolicy:
    """Per-technology decode deadlines in seconds."""

    deadlines_s: dict[str, float]
    default_s: float = 1.0

    def deadline(self, technology: str | None) -> float:
        """Deadline for a segment whose (suspected) technology is given.

        Unknown or unclassified segments get the *strictest* deadline of
        any registered technology — the gateway does not know what is
        inside a collision, so it must assume the most latency-critical
        case.
        """
        if technology is None:
            if not self.deadlines_s:
                return self.default_s
            return min(self.deadlines_s.values())
        return self.deadlines_s.get(technology, self.default_s)


@dataclass(frozen=True)
class Assignment:
    """Outcome of dispatching one segment.

    ``service_s`` is the wall-clock the node itself spends on the
    segment (I/Q duration divided by node speed) — it excludes FIFO
    queue wait and network RTT, which belong to latency accounting,
    not node load.
    """

    node: str
    submitted_at: float
    completes_at: float
    deadline_at: float
    service_s: float = 0.0

    @property
    def meets_sla(self) -> bool:
        """Whether the decode lands inside its deadline."""
        return self.completes_at <= self.deadline_at


class Dispatcher:
    """Greedy SLA-aware segment placement over a set of compute nodes.

    Args:
        nodes: Available nodes (edges + cloud), in preference order for
            cost tie-breaks.
        policy: Deadlines per technology.
    """

    def __init__(self, nodes: list[ComputeNode], policy: SlaPolicy):
        if not nodes:
            raise ConfigurationError("at least one compute node is required")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError("node names must be unique")
        self.nodes = list(nodes)
        self.policy = policy
        self.assignments: list[Assignment] = []

    def dispatch(
        self,
        segment: Segment,
        at_time: float,
        technology_hint: str | None = None,
    ) -> Assignment:
        """Place one segment.

        Picks the cheapest node whose completion meets the SLA; when no
        node can, picks the earliest completion (degraded but best
        effort, recorded as an SLA miss).
        """
        duration = segment.duration
        deadline = at_time + self.policy.deadline(technology_hint)
        feasible = [
            n
            for n in self.nodes
            if n.completion_time(duration, at_time) <= deadline
        ]
        if feasible:
            chosen = min(
                feasible,
                key=lambda n: (n.cost, n.completion_time(duration, at_time)),
            )
        else:
            chosen = min(
                self.nodes, key=lambda n: n.completion_time(duration, at_time)
            )
        done = chosen.commit(duration, at_time)
        assignment = Assignment(
            node=chosen.name,
            submitted_at=at_time,
            completes_at=done,
            deadline_at=deadline,
            service_s=duration / chosen.speed,
        )
        self.assignments.append(assignment)
        return assignment

    @property
    def sla_miss_rate(self) -> float:
        """Fraction of dispatched segments that missed their deadline."""
        if not self.assignments:
            return 0.0
        misses = sum(1 for a in self.assignments if not a.meets_sla)
        return misses / len(self.assignments)

    def load(self, node_name: str) -> float:
        """Total service seconds committed to one node.

        Sums only the time the node actually spends decoding — queue
        wait and RTT are excluded, so two queued segments on one node
        load it by exactly the sum of their service times.
        """
        return sum(
            a.service_s for a in self.assignments if a.node == node_name
        )
