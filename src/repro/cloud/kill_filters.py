"""The "kill" filters of Sec. 5 — one per modulation class.

Each filter removes (kills) one technology's contribution from a
collision so the *other* technologies become decodable; the killed
technology itself is recovered afterwards by SIC. Dispatch is purely on
the modulation class of the technology to kill:

* :class:`KillFrequency` — FSK/PSK. Those modulations pile their energy
  onto a handful of narrow tones (FSK: carrier ± deviation; PSK: a
  narrow band at the carrier). Brick-wall-notching the tone bands wipes
  the signal while costing a co-channel spread-spectrum signal only the
  notched fraction of its band.
* :class:`KillCss` — LoRa-class CSS. Multiplying by the conjugate chirp
  per symbol window turns every chirp into a tone; nulling the dominant
  FFT bin(s) per window and re-chirping surgically removes the LoRa
  signal, leaving other signals untouched except for ~2/N of their
  energy per symbol.
* :class:`KillCodes` — DSSS. Each 32-chip symbol of the detected code
  sequence is projected out (per-symbol least-squares reconstruction of
  the spread waveform, subtracted in the time domain).

All filters implement ``apply(samples, sample_rate_hz, target) -> np.ndarray`` where
``target`` is the classifier's :class:`~repro.cloud.classify.ClassifiedSignal`
for the technology to remove, with sample indices at rate ``sample_rate_hz``.
"""

from __future__ import annotations

import numpy as np

from ..contracts import iq_contract
from ..dsp.backend import backend_enabled, blocked_ls_subtract
from ..dsp.chirp import base_downchirp, base_upchirp
from ..dsp.filters import fft_notch
from ..errors import ConfigurationError
from ..phy.base import Modem, ModulationClass
from ..phy.fsk import fsk_modulate  # noqa: F401  (re-exported for tests)
from .classify import ClassifiedSignal

__all__ = [
    "KillFrequency",
    "KillCss",
    "KillCodes",
    "kill_filter_for",
]


class KillFrequency:
    """Notch out the tone bands of an FSK (or the band of a PSK) signal.

    Args:
        modem: The technology to kill (defines tones and widths).
        width_factor: Half-width of each notch as a fraction of the
            modem's bit rate.
    """

    name = "kill-frequency"

    def __init__(self, modem: Modem, width_factor: float = 0.8):
        if modem.modulation not in (ModulationClass.FSK, ModulationClass.PSK):
            raise ConfigurationError(
                "KillFrequency applies to FSK/PSK technologies only"
            )
        self.modem = modem
        self.width_factor = float(width_factor)

    def bands(self, center_hz: float = 0.0) -> list[tuple[float, float]]:
        """The frequency bands this filter notches."""
        rate = self.modem.bit_rate
        width = self.width_factor * rate
        if self.modem.modulation is ModulationClass.FSK:
            deviation = getattr(self.modem, "_deviation", None)
            if deviation is None:
                deviation = self.modem.bandwidth / 2
            # Cap the half-width at the deviation: a notch wider
            # than the tone spacing stops being surgical and swallows a
            # co-channel spread-spectrum bystander along with the FSK.
            width = min(width, deviation)
            return [
                (center_hz - deviation - width, center_hz - deviation + width),
                (center_hz + deviation - width, center_hz + deviation + width),
            ]
        # PSK: energy concentrated in one band at the carrier.
        half = max(self.modem.bandwidth / 2, width)
        return [(center_hz - half, center_hz + half)]

    @iq_contract("samples")
    def apply(
        self, samples: np.ndarray, sample_rate_hz: float, target: ClassifiedSignal | None = None
    ) -> np.ndarray:
        """Notch the target's tone bands out of ``samples``.

        The notches are centred on ``target.center_hz`` (the
        classifier's carrier-offset estimate), so a victim sitting off
        baseband — a neighbouring channel, a large CFO — is removed
        where it actually is. With no target the baseband assumption
        applies.
        """
        center_hz = float(target.center_hz) if target is not None else 0.0
        return fft_notch(samples, sample_rate_hz, self.bands(center_hz))


class KillCss:
    """Dechirp-null-rechirp removal of a LoRa-class CSS signal.

    The filter needs the LoRa frame's start (from the classifier) so its
    processing windows align with the interferer's symbol boundaries.
    Preamble/data windows are dechirped with the downchirp; the 2.25-
    symbol SFD is dechirped with the upchirp. In every window the
    dominant FFT bin — wherever it is, so no demodulation is required —
    is nulled together with ``guard`` neighbours and its wrap-around
    alias, then the window is re-chirped.

    Args:
        modem: The LoRa modem describing sf/bw/oversampling/frame shape.
        guard: Bins nulled on each side of the dominant bin.
    """

    name = "kill-css"

    def __init__(self, modem: Modem, guard: int = 2):
        if modem.modulation is not ModulationClass.CSS:
            raise ConfigurationError("KillCss applies to CSS technologies only")
        self.modem = modem
        self.guard = int(guard)

    def _null_window(self, window: np.ndarray, ref: np.ndarray) -> np.ndarray:
        """Dechirp one symbol window, null its tone(s), re-chirp.

        When the processing grid is misaligned with the interferer's
        symbol boundaries (the classifier's start estimate is only
        sample-accurate), each window holds *two* tone segments — so the
        two strongest peaks are nulled, each with its wrap-around alias.
        """
        tone = window * ref
        spectrum = np.fft.fft(tone)
        n = len(spectrum)
        n_chips = 1 << self.modem.sf
        magnitude = np.abs(spectrum)
        for _ in range(2):
            peak = int(np.argmax(magnitude))
            for base in (peak, (peak - n_chips) % n, (peak + n_chips) % n):
                for off in range(-self.guard, self.guard + 1):
                    idx = (base + off) % n
                    spectrum[idx] = 0
                    magnitude[idx] = 0
        return np.fft.ifft(spectrum) * np.conj(ref)

    @iq_contract("samples")
    def apply(
        self, samples: np.ndarray, sample_rate_hz: float, target: ClassifiedSignal
    ) -> np.ndarray:
        """Remove the CSS signal starting near ``target.start``.

        ``target.start`` must be expressed at rate ``sample_rate_hz`` and ``sample_rate_hz`` must
        equal the modem's native rate (the cloud pipeline arranges this).
        """
        if abs(sample_rate_hz - self.modem.sample_rate) > 1e-6 * sample_rate_hz:
            raise ConfigurationError(
                "KillCss must run at the CSS modem's native sample rate"
            )
        out = samples.copy()
        n_sym = self.modem.samples_per_symbol
        down = base_downchirp(self.modem.sf, self.modem.oversample)
        up = base_upchirp(self.modem.sf, self.modem.oversample)
        start = max(int(target.start), 0)
        # Frame layout: preamble + 2 sync (upchirps), 2.25 SFD downchirps,
        # then data upchirps until the end of the segment.
        n_up_head = self.modem.preamble_len + 2
        sfd_start = start + n_up_head * n_sym
        sfd_end = sfd_start + n_sym * 9 // 4
        pos = start
        while pos + n_sym <= len(out):
            if sfd_start <= pos < sfd_end:
                ref = up
            else:
                ref = down
            out[pos : pos + n_sym] = self._null_window(
                out[pos : pos + n_sym], ref
            )
            pos += n_sym
        # The partial quarter-SFD symbol and any trailing fraction are
        # left untouched; they carry <1 symbol of residual energy.
        return out


class KillCodes:
    """Project out a DSSS signal by reconstructing its chip stream.

    The received segment is chip-sliced from the detected frame start,
    each 32-chip block is snapped to the nearest code sequence (the
    "apply the well-known orthogonal code" step — hard decisions are
    dominated by the signal being killed), and the *continuous* waveform
    of that chip stream is regenerated and subtracted with per-block
    least-squares gains. Rebuilding one continuous waveform matters:
    O-QPSK half-sine pulses straddle symbol boundaries, so per-window
    subtraction would leave a comb of edge residuals.

    Args:
        modem: The DSSS modem (defines chip rate, pulse and codes).
        block_s: Gain-fit block length in seconds.
    """

    name = "kill-codes"

    def __init__(self, modem: Modem, block_s: float = 0.25e-3):
        if modem.modulation is not ModulationClass.DSSS:
            raise ConfigurationError("KillCodes applies to DSSS technologies only")
        self.modem = modem
        self.block_s = float(block_s)

    @iq_contract("samples")
    def apply(
        self, samples: np.ndarray, sample_rate_hz: float, target: ClassifiedSignal
    ) -> np.ndarray:
        """Remove the DSSS signal starting near ``target.start``."""
        if abs(sample_rate_hz - self.modem.sample_rate) > 1e-6 * sample_rate_hz:
            raise ConfigurationError(
                "KillCodes must run at the DSSS modem's native sample rate"
            )
        from ..phy.dsss import chips_to_oqpsk, despread_chips, oqpsk_to_chips, spread_symbols

        sps = self.modem.sps
        start = max(int(target.start), 0)
        available = len(samples) - start - sps  # keep the Q-rail tail in range
        n_symbols = available // (32 * sps)
        if n_symbols < 1:
            return samples.copy()
        n_chips = n_symbols * 32
        region = np.asarray(samples[start : start + n_chips * sps + sps])
        # Phase-align before hard chip decisions (O-QPSK is coherent):
        # try a bank of rotations and keep the one whose despread
        # distances are smallest.
        probe_chips = min(n_chips, 128)
        best_phi = 0.0
        best_dist = None
        for k in range(16):
            phi = k * 2 * np.pi / 16
            c = oqpsk_to_chips(region * np.exp(-1j * phi), probe_chips, sps)
            _, dists = despread_chips(c)
            total = int(dists.sum())
            if best_dist is None or total < best_dist:
                best_dist = total
                best_phi = phi
        aligned = region * np.exp(-1j * best_phi)
        chips = oqpsk_to_chips(aligned, n_chips, sps)
        symbols, _ = despread_chips(chips)
        clean_chips = spread_symbols(symbols)
        wave = chips_to_oqpsk(clean_chips, sps) * np.exp(1j * best_phi)
        # Per-block LS subtraction of the reconstructed stream.
        out = samples.copy()
        block = max(int(self.block_s * sample_rate_hz), 64)
        stop = min(start + len(wave), len(out))
        ref = wave[: stop - start]
        if backend_enabled():
            fitted, _gain = blocked_ls_subtract(ref, out[start:stop], block)
            out[start:stop] = fitted
            return out
        for pos in range(0, len(ref), block):
            r = ref[pos : pos + block]
            x = out[start + pos : start + pos + len(r)]
            energy = float(np.sum(np.abs(r) ** 2))
            if energy <= 0:
                continue
            gain = np.sum(np.conj(r) * x) / energy
            out[start + pos : start + pos + len(r)] = x - gain * r
        return out


def kill_filter_for(modem: Modem) -> KillFrequency | KillCss | KillCodes:
    """Pick the kill filter class for a technology's modulation."""
    if modem.modulation in (ModulationClass.FSK, ModulationClass.PSK):
        return KillFrequency(modem)
    if modem.modulation is ModulationClass.CSS:
        return KillCss(modem)
    if modem.modulation is ModulationClass.DSSS:
        return KillCodes(modem)
    raise ConfigurationError(
        f"no kill filter for modulation {modem.modulation.value}"
    )
