"""Filter design and application.

Everything here is deliberately simple, deterministic DSP: windowed-sinc
FIR design for channelization, a Gaussian pulse for GFSK shaping, a
half-sine pulse for O-QPSK, moving-average smoothing for energy detection,
and FFT-domain masks (notch / bandpass) that the cloud kill filters build
on.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from ..errors import ConfigurationError

__all__ = [
    "design_lowpass_fir",
    "fir_filter",
    "gaussian_pulse",
    "half_sine_pulse",
    "moving_average",
    "fft_notch",
    "fft_bandpass",
    "frequency_shift",
]


def design_lowpass_fir(
    num_taps: int, cutoff_hz: float, sample_rate_hz: float, window: str = "hamming"
) -> np.ndarray:
    """Windowed-sinc linear-phase lowpass FIR.

    Args:
        num_taps: Filter length (odd lengths give integer group delay).
        cutoff_hz: One-sided cutoff frequency.
        sample_rate_hz: Sample rate.
        window: Any window name accepted by scipy.

    Raises:
        ConfigurationError: if the cutoff is not inside (0, sample_rate_hz/2).
    """
    if not 0 < cutoff_hz < sample_rate_hz / 2:
        raise ConfigurationError("cutoff must be inside (0, sample_rate_hz/2)")
    if num_taps < 3:
        raise ConfigurationError("num_taps must be >= 3")
    return sp_signal.firwin(num_taps, cutoff_hz, fs=sample_rate_hz, window=window)


def fir_filter(x: np.ndarray, taps: np.ndarray, mode: str = "same") -> np.ndarray:
    """Apply an FIR filter via FFT convolution."""
    return sp_signal.fftconvolve(x, taps, mode=mode)


def gaussian_pulse(bt: float, sps: int, span: int = 4) -> np.ndarray:
    """Gaussian frequency-shaping pulse for GFSK.

    Args:
        bt: Bandwidth-time product (0.5 for BLE/802.15.4-FSK).
        sps: Samples per symbol.
        span: Pulse length in symbols (total taps = span * sps + 1).

    Returns:
        Pulse normalized so its sum is 1 (it shapes a +-1 NRZ frequency
        waveform; unit sum preserves the total phase advance per bit).
    """
    if bt <= 0:
        raise ConfigurationError("bt must be positive")
    if sps < 1:
        raise ConfigurationError("sps must be >= 1")
    t = np.arange(-span * sps / 2, span * sps / 2 + 1) / sps
    alpha = np.sqrt(np.log(2) / 2) / bt
    pulse = (np.sqrt(np.pi) / alpha) * np.exp(-((np.pi * t / alpha) ** 2))
    return pulse / pulse.sum()


def half_sine_pulse(sps: int) -> np.ndarray:
    """Half-sine chip pulse used by 802.15.4 O-QPSK."""
    if sps < 1:
        raise ConfigurationError("sps must be >= 1")
    return np.sin(np.pi * np.arange(sps) / sps) if sps > 1 else np.ones(1)


def moving_average(x: np.ndarray, n: int) -> np.ndarray:
    """Length-preserving moving average (same-mode convolution)."""
    if n < 1:
        raise ConfigurationError("window length must be >= 1")
    kernel = np.ones(n) / n
    return np.convolve(x, kernel, mode="same")


def _band_mask(n: int, sample_rate_hz: float, bands: list[tuple[float, float]]) -> np.ndarray:
    """Boolean FFT-bin mask that is True inside any of ``bands``.

    Bands are (low, high) in Hz and may be negative (complex baseband).
    """
    freqs = np.fft.fftfreq(n, d=1.0 / sample_rate_hz)
    mask = np.zeros(n, dtype=bool)
    for low, high in bands:
        if high < low:
            low, high = high, low
        mask |= (freqs >= low) & (freqs <= high)
    return mask


def fft_notch(
    x: np.ndarray, sample_rate_hz: float, bands: list[tuple[float, float]]
) -> np.ndarray:
    """Zero the FFT bins falling inside ``bands`` (brick-wall notch).

    This is the primitive behind KILL-FREQUENCY: FSK concentrates its
    energy at a handful of tones, so zeroing narrow bands around those
    tones removes the FSK signal while barely touching a co-channel
    spread-spectrum signal.
    """
    spectrum = np.fft.fft(x)
    spectrum[_band_mask(len(x), sample_rate_hz, bands)] = 0
    return np.fft.ifft(spectrum)


def fft_bandpass(x: np.ndarray, sample_rate_hz: float, band: tuple[float, float]) -> np.ndarray:
    """Keep only the FFT bins inside ``band`` (brick-wall bandpass)."""
    spectrum = np.fft.fft(x)
    spectrum[~_band_mask(len(x), sample_rate_hz, [band])] = 0
    return np.fft.ifft(spectrum)


def frequency_shift(x: np.ndarray, shift_hz: float, sample_rate_hz: float) -> np.ndarray:
    """Mix ``x`` by ``exp(+j 2 pi shift_hz t)`` (moves energy up by shift)."""
    n = np.arange(len(x))
    return x * np.exp(2j * np.pi * shift_hz * n / sample_rate_hz)
