"""Shared-FFT overlap-save correlation engine for the detection front.

The gateway's hot path is correlation: every capture chunk is slid
against every technology preamble (and, in CFO-tolerant mode, against
every coherent sub-block of every preamble). Done naively — one
:func:`scipy.signal.fftconvolve` per template — a 6-technology bank with
8 CFO blocks recomputes the forward FFT of the *same* chunk ~48 times.
This module restores the classic fix: compute ``FFT(x)`` once per
overlap-save segment and reuse it across every template, block and
detector.

Three pieces:

* :class:`SpectrumPlan` / :func:`spectrum_plan` — a memoized choice of
  FFT length for one ``(n_samples, max_template_len, n_templates)``
  workload. Candidates are ``scipy.fft.next_fast_len`` sizes from a few
  times the template up to the single-shot length; the pick minimizes a
  ``segments * nfft * log2(nfft)`` cost model, subject to a cap on the
  template-spectra working set so a wide bank never materializes a
  multi-hundred-megabyte spectra matrix.
* :class:`TemplateBank` — the templates of one detector, with their
  conjugate spectra precomputed per FFT length and cached on the bank
  (a detector correlates thousands of chunks of the same length, so the
  template FFTs are paid once, not per chunk).
* :func:`correlate_many` — one forward FFT per overlap-save segment,
  one (batched) inverse FFT per template per segment, with exact
  "valid"-mode indexing: entry ``k`` of the result has length
  ``len(x) - len(t_k) + 1`` and matches
  :func:`repro.dsp.correlation.cross_correlate` sample for sample.

Numerical contract: results are ``allclose`` to the single-shot
``fftconvolve`` path but **not** bit-identical — ``fftconvolve`` rounds
through one FFT of length ``next_fast_len(len(x) + len(t) - 1)`` while
overlap-save rounds through segments of a different (usually much
shorter) length, so the last few ulps differ. Event-level detector
output is unaffected in practice (detection margins dwarf the ulp
noise); the equivalence tests and ``benchmarks/bench_detection.py``
assert exactly that.

Set ``GALIOT_FASTCORR=off`` (or call :func:`set_fastcorr`) to fall back
to the legacy per-template ``fftconvolve`` path, which *is*
bit-identical to the pre-engine code — the equivalence tests diff the
two engines against each other.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass
from functools import lru_cache
from math import ceil, log2

import numpy as np
import numpy.typing as npt
from scipy import fft as sp_fft
from scipy import signal as sp_signal

from ..contracts import ensure_iq
from ..errors import ConfigurationError
from ..telemetry import NULL, Telemetry

__all__ = [
    "SpectrumPlan",
    "spectrum_plan",
    "spectrum_plan_cache_info",
    "clear_spectrum_plan_cache",
    "TemplateBank",
    "TrackSpec",
    "blocked_bank",
    "correlate_many",
    "correlate_accumulate",
    "fastcorr_enabled",
    "set_fastcorr",
]

#: Cap on the cached conjugate-spectra working set of one bank at one
#: FFT length, in complex128 elements (4M = 64 MiB). The planner rejects
#: FFT lengths whose ``n_templates * nfft`` exceed it unless no shorter
#: candidate exists, trading a few extra segments for bounded memory.
MAX_SPECTRA_ELEMENTS = 4_000_000

#: Spectra cache slots per bank (distinct FFT lengths kept resident).
#: Streaming buffers settle on one length (plus a shorter first/last
#: chunk), so a handful of slots covers real workloads.
SPECTRA_CACHE_SLOTS = 4

#: Cap on the batched inverse-FFT working set, in complex128 elements
#: (2M = 32 MiB per intermediate). The overlap-save segment loop batches
#: its inverse FFTs over (segments x templates); this bounds how many
#: segments share one batched call so a small-template bank (hundreds of
#: segments) never materializes a multi-hundred-megabyte product tensor.
BATCH_WORK_ELEMENTS = 2_097_152


_ENGINE_ENABLED = os.environ.get("GALIOT_FASTCORR", "on").strip().lower() not in {
    "off",
    "0",
    "false",
    "no",
}


def fastcorr_enabled() -> bool:
    """Whether :func:`correlate_many` uses the shared-FFT engine."""
    return _ENGINE_ENABLED


def set_fastcorr(enabled: bool) -> bool:
    """Enable/disable the engine process-wide; returns the old setting.

    Disabled, :func:`correlate_many` runs one ``fftconvolve`` per
    template — bit-identical to the pre-engine detection code, and the
    reference the equivalence tests compare against. The initial value
    comes from the ``GALIOT_FASTCORR`` environment variable
    (``off``/``0``/``false`` disable).
    """
    global _ENGINE_ENABLED
    previous = _ENGINE_ENABLED
    _ENGINE_ENABLED = bool(enabled)
    return previous


@dataclass(frozen=True)
class SpectrumPlan:
    """One memoized overlap-save layout.

    Attributes:
        n_samples: Signal length the plan was built for.
        max_template_len: Longest template the plan must accommodate.
        min_template_len: Shortest template in the workload — its valid
            track ``n_samples - min_template_len + 1`` is the longest
            one, and it is what the segment loop must cover.
        nfft: FFT length (a ``next_fast_len`` size).
        hop: Fresh samples per segment, ``nfft - (max_template_len - 1)``.
            Every segment's first ``hop`` correlation lags are free of
            circular wrap-around for *any* template up to
            ``max_template_len``, so consecutive segments' outputs tile
            the valid-mode track exactly.
    """

    n_samples: int
    max_template_len: int
    min_template_len: int
    nfft: int
    hop: int

    @property
    def n_segments(self) -> int:
        """Segments (forward FFTs) needed to cover the longest track."""
        out_max = self.n_samples - self.min_template_len + 1
        return ceil(out_max / self.hop)


def _plan_cost(nfft: int, overlap: int, out_max: int) -> float:
    """FFT work proxy: segment count times per-segment FFT cost."""
    segments = ceil(out_max / (nfft - overlap))
    return segments * nfft * log2(nfft)


@lru_cache(maxsize=512)
def _cached_spectrum_plan(
    n_samples: int,
    max_template_len: int,
    min_template_len: int,
    n_templates: int,
) -> SpectrumPlan:
    overlap = max_template_len - 1
    # The shortest template has the longest valid track; the segment
    # loop covers it, so the cost model must plan for it too (a bank
    # mixing an 8-sample BLE template with a 50k SigFox one would
    # otherwise pay an unplanned extra segment).
    out_max = n_samples - min_template_len + 1
    single = int(sp_fft.next_fast_len(out_max + overlap))
    candidates = {single}
    target = max(2 * max_template_len, 16)
    while target < out_max + overlap:
        candidates.add(int(sp_fft.next_fast_len(target)))
        target *= 2
    affordable = {
        c for c in candidates if c * n_templates <= MAX_SPECTRA_ELEMENTS
    }
    pool = affordable or {min(candidates)}
    nfft = min(pool, key=lambda c: (_plan_cost(c, overlap, out_max), c))
    return SpectrumPlan(
        n_samples=n_samples,
        max_template_len=max_template_len,
        min_template_len=min_template_len,
        nfft=nfft,
        hop=nfft - overlap,
    )


def spectrum_plan(
    n_samples: int,
    max_template_len: int,
    n_templates: int = 1,
    min_template_len: int | None = None,
) -> SpectrumPlan:
    """Pick (and memoize) the overlap-save layout for one workload.

    The cache key is ``(n_samples, max_template_len, min_template_len,
    n_templates)`` — chunked streams hit the same key on every
    steady-state chunk. ``min_template_len`` defaults to
    ``max_template_len`` (a uniform-length bank).

    Raises:
        ConfigurationError: if the template does not fit the signal.
    """
    if max_template_len < 1:
        raise ConfigurationError("max_template_len must be >= 1")
    if max_template_len > n_samples:
        raise ConfigurationError("template longer than signal")
    if min_template_len is None:
        min_template_len = max_template_len
    if not 1 <= min_template_len <= max_template_len:
        raise ConfigurationError(
            "min_template_len must be in [1, max_template_len]"
        )
    return _cached_spectrum_plan(
        int(n_samples),
        int(max_template_len),
        int(min_template_len),
        max(int(n_templates), 1),
    )


def spectrum_plan_cache_info() -> object:
    """``lru_cache`` statistics of the plan cache (hits/misses/size)."""
    return _cached_spectrum_plan.cache_info()


def clear_spectrum_plan_cache() -> None:
    """Drop every memoized plan (tests and benchmarks)."""
    _cached_spectrum_plan.cache_clear()


class TemplateBank:
    """The (conjugate) template spectra of one detector, cached per nfft.

    A bank is built once per detector from its fixed templates; the
    conjugate spectra at a given FFT length are computed on first use
    and kept on the bank (:data:`SPECTRA_CACHE_SLOTS` most recent
    lengths), so steady-state chunks pay zero template FFTs.

    Args:
        templates: Mapping of hashable keys (technology names, block
            offsets, ...) to complex template waveforms. Iteration
            order is preserved.

    Raises:
        ConfigurationError: for an empty bank or an empty template.
    """

    def __init__(self, templates: Mapping[Hashable, npt.ArrayLike]):
        if not templates:
            raise ConfigurationError("template bank must not be empty")
        self._templates: dict[Hashable, np.ndarray] = {}
        self._rows: dict[Hashable, int] = {}
        for row, (key, waveform) in enumerate(templates.items()):
            template = ensure_iq(waveform).copy()
            if len(template) == 0:
                raise ConfigurationError("template must not be empty")
            template.flags.writeable = False
            self._templates[key] = template
            self._rows[key] = row
        self._spectra_cache: OrderedDict[int, np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._templates)

    def keys(self) -> list[Hashable]:
        """Entry keys in insertion order."""
        return list(self._templates)

    def template(self, key: Hashable) -> np.ndarray:
        """The (read-only) template stored under ``key``."""
        return self._templates[key]

    def length(self, key: Hashable) -> int:
        """Template length in samples."""
        return len(self._templates[key])

    def row(self, key: Hashable) -> int:
        """Row of ``key`` in the stacked spectra matrix."""
        return self._rows[key]

    @property
    def max_template_len(self) -> int:
        """Length of the longest template in the bank."""
        return max(len(t) for t in self._templates.values())

    def spectra(self, nfft: int) -> np.ndarray:
        """Stacked conjugate spectra ``conj(FFT(t_k, nfft))``.

        Shape ``(len(bank), nfft)``; row order matches :meth:`row`.
        Cached per ``nfft`` (LRU over :data:`SPECTRA_CACHE_SLOTS`).
        """
        cached = self._spectra_cache.get(nfft)
        if cached is not None:
            self._spectra_cache.move_to_end(nfft)
            return cached
        matrix = np.empty((len(self._templates), nfft), dtype=np.complex128)
        for row, template in enumerate(self._templates.values()):
            matrix[row] = np.conj(sp_fft.fft(template, n=nfft))
        matrix.flags.writeable = False
        self._spectra_cache[nfft] = matrix
        while len(self._spectra_cache) > SPECTRA_CACHE_SLOTS:
            self._spectra_cache.popitem(last=False)
        return matrix

    def clear_spectra(self) -> None:
        """Drop the cached spectra (tests and memory pressure)."""
        self._spectra_cache.clear()


def blocked_bank(
    template: npt.ArrayLike,
    block: int | None = None,
    *,
    partial_tail: bool = True,
) -> TemplateBank:
    """Bank of one template's coherent sub-blocks, keyed by offset.

    Args:
        template: The full reference waveform.
        block: Coherent block length in samples; ``None`` yields a
            single entry (key ``0``) holding the whole template.
        partial_tail: Include the final short block when ``block`` does
            not divide the template length (:func:`matched_filter_track
            <repro.gateway.detection.matched_filter_track>` semantics);
            ``False`` drops it (:func:`segmented_correlation
            <repro.dsp.correlation.segmented_correlation>` semantics).

    Raises:
        ConfigurationError: for ``block < 1`` or a template shorter
            than one block with ``partial_tail=False``.
    """
    template = ensure_iq(template)
    if block is None:
        return TemplateBank({0: template})
    if block < 1:
        raise ConfigurationError("block must be >= 1")
    if partial_tail:
        n_blocks = -(-len(template) // block)
    else:
        n_blocks = len(template) // block
        if n_blocks == 0:
            raise ConfigurationError("template shorter than one block")
    return TemplateBank(
        {
            b * block: template[b * block : (b + 1) * block]
            for b in range(n_blocks)
        }
    )


def _fallback_correlate(
    x: np.ndarray, bank: TemplateBank, keys: list[Hashable]
) -> dict[Hashable, np.ndarray]:
    """Legacy path: one full ``fftconvolve`` per template (bit-identical
    to the pre-engine :func:`~repro.dsp.correlation.cross_correlate`)."""
    return {
        key: sp_signal.fftconvolve(
            x, np.conj(bank.template(key)[::-1]), mode="valid"
        )
        for key in keys
    }


def correlate_many(
    x: npt.ArrayLike,
    bank: TemplateBank,
    keys: Iterable[Hashable] | None = None,
    telemetry: Telemetry = NULL,
) -> dict[Hashable, np.ndarray]:
    """Valid-mode complex correlation of ``x`` against many templates.

    One forward FFT per overlap-save segment is shared by every
    requested template; each template costs one (batched) inverse FFT
    per segment. Entry ``k`` of the result is exactly
    ``cross_correlate(x, bank.template(k))`` up to FFT rounding:
    ``c[n] = sum_j conj(t[j]) x[n + j]``, length ``len(x) - len(t) + 1``.

    Args:
        x: Received complex samples.
        bank: Prebuilt template bank.
        keys: Subset of bank entries to score (default: all). Detectors
            pass the templates that fit the current buffer.
        telemetry: Metrics sink; spans ``fastcorr.correlate`` and counts
            forward/inverse FFTs (or ``fastcorr.fallback_correlations``
            when the engine is off).

    Raises:
        ConfigurationError: if any requested template is longer than
            ``x`` (same contract as
            :func:`~repro.dsp.correlation.cross_correlate`).
    """
    x = ensure_iq(x)
    requested = bank.keys() if keys is None else list(keys)
    if not requested:
        return {}
    lengths = [bank.length(key) for key in requested]
    n_samples = len(x)
    if max(lengths) > n_samples:
        raise ConfigurationError("template longer than signal")
    if not _ENGINE_ENABLED:
        with telemetry.span("fastcorr.correlate"):
            out = _fallback_correlate(x, bank, requested)
        telemetry.count("fastcorr.fallback_correlations", len(requested))
        return out

    plan = spectrum_plan(
        n_samples, max(lengths), len(requested), min(lengths)
    )
    with telemetry.span("fastcorr.correlate"):
        spectra = bank.spectra(plan.nfft)
        rows = np.fromiter(
            (bank.row(key) for key in requested), dtype=np.intp
        )
        bank_spectra = spectra[rows]
        out_lens = [n_samples - length + 1 for length in lengths]
        out = {
            key: np.empty(out_len, dtype=np.complex128)
            for key, out_len in zip(requested, out_lens, strict=True)
        }
        longest_track = max(out_lens)
        nfft, hop = plan.nfft, plan.hop
        n_segments = ceil(longest_track / hop)
        # All overlap-save segments go through ONE batched forward FFT:
        # a small-template bank plans hundreds of short segments, and
        # paying a separate scipy dispatch per segment used to dominate
        # the actual FFT work on the cloud classify path.
        segmat = np.zeros((n_segments, nfft), dtype=np.complex128)
        for seg in range(n_segments):
            pos = seg * hop
            stop = min(pos + nfft, n_samples)
            segmat[seg, : stop - pos] = x[pos:stop]
        fwd = sp_fft.fft(segmat, axis=1)
        # Inverse FFTs batch over (segments x templates), chunked so the
        # product tensor stays under BATCH_WORK_ELEMENTS. One product
        # buffer is reused across chunks and the inverse FFT works in
        # place on it, so each chunk costs one working set, not three.
        n_keys = len(requested)
        chunk = max(1, BATCH_WORK_ELEMENTS // (n_keys * nfft))
        product = np.empty(
            (min(chunk, n_segments), n_keys, nfft), dtype=np.complex128
        )
        for c0 in range(0, n_segments, chunk):
            c1 = min(c0 + chunk, n_segments)
            work = product[: c1 - c0]
            np.multiply(fwd[c0:c1, None, :], bank_spectra[None, :, :], out=work)
            corr = sp_fft.ifft(work, axis=2, overwrite_x=True)
            pos0 = c0 * hop
            for row, (key, out_len) in enumerate(
                zip(requested, out_lens, strict=True)
            ):
                if pos0 >= out_len:
                    continue
                # Each segment's first ``hop`` lags are wrap-free, so
                # consecutive segments tile the track contiguously.
                end = min(c1 * hop, out_len)
                out[key][pos0:end] = corr[:, row, :hop].reshape(-1)[
                    : end - pos0
                ]
    telemetry.count("fastcorr.forward_ffts", n_segments)
    telemetry.count("fastcorr.inverse_ffts", n_segments * n_keys)
    return out


@dataclass(frozen=True)
class TrackSpec:
    """One non-coherent accumulator over a bank's sub-block tracks.

    Attributes:
        pairs: ``(bank_key, offset)`` terms; the accumulator at index
            ``n`` sums ``f(|corr_key[n + offset]|)`` over all pairs.
        out_len: Accumulator length (the caller's valid-track length).
        squared: ``True`` sums magnitude *squares*
            (:meth:`~repro.cloud.classify.SegmentClassifier._track`
            semantics), ``False`` sums magnitudes
            (:func:`~repro.dsp.correlation.segmented_correlation`
            semantics).
    """

    pairs: tuple[tuple[Hashable, int], ...]
    out_len: int
    squared: bool = True


def correlate_accumulate(
    x: npt.ArrayLike,
    bank: TemplateBank,
    specs: Mapping[Hashable, TrackSpec],
    telemetry: Telemetry = NULL,
) -> dict[Hashable, np.ndarray]:
    """Fused correlate-and-combine for non-coherent blocked detection.

    The classify/segmented-correlation pattern —
    ``acc[n] += f(|corr_offset[n + offset]|)`` over every coherent
    sub-block — normally materializes one full complex track per
    template (tens of megabytes per classify pass on a wide bank) only
    to reduce each to a magnitude immediately. This entry point performs
    the reduction *inside* the overlap-save chunk loop: every template's
    correlation chunk is folded into its group's real accumulator as
    soon as it leaves the inverse FFT, and the per-template complex
    tracks are never stored.

    Args:
        x: Received complex samples.
        bank: Prebuilt template bank (shared forward FFT across every
            spec, exactly like :func:`correlate_many`).
        specs: Accumulator definitions keyed by caller-chosen group key.
        telemetry: Metrics sink (same spans/counts as
            :func:`correlate_many`).

    Returns:
        ``{group_key: float64 accumulator}`` — un-normalized; callers
        apply their own ``sqrt``/norm scaling.

    With the engine off the per-template tracks come from the legacy
    ``fftconvolve`` fallback and are combined in pair order, matching
    the historical accumulation loops exactly.
    """
    x = ensure_iq(x)
    requested: list[Hashable] = []
    seen: set[Hashable] = set()
    for spec in specs.values():
        for key, _ in spec.pairs:
            if key not in seen:
                seen.add(key)
                requested.append(key)
    if not requested:
        return {
            group: np.zeros(spec.out_len) for group, spec in specs.items()
        }
    lengths = [bank.length(key) for key in requested]
    n_samples = len(x)
    if max(lengths) > n_samples:
        raise ConfigurationError("template longer than signal")
    acc = {
        group: np.zeros(spec.out_len) for group, spec in specs.items()
    }
    if not _ENGINE_ENABLED:
        with telemetry.span("fastcorr.correlate"):
            tracks = _fallback_correlate(x, bank, requested)
            for group, spec in specs.items():
                for key, offset in spec.pairs:
                    magnitude = np.abs(
                        tracks[key][offset : offset + spec.out_len]
                    )
                    if spec.squared:
                        acc[group] += magnitude**2
                    else:
                        acc[group] += magnitude
        telemetry.count("fastcorr.fallback_correlations", len(requested))
        return acc

    plan = spectrum_plan(
        n_samples, max(lengths), len(requested), min(lengths)
    )
    with telemetry.span("fastcorr.correlate"):
        spectra = bank.spectra(plan.nfft)
        rows = np.fromiter(
            (bank.row(key) for key in requested), dtype=np.intp
        )
        bank_spectra = spectra[rows]
        local_rows = {key: i for i, key in enumerate(requested)}
        track_lens = {
            key: n_samples - length + 1
            for key, length in zip(requested, lengths, strict=True)
        }
        longest_track = max(track_lens.values())
        nfft, hop = plan.nfft, plan.hop
        n_segments = ceil(longest_track / hop)
        segmat = np.zeros((n_segments, nfft), dtype=np.complex128)
        for seg in range(n_segments):
            pos = seg * hop
            stop = min(pos + nfft, n_samples)
            segmat[seg, : stop - pos] = x[pos:stop]
        fwd = sp_fft.fft(segmat, axis=1)
        n_keys = len(requested)
        chunk = max(1, BATCH_WORK_ELEMENTS // (n_keys * nfft))
        product = np.empty(
            (min(chunk, n_segments), n_keys, nfft), dtype=np.complex128
        )
        for c0 in range(0, n_segments, chunk):
            c1 = min(c0 + chunk, n_segments)
            work = product[: c1 - c0]
            np.multiply(fwd[c0:c1, None, :], bank_spectra[None, :, :], out=work)
            corr = sp_fft.ifft(work, axis=2, overwrite_x=True)
            pos0 = c0 * hop
            flat = corr[:, :, :hop]
            for group, spec in specs.items():
                target = acc[group]
                for key, offset in spec.pairs:
                    track_len = track_lens[key]
                    if pos0 >= track_len:
                        continue
                    t_end = min(c1 * hop, track_len)
                    # Track positions [pos0, t_end) feed accumulator
                    # positions [pos0 - offset, t_end - offset), clipped
                    # to the accumulator's own range.
                    a0 = max(pos0 - offset, 0)
                    a1 = min(t_end - offset, spec.out_len)
                    if a1 <= a0:
                        continue
                    row = local_rows[key]
                    values = flat[:, row, :].reshape(-1)[
                        a0 + offset - pos0 : a1 + offset - pos0
                    ]
                    magnitude = np.abs(values)
                    if spec.squared:
                        np.multiply(magnitude, magnitude, out=magnitude)
                    target[a0:a1] += magnitude
    telemetry.count("fastcorr.forward_ffts", n_segments)
    telemetry.count("fastcorr.inverse_ffts", n_segments * n_keys)
    return acc
