"""DSP substrate: chirps, filters, correlation, channels, impairments.

All functions operate on one-dimensional complex numpy arrays (complex
baseband I/Q) and take explicit sample rates; there is no global state
and every random operation takes an explicit ``numpy.random.Generator``.
"""

from .backend import (
    Backend,
    backend_enabled,
    get_backend,
    set_backend,
)
from .channel import (
    add_at,
    awgn,
    complex_gain,
    noise_for_band_snr,
    scale_to_snr,
    signal_power,
)
from .chirp import (
    base_downchirp,
    base_upchirp,
    linear_chirp,
    lora_symbol,
    oversampling_factor,
)
from .correlation import (
    cross_correlate,
    find_peaks_above,
    normalized_correlation,
    segmented_correlation,
)
from .fastcorr import (
    SpectrumPlan,
    TemplateBank,
    TrackSpec,
    blocked_bank,
    correlate_accumulate,
    correlate_many,
    fastcorr_enabled,
    set_fastcorr,
    spectrum_plan,
)
from .filters import (
    design_lowpass_fir,
    fft_bandpass,
    fft_notch,
    fir_filter,
    frequency_shift,
    gaussian_pulse,
    half_sine_pulse,
    moving_average,
)
from .fm import instantaneous_frequency, quadrature_demod
from .impairments import (
    apply_cfo,
    apply_clock_drift,
    apply_dc_offset,
    apply_iq_imbalance,
    apply_phase,
    cfo_from_ppm,
    quantize,
)
from .jam import cw_tone, pulsed_noise, swept_tone
from .measure import (
    estimate_noise_floor,
    estimate_snr_db,
    occupied_bandwidth,
    papr_db,
    power,
    power_db,
    rms,
)
from .resample import (
    to_rate,
    decimate_integer,
    fractional_delay,
    resample_rational,
    upsample_integer,
)
from .spectrum import dominant_tones, stft, welch_psd

__all__ = [
    # backend
    "Backend",
    "backend_enabled",
    "get_backend",
    "set_backend",
    # channel
    "add_at",
    "awgn",
    "complex_gain",
    "noise_for_band_snr",
    "scale_to_snr",
    "signal_power",
    # chirp
    "base_downchirp",
    "base_upchirp",
    "linear_chirp",
    "lora_symbol",
    "oversampling_factor",
    # correlation
    "cross_correlate",
    "find_peaks_above",
    "normalized_correlation",
    "segmented_correlation",
    # fastcorr
    "SpectrumPlan",
    "TemplateBank",
    "TrackSpec",
    "blocked_bank",
    "correlate_accumulate",
    "correlate_many",
    "fastcorr_enabled",
    "set_fastcorr",
    "spectrum_plan",
    # filters
    "design_lowpass_fir",
    "fft_bandpass",
    "fft_notch",
    "fir_filter",
    "frequency_shift",
    "gaussian_pulse",
    "half_sine_pulse",
    "moving_average",
    # fm
    "instantaneous_frequency",
    "quadrature_demod",
    # impairments
    "apply_cfo",
    "apply_clock_drift",
    "apply_dc_offset",
    "apply_iq_imbalance",
    "apply_phase",
    "cfo_from_ppm",
    "quantize",
    # jam
    "cw_tone",
    "pulsed_noise",
    "swept_tone",
    # measure
    "estimate_noise_floor",
    "estimate_snr_db",
    "occupied_bandwidth",
    "papr_db",
    "power",
    "power_db",
    "rms",
    # resample
    "decimate_integer",
    "fractional_delay",
    "resample_rational",
    "upsample_integer",
    "to_rate",
    # spectrum
    "dominant_tones",
    "stft",
    "welch_psd",
]
