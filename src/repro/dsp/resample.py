"""Sample-rate conversion.

Modems run at their native oversampling of the symbol rate; the scene
composer and the cloud decoders move signals between a modem's native
rate and the gateway capture rate (1 MHz) with these helpers.

Two caches keep the cloud's hot path from repeating work:

* a process-wide **resample-plan cache** (:func:`resample_plan`)
  memoizing the reduced polyphase ratio and the designed anti-alias FIR
  per ``(fs_in, fs_out)`` pair, so :func:`to_rate` skips the
  ``Fraction`` reduction and ``firwin`` design that otherwise run on
  every call;
* a per-buffer **native-rate view cache** (:class:`NativeRateCache`)
  memoizing read-only resampled views of one working buffer, so one
  Algorithm-1 iteration resamples the residual to each modem's native
  rate once instead of once per classify/decode/kill call.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any

import numpy as np
import numpy.typing as npt
from scipy import signal as sp_signal

from ..contracts import ensure_iq
from ..errors import ConfigurationError

__all__ = [
    "upsample_integer",
    "decimate_integer",
    "resample_rational",
    "fractional_delay",
    "to_rate",
    "ResamplePlan",
    "resample_plan",
    "resample_plan_cache_info",
    "resample_plan_builds",
    "reset_resample_plan_builds",
    "clear_resample_plan_cache",
    "set_resample_plan_cache",
    "NativeRateCache",
]


def upsample_integer(x: np.ndarray, factor: int) -> np.ndarray:
    """Interpolate by an integer factor (polyphase, anti-image filtered)."""
    if factor < 1:
        raise ConfigurationError("factor must be >= 1")
    if factor == 1:
        return x.copy()
    return sp_signal.resample_poly(x, factor, 1)


def decimate_integer(x: np.ndarray, factor: int) -> np.ndarray:
    """Decimate by an integer factor (polyphase, anti-alias filtered)."""
    if factor < 1:
        raise ConfigurationError("factor must be >= 1")
    if factor == 1:
        return x.copy()
    return sp_signal.resample_poly(x, 1, factor)


def resample_rational(x: np.ndarray, up: int, down: int) -> np.ndarray:
    """Rational resampling by ``up / down`` (polyphase)."""
    if up < 1 or down < 1:
        raise ConfigurationError("up and down must be >= 1")
    return sp_signal.resample_poly(x, up, down)


@dataclass(frozen=True)
class ResamplePlan:
    """A memoized polyphase resampling recipe for one rate pair.

    Attributes:
        up: Interpolation factor (already reduced by the gcd).
        down: Decimation factor.
        window: The anti-alias FIR coefficients ``resample_poly`` would
            design for this ratio (``None`` for the identity plan) —
            unscaled, exactly as ``firwin`` returns them; ``resample_poly``
            applies its own ``up`` gain.
    """

    up: int
    down: int
    window: np.ndarray | None

    @property
    def identity(self) -> bool:
        """True when the plan is a pure copy (``up == down``)."""
        return self.up == self.down

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Resample ``x`` by this plan (always returns a new array)."""
        if self.identity:
            return x.copy()
        window = self.window
        if window is not None and np.issubdtype(x.dtype, np.inexact):
            # Mirror resample_poly's own dtype cast of the designed
            # filter so cached and uncached outputs match bit for bit.
            window = window.astype(x.dtype)
        return sp_signal.resample_poly(x, self.up, self.down, window=window)


def _design_window(up: int, down: int) -> np.ndarray:
    """The FIR ``resample_poly`` designs for ``up/down`` (unscaled)."""
    max_rate = max(up, down)
    half_len = 10 * max_rate
    window = sp_signal.firwin(
        2 * half_len + 1, 1.0 / max_rate, window=("kaiser", 5.0)
    )
    window.flags.writeable = False
    return window


@lru_cache(maxsize=256)
def _cached_plan(fs_in: float, fs_out: float) -> ResamplePlan:
    return _build_plan(fs_in, fs_out)


#: Count of full plan constructions (ratio reduction + FIR design) since
#: the last reset. Benchmarks read this to report how much work the plan
#: cache actually avoids on a given path — hits/misses alone say nothing
#: about the cost of the misses.
_PLAN_BUILDS = 0


def resample_plan_builds() -> int:
    """Number of plan constructions since :func:`reset_resample_plan_builds`."""
    return _PLAN_BUILDS


def reset_resample_plan_builds() -> None:
    """Zero the plan-construction counter (benchmarks)."""
    global _PLAN_BUILDS
    _PLAN_BUILDS = 0


def _build_plan(fs_in: float, fs_out: float) -> ResamplePlan:
    from fractions import Fraction

    global _PLAN_BUILDS
    _PLAN_BUILDS += 1
    if abs(fs_in - fs_out) < 1e-9 * fs_in:
        return ResamplePlan(up=1, down=1, window=None)
    ratio = Fraction(fs_out / fs_in).limit_denominator(1_000_000)
    if ratio.numerator == 0:
        raise ConfigurationError("rate ratio too extreme to resample")
    achieved = fs_in * ratio.numerator / ratio.denominator
    if abs(achieved - fs_out) > 1e-6 * fs_out:
        raise ConfigurationError(
            f"rates {fs_in} -> {fs_out} are not commensurate"
        )
    up, down = ratio.numerator, ratio.denominator
    return ResamplePlan(up=up, down=down, window=_design_window(up, down))


_PLAN_CACHE_ENABLED = True


def set_resample_plan_cache(enabled: bool) -> bool:
    """Enable/disable the plan cache (benchmark A/B); returns the old
    setting. Disabled, :func:`to_rate` re-derives the ratio and lets
    ``resample_poly`` design its filter on every call."""
    global _PLAN_CACHE_ENABLED
    previous = _PLAN_CACHE_ENABLED
    _PLAN_CACHE_ENABLED = bool(enabled)
    return previous


def resample_plan(fs_in: float, fs_out: float) -> ResamplePlan:
    """The memoized plan converting ``fs_in`` to ``fs_out``.

    Raises:
        ConfigurationError: if the rates are invalid or incommensurate
            (denominator above 1e6).
    """
    if fs_in <= 0 or fs_out <= 0:
        raise ConfigurationError("sample rates must be positive")
    if _PLAN_CACHE_ENABLED:
        return _cached_plan(float(fs_in), float(fs_out))
    return _build_plan(float(fs_in), float(fs_out))


def resample_plan_cache_info() -> Any:
    """``functools.lru_cache`` statistics of the plan cache (a
    ``CacheInfo`` named tuple: hits, misses, maxsize, currsize)."""
    return _cached_plan.cache_info()


def clear_resample_plan_cache() -> None:
    """Drop every memoized plan (tests, benchmarks)."""
    _cached_plan.cache_clear()


def to_rate(x: np.ndarray, fs_in: float, fs_out: float) -> np.ndarray:
    """Resample ``x`` from ``fs_in`` to ``fs_out`` (rational polyphase).

    The rate ratio is reduced to a small rational; rates must be
    commensurate to within 1e-9 relative error. The reduced ratio and
    the anti-alias filter design are memoized per rate pair (see
    :func:`resample_plan`), so repeated conversions between the same
    rates skip straight to the polyphase convolution.

    Raises:
        ConfigurationError: if the ratio cannot be expressed as a
            rational with denominator <= 1e6.
    """
    if fs_in <= 0 or fs_out <= 0:
        raise ConfigurationError("sample rates must be positive")
    if not _PLAN_CACHE_ENABLED:
        # Reference path: identical maths, nothing memoized.
        if abs(fs_in - fs_out) < 1e-9 * fs_in:
            return x.copy()
        plan = _build_plan(float(fs_in), float(fs_out))
        return sp_signal.resample_poly(x, plan.up, plan.down)
    return resample_plan(fs_in, fs_out).apply(x)


class NativeRateCache:
    """Memoized read-only resampled views of one working buffer.

    Algorithm 1 re-classifies the residual after every cancellation, and
    each classify pass (plus each decode and kill attempt) needs the
    working buffer at some modem's native rate. One cache instance wraps
    one immutable snapshot of the buffer; :meth:`view` resamples at most
    once per distinct output rate. Views are marked non-writeable —
    callers needing to mutate must copy.

    Build a fresh cache whenever the working buffer changes (SIC
    subtraction replaces it rather than mutating in place, so staleness
    is impossible by construction).
    """

    def __init__(
        self, samples: npt.NDArray[np.complex128], sample_rate_hz: float
    ) -> None:
        self.samples = ensure_iq(samples)
        self.sample_rate_hz = float(sample_rate_hz)
        self._views: dict[float, np.ndarray] = {}

    def view(self, fs_out: float) -> np.ndarray:
        """``samples`` resampled to ``fs_out`` (cached, read-only)."""
        key = float(fs_out)
        cached = self._views.get(key)
        if cached is None:
            if abs(key - self.sample_rate_hz) < 1e-9 * self.sample_rate_hz:
                cached = self.samples.view()
            else:
                cached = to_rate(self.samples, self.sample_rate_hz, key)
            cached.flags.writeable = False
            self._views[key] = cached
        return cached

    def __len__(self) -> int:
        return len(self.samples)


def fractional_delay(x: np.ndarray, delay: float) -> np.ndarray:
    """Delay ``x`` by a (possibly fractional) number of samples.

    Integer part is a zero-padded shift; the fractional part uses linear
    interpolation. Output has the same length as the input.
    """
    if delay < 0:
        raise ConfigurationError("delay must be non-negative")
    n = len(x)
    whole = int(np.floor(delay))
    frac = delay - whole
    out = np.zeros(n, dtype=x.dtype)
    if whole >= n:
        return out
    shifted = x[: n - whole]
    if frac > 0:
        interp = np.empty_like(shifted)
        interp[0] = shifted[0] * (1 - frac)
        interp[1:] = (1 - frac) * shifted[1:] + frac * shifted[:-1]
        shifted = interp
    out[whole:] = shifted
    return out
