"""Sample-rate conversion.

Modems run at their native oversampling of the symbol rate; the scene
composer and the cloud decoders move signals between a modem's native
rate and the gateway capture rate (1 MHz) with these helpers.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from ..errors import ConfigurationError

__all__ = [
    "upsample_integer",
    "decimate_integer",
    "resample_rational",
    "fractional_delay",
    "to_rate",
]


def upsample_integer(x: np.ndarray, factor: int) -> np.ndarray:
    """Interpolate by an integer factor (polyphase, anti-image filtered)."""
    if factor < 1:
        raise ConfigurationError("factor must be >= 1")
    if factor == 1:
        return x.copy()
    return sp_signal.resample_poly(x, factor, 1)


def decimate_integer(x: np.ndarray, factor: int) -> np.ndarray:
    """Decimate by an integer factor (polyphase, anti-alias filtered)."""
    if factor < 1:
        raise ConfigurationError("factor must be >= 1")
    if factor == 1:
        return x.copy()
    return sp_signal.resample_poly(x, 1, factor)


def resample_rational(x: np.ndarray, up: int, down: int) -> np.ndarray:
    """Rational resampling by ``up / down`` (polyphase)."""
    if up < 1 or down < 1:
        raise ConfigurationError("up and down must be >= 1")
    return sp_signal.resample_poly(x, up, down)


def to_rate(x: np.ndarray, fs_in: float, fs_out: float) -> np.ndarray:
    """Resample ``x`` from ``fs_in`` to ``fs_out`` (rational polyphase).

    The rate ratio is reduced to a small rational; rates must be
    commensurate to within 1e-9 relative error.

    Raises:
        ConfigurationError: if the ratio cannot be expressed as a
            rational with denominator <= 1e6.
    """
    if fs_in <= 0 or fs_out <= 0:
        raise ConfigurationError("sample rates must be positive")
    if abs(fs_in - fs_out) < 1e-9 * fs_in:
        return x.copy()
    from fractions import Fraction

    ratio = Fraction(fs_out / fs_in).limit_denominator(1_000_000)
    if ratio.numerator == 0:
        raise ConfigurationError("rate ratio too extreme to resample")
    achieved = fs_in * ratio.numerator / ratio.denominator
    if abs(achieved - fs_out) > 1e-6 * fs_out:
        raise ConfigurationError(
            f"rates {fs_in} -> {fs_out} are not commensurate"
        )
    return sp_signal.resample_poly(x, ratio.numerator, ratio.denominator)


def fractional_delay(x: np.ndarray, delay: float) -> np.ndarray:
    """Delay ``x`` by a (possibly fractional) number of samples.

    Integer part is a zero-padded shift; the fractional part uses linear
    interpolation. Output has the same length as the input.
    """
    if delay < 0:
        raise ConfigurationError("delay must be non-negative")
    n = len(x)
    whole = int(np.floor(delay))
    frac = delay - whole
    out = np.zeros(n, dtype=x.dtype)
    if whole >= n:
        return out
    shifted = x[: n - whole]
    if frac > 0:
        interp = np.empty_like(shifted)
        interp[0] = shifted[0] * (1 - frac)
        interp[1:] = (1 - frac) * shifted[1:] + frac * shifted[:-1]
        shifted = interp
    out[whole:] = shifted
    return out
