"""Spectral analysis helpers: Welch PSD and STFT.

Used by the kill filters (to locate FSK tones in a collision) and by the
examples for visual inspection of synthetic captures.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from ..errors import ConfigurationError

__all__ = ["welch_psd", "stft", "dominant_tones"]


def welch_psd(
    x: np.ndarray, sample_rate_hz: float, nperseg: int = 256
) -> tuple[np.ndarray, np.ndarray]:
    """Welch power spectral density of a complex baseband signal.

    Returns:
        ``(freqs, psd)`` with frequencies sorted ascending from ``-sample_rate_hz/2``
        to ``+sample_rate_hz/2`` (fftshifted).
    """
    if len(x) < 2:
        raise ConfigurationError("need at least two samples for a PSD")
    nperseg = min(nperseg, len(x))
    freqs, psd = sp_signal.welch(
        x, fs=sample_rate_hz, nperseg=nperseg, return_onesided=False, detrend=False
    )
    order = np.argsort(freqs)
    return freqs[order], psd[order]


def stft(
    x: np.ndarray, sample_rate_hz: float, nfft: int = 256, hop: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Short-time Fourier transform magnitude.

    Returns:
        ``(times, freqs, magnitude)`` where ``magnitude`` has shape
        ``(len(freqs), len(times))`` and frequencies are fftshifted.
    """
    if nfft < 2:
        raise ConfigurationError("nfft must be >= 2")
    hop = hop or nfft // 2
    if hop < 1:
        raise ConfigurationError("hop must be >= 1")
    starts = np.arange(0, max(len(x) - nfft + 1, 1), hop)
    window = np.hanning(nfft)
    mags = np.empty((nfft, len(starts)))
    for i, s in enumerate(starts):
        seg = x[s : s + nfft]
        if len(seg) < nfft:
            seg = np.pad(seg, (0, nfft - len(seg)))
        mags[:, i] = np.abs(np.fft.fftshift(np.fft.fft(seg * window)))
    freqs = np.fft.fftshift(np.fft.fftfreq(nfft, d=1.0 / sample_rate_hz))
    times = starts / sample_rate_hz
    return times, freqs, mags


def dominant_tones(
    x: np.ndarray, sample_rate_hz: float, n_tones: int, min_separation_hz: float
) -> list[float]:
    """Frequencies of the ``n_tones`` strongest spectral peaks.

    Peaks closer than ``min_separation_hz`` to an already-selected peak
    are skipped, so an FSK pair is reported as two tones rather than the
    two strongest bins of one lobe. Used by KILL-FREQUENCY when tone
    positions must be estimated from the collision itself.
    """
    if n_tones < 1:
        raise ConfigurationError("n_tones must be >= 1")
    spectrum = np.abs(np.fft.fft(x)) ** 2
    freqs = np.fft.fftfreq(len(x), d=1.0 / sample_rate_hz)
    order = np.argsort(spectrum)[::-1]
    chosen: list[float] = []
    for idx in order:
        f = float(freqs[idx])
        if all(abs(f - c) >= min_separation_hz for c in chosen):
            chosen.append(f)
        if len(chosen) == n_tones:
            break
    return chosen
