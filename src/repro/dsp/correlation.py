"""Cross-correlation primitives for packet detection.

The gateway detects packets by sliding a preamble template over the
capture. Three flavours are provided:

* :func:`cross_correlate` — raw complex correlation (FFT based).
* :func:`normalized_correlation` — correlation magnitude normalized by
  both template and local window energy, so the score is in [0, 1] and a
  constant-false-alarm threshold works at any noise level.
* :func:`segmented_correlation` — splits the template into blocks,
  normalizes each block coherently and combines block magnitudes
  non-coherently. This trades a little processing gain for robustness to
  carrier frequency offset: CFO rotates the phase across a long template
  and destroys coherent correlation, but barely rotates within one block.

Peak picking (:func:`find_peaks_above`) enforces a minimum spacing so one
packet produces one detection.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from ..errors import ConfigurationError

__all__ = [
    "cross_correlate",
    "normalized_correlation",
    "segmented_correlation",
    "find_peaks_above",
]

_EPS = 1e-30


def cross_correlate(x: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Complex correlation ``c[n] = sum_k conj(template[k]) x[n + k]``.

    Output length is ``len(x) - len(template) + 1`` ("valid" mode).

    Raises:
        ConfigurationError: if the template is longer than the signal.
    """
    if len(template) > len(x):
        raise ConfigurationError("template longer than signal")
    return sp_signal.fftconvolve(x, np.conj(template[::-1]), mode="valid")


def _window_energy(x: np.ndarray, window: int) -> np.ndarray:
    """Sliding-window energy of ``x`` for each valid start index."""
    power = np.abs(x) ** 2
    csum = np.concatenate(([0.0], np.cumsum(power)))
    return csum[window:] - csum[:-window]


def normalized_correlation(x: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Normalized correlation magnitude in [0, 1].

    ``score[n] = |c[n]| / (||template|| * ||x[n : n+L]||)``
    """
    corr = cross_correlate(x, template)
    template_norm = np.sqrt(np.sum(np.abs(template) ** 2)) + _EPS
    window_norm = np.sqrt(np.maximum(_window_energy(x, len(template)), 0.0))
    # Floor the local norm so numerically-silent windows (all-zero padding
    # in synthetic scenes) score ~0 instead of dust / dust = huge.
    floor = max(float(window_norm.max(initial=0.0)), template_norm) * 1e-9 + _EPS
    return np.abs(corr) / (template_norm * np.maximum(window_norm, floor))


def segmented_correlation(
    x: np.ndarray, template: np.ndarray, block: int
) -> np.ndarray:
    """CFO-tolerant correlation: coherent per block, non-coherent across.

    Args:
        x: Received samples.
        template: Reference waveform.
        block: Coherent block length in samples. The template is cut into
            ``floor(L / block)`` full blocks; a short tail is dropped.

    Returns:
        Score array in [0, 1] with the same indexing as
        :func:`normalized_correlation`. Each block's correlation magnitude
        is accumulated and the sum is normalized by the combined energies.
    """
    if block < 1:
        raise ConfigurationError("block must be >= 1")
    n_blocks = len(template) // block
    if n_blocks == 0:
        raise ConfigurationError("template shorter than one block")
    used = n_blocks * block
    out_len = len(x) - len(template) + 1
    if out_len <= 0:
        raise ConfigurationError("template longer than signal")
    acc = np.zeros(out_len)
    for b in range(n_blocks):
        seg = template[b * block : (b + 1) * block]
        corr = cross_correlate(x, seg)
        acc += np.abs(corr[b * block : b * block + out_len])
    template_norm = np.sqrt(np.sum(np.abs(template[:used]) ** 2)) + _EPS
    window_norm = np.sqrt(np.maximum(_window_energy(x, len(template)), 0.0))
    floor = max(float(window_norm.max(initial=0.0)), template_norm) * 1e-9 + _EPS
    window_norm = np.maximum(window_norm, floor)
    # A perfect noiseless match accumulates sum_b ||t_b||^2 = ||t||^2 and
    # scores 1; the noise floor rises ~sqrt(n_blocks) over coherent
    # correlation, which is exactly the non-coherent combining loss.
    return acc / (template_norm * window_norm[:out_len])


def find_peaks_above(
    scores: np.ndarray, threshold: float, min_distance: int
) -> list[int]:
    """Indices of local maxima exceeding ``threshold``, greedily spaced.

    Peaks are accepted in descending score order; any candidate within
    ``min_distance`` samples of an accepted peak is suppressed.
    """
    if min_distance < 1:
        raise ConfigurationError("min_distance must be >= 1")
    candidates = np.flatnonzero(scores >= threshold)
    if candidates.size == 0:
        return []
    order = candidates[np.argsort(scores[candidates])[::-1]]
    accepted: list[int] = []
    for idx in order:
        if all(abs(idx - kept) >= min_distance for kept in accepted):
            accepted.append(int(idx))
    return sorted(accepted)
