"""Cross-correlation primitives for packet detection.

The gateway detects packets by sliding a preamble template over the
capture. Three flavours are provided:

* :func:`cross_correlate` — raw complex correlation (FFT based).
* :func:`normalized_correlation` — correlation magnitude normalized by
  both template and local window energy, so the score is in [0, 1] and a
  constant-false-alarm threshold works at any noise level.
* :func:`segmented_correlation` — splits the template into blocks,
  normalizes each block coherently and combines block magnitudes
  non-coherently. This trades a little processing gain for robustness to
  carrier frequency offset: CFO rotates the phase across a long template
  and destroys coherent correlation, but barely rotates within one block.

Peak picking (:func:`find_peaks_above`) enforces a minimum spacing so one
packet produces one detection.

Multi-template and blocked correlations run on the shared-FFT
overlap-save engine in :mod:`repro.dsp.fastcorr`, which computes the
forward FFT of the signal once per segment and reuses it across every
template; set ``GALIOT_FASTCORR=off`` for the legacy one-``fftconvolve``
-per-template path.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from ..errors import ConfigurationError
from .backend import backend_enabled
from .fastcorr import TrackSpec, blocked_bank, correlate_accumulate, correlate_many

__all__ = [
    "cross_correlate",
    "normalized_correlation",
    "segmented_correlation",
    "find_peaks_above",
]

_EPS = 1e-30


def cross_correlate(x: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Complex correlation ``c[n] = sum_k conj(template[k]) x[n + k]``.

    Output length is ``len(x) - len(template) + 1`` ("valid" mode).

    Raises:
        ConfigurationError: if the template is longer than the signal.
    """
    if len(template) > len(x):
        raise ConfigurationError("template longer than signal")
    return sp_signal.fftconvolve(x, np.conj(template[::-1]), mode="valid")


def _window_energy(x: np.ndarray, window: int) -> np.ndarray:
    """Sliding-window energy of ``x`` for each valid start index."""
    power = np.abs(x) ** 2
    csum = np.concatenate(([0.0], np.cumsum(power)))
    return csum[window:] - csum[:-window]


def normalized_correlation(x: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Normalized correlation magnitude in [0, 1].

    ``score[n] = |c[n]| / (||template|| * ||x[n : n+L]||)``
    """
    corr = cross_correlate(x, template)
    template_norm = np.sqrt(np.sum(np.abs(template) ** 2)) + _EPS
    window_norm = np.sqrt(np.maximum(_window_energy(x, len(template)), 0.0))
    # Floor the local norm so numerically-silent windows (all-zero padding
    # in synthetic scenes) score ~0 instead of dust / dust = huge.
    floor = max(float(window_norm.max(initial=0.0)), template_norm) * 1e-9 + _EPS
    return np.abs(corr) / (template_norm * np.maximum(window_norm, floor))


def segmented_correlation(
    x: np.ndarray, template: np.ndarray, block: int
) -> np.ndarray:
    """CFO-tolerant correlation: coherent per block, non-coherent across.

    Args:
        x: Received samples.
        template: Reference waveform.
        block: Coherent block length in samples. The template is cut into
            ``floor(L / block)`` full blocks; a short tail is dropped.

    Returns:
        Score array in [0, 1] with the same indexing as
        :func:`normalized_correlation`. Each block's correlation magnitude
        is accumulated and the sum is normalized by the combined energies.
    """
    if block < 1:
        raise ConfigurationError("block must be >= 1")
    n_blocks = len(template) // block
    if n_blocks == 0:
        raise ConfigurationError("template shorter than one block")
    used = n_blocks * block
    out_len = len(x) - len(template) + 1
    if out_len <= 0:
        raise ConfigurationError("template longer than signal")
    # All blocks share one forward FFT per overlap-save segment (see
    # repro.dsp.fastcorr); the tail past the last full block is dropped.
    bank = blocked_bank(template[:used], block, partial_tail=False)
    if backend_enabled():
        # Fused path: block magnitudes fold into the accumulator inside
        # the engine's chunk loop, skipping the per-block track arrays.
        spec = TrackSpec(
            pairs=tuple((offset, offset) for offset in bank.keys()),
            out_len=out_len,
            squared=False,
        )
        acc = correlate_accumulate(x, bank, {0: spec})[0]
    else:
        tracks = correlate_many(x, bank)
        acc = np.zeros(out_len)
        for offset in bank.keys():
            corr = tracks[offset]
            acc += np.abs(corr[offset : offset + out_len])
    template_norm = np.sqrt(np.sum(np.abs(template[:used]) ** 2)) + _EPS
    window_norm = np.sqrt(np.maximum(_window_energy(x, len(template)), 0.0))
    floor = max(float(window_norm.max(initial=0.0)), template_norm) * 1e-9 + _EPS
    window_norm = np.maximum(window_norm, floor)
    # A perfect noiseless match accumulates sum_b ||t_b||^2 = ||t||^2 and
    # scores 1; the noise floor rises ~sqrt(n_blocks) over coherent
    # correlation, which is exactly the non-coherent combining loss.
    return acc / (template_norm * window_norm[:out_len])


def find_peaks_above(
    scores: np.ndarray,
    threshold: float,
    min_distance: int,
    *,
    local_max_only: bool = False,
) -> list[int]:
    """Greedy min-distance suppression of above-threshold samples.

    The candidate set is **every** sample scoring at or above
    ``threshold`` — not just local maxima. Candidates are then accepted
    in descending score order (ties: higher index first, the order of a
    reversed stable sort) and any candidate within ``min_distance``
    samples of an already-accepted peak is suppressed; it is this
    greedy suppression that makes the result peak-like, one survivor
    per ``min_distance`` neighbourhood. Returned indices are ascending.

    The suppression loop is vectorized: candidates are visited in one
    pass over the descending-score order and each acceptance knocks out
    its whole neighbourhood with one array mask, so dense
    above-threshold tracks (a seconds-long SigFox frame lights up every
    sample) cost ``O(peaks x candidates)`` array work instead of the
    quadratic pure-Python scan this replaces.

    Args:
        scores: Score track.
        threshold: Candidate floor (inclusive).
        min_distance: Minimum spacing between accepted peaks.
        local_max_only: Prefilter candidates to true local maxima of
            ``scores`` (one-sided at the track edges; plateau samples
            all qualify) before the greedy pass. Off by default — the
            greedy result is unchanged for clean peaks, but the
            prefilter changes which sample of a noisy peak wins, so
            compatibility keeps it opt-in.

    Raises:
        ConfigurationError: for ``min_distance < 1``.
    """
    if min_distance < 1:
        raise ConfigurationError("min_distance must be >= 1")
    scores = np.asarray(scores)
    candidates = np.flatnonzero(scores >= threshold)
    if local_max_only and candidates.size:
        not_rising = np.empty(len(scores), dtype=bool)
        not_rising[0] = True
        np.greater_equal(scores[1:], scores[:-1], out=not_rising[1:])
        not_falling = np.empty(len(scores), dtype=bool)
        not_falling[-1] = True
        np.greater_equal(scores[:-1], scores[1:], out=not_falling[:-1])
        is_peak = not_rising & not_falling
        candidates = candidates[is_peak[candidates]]
    if candidates.size == 0:
        return []
    order = np.argsort(scores[candidates], kind="stable")[::-1]
    idx_desc = candidates[order]
    alive = np.ones(idx_desc.size, dtype=bool)
    accepted: list[int] = []
    pos = 0
    while pos < idx_desc.size:
        if not alive[pos]:
            # First still-alive candidate at or after pos (argmax finds
            # the first True in C); none left ends the pass.
            nxt = pos + int(np.argmax(alive[pos:]))
            if not alive[nxt]:
                break
            pos = nxt
        peak = int(idx_desc[pos])
        accepted.append(peak)
        alive[np.abs(idx_desc - peak) < min_distance] = False
        pos += 1
    accepted.sort()
    return accepted
