"""Channel models: AWGN, complex gains and packet placement.

SNR convention
--------------
Throughout this package, the SNR of a packet is defined **in the signal's
own occupied bandwidth**:

    snr_db = 10 log10( P_signal / (N0 * B_signal) )

The scene composer works at the capture rate ``sample_rate_hz`` (1 MHz in the paper's
prototype), so the complex noise added across the full capture bandwidth
has power ``N0 * sample_rate_hz``. A signal of bandwidth ``B`` at in-band SNR ``s``
therefore has full-band "SNR" lower by ``10 log10(sample_rate_hz / B)`` — which is why
the paper's sub-noise (-30 dB) packets are invisible to an energy detector
but still carry enough correlation gain to be detected.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "signal_power",
    "awgn",
    "noise_for_band_snr",
    "scale_to_snr",
    "complex_gain",
    "add_at",
]


def signal_power(x: np.ndarray) -> float:
    """Mean power of a complex signal."""
    if len(x) == 0:
        return 0.0
    return float(np.mean(np.abs(x) ** 2))


def awgn(
    x: np.ndarray,
    snr_db: float,
    rng: np.random.Generator,
    measured_power: float | None = None,
) -> np.ndarray:
    """Add complex white Gaussian noise at the given SNR.

    Args:
        x: Clean complex signal.
        snr_db: Desired ratio of signal power to total noise power at the
            signal's sample rate.
        rng: Random generator (callers must pass one; no global state).
        measured_power: Override for the signal power (useful when ``x``
            contains silence that would bias the estimate).
    """
    power = signal_power(x) if measured_power is None else measured_power
    if power <= 0:
        raise ConfigurationError("cannot set an SNR for a zero-power signal")
    noise_power = power / (10 ** (snr_db / 10))
    noise = rng.normal(scale=np.sqrt(noise_power / 2), size=(len(x), 2))
    return x + noise[:, 0] + 1j * noise[:, 1]


def noise_for_band_snr(
    signal_pwr: float, snr_db: float, signal_bw: float, sample_rate_hz: float
) -> float:
    """Full-band noise power that yields ``snr_db`` inside ``signal_bw``.

    Returns the total complex-noise power to generate at sample rate
    ``sample_rate_hz`` so that the noise falling inside the signal's bandwidth is
    ``signal_pwr / 10**(snr_db/10)``.
    """
    if signal_bw <= 0 or sample_rate_hz <= 0 or signal_bw > sample_rate_hz:
        raise ConfigurationError("need 0 < signal_bw <= sample_rate_hz")
    in_band_noise = signal_pwr / (10 ** (snr_db / 10))
    return in_band_noise * sample_rate_hz / signal_bw


def scale_to_snr(
    x: np.ndarray, snr_db: float, noise_power: float, signal_bw: float, sample_rate_hz: float
) -> np.ndarray:
    """Scale ``x`` so its in-band SNR against ``noise_power`` is ``snr_db``.

    The dual of :func:`noise_for_band_snr`: given a fixed full-band noise
    power (the scene's common noise floor), compute the amplitude at which
    a packet must be injected to achieve a target in-band SNR.
    """
    if signal_bw <= 0 or sample_rate_hz <= 0 or signal_bw > sample_rate_hz:
        raise ConfigurationError("need 0 < signal_bw <= sample_rate_hz")
    current = signal_power(x)
    if current <= 0:
        raise ConfigurationError("cannot scale a zero-power signal")
    in_band_noise = noise_power * signal_bw / sample_rate_hz
    target = in_band_noise * (10 ** (snr_db / 10))
    return x * np.sqrt(target / current)


def complex_gain(
    x: np.ndarray, amplitude: float = 1.0, phase_rad: float = 0.0
) -> np.ndarray:
    """Apply a flat complex channel gain."""
    return x * (amplitude * np.exp(1j * phase_rad))


def add_at(buffer: np.ndarray, offset: int, x: np.ndarray) -> None:
    """Add ``x`` into ``buffer`` starting at ``offset``, clipping overhang.

    Packets that start before 0 or run past the end of the buffer are
    truncated rather than rejected so scene composition can place traffic
    at the capture boundaries.
    """
    start = max(offset, 0)
    stop = min(offset + len(x), len(buffer))
    if stop <= start:
        return
    buffer[start:stop] += x[start - offset : stop - offset]
