"""Pluggable array-compute backend for the PHY hot loops.

The modem hot loops (LoRa sync refinement, O-QPSK rail shaping, FSK
discriminator filtering, SIC gain fitting) are expressed twice: once as
the historical per-element Python loops, and once as vectorized kernels
in this module. Which one runs is a process-wide switch in the spirit of
``GALIOT_FASTCORR``:

``GALIOT_BACKEND=numpy`` (default)
    Vectorized kernels, ``complex128`` throughout — the *reference*
    profile. Results are mathematically identical to the legacy loops
    (same sums in a different association order), and decode results are
    pinned identical per modem by the equivalence tests.
``GALIOT_BACKEND=fast`` (aliases ``numpy-fast``, ``complex64``)
    The same kernels computing internally in ``complex64``/``float32``.
    Half the memory traffic on the kernel inner loops; opt-in because
    single precision is an *accuracy* trade, gated by the equivalence
    assertions in ``benchmarks/bench_phy.py`` (which records the decode
    agreement of this profile next to its speedup). Kernel *outputs* are
    cast back to the canonical ``complex128``/``float64`` dtypes so the
    :mod:`repro.contracts` boundaries stay satisfied — precision is a
    kernel-internal policy, never an API-visible dtype change.
``GALIOT_BACKEND=off`` (aliases ``0``, ``false``, ``no``)
    Every call site falls back to the legacy loop, bit-identical to the
    pre-backend releases.

The surface is deliberately array-API shaped: a :class:`Backend` names
an array namespace (``xp``) plus a dtype policy, and every kernel reads
arrays through that namespace. A GPU backend (CuPy, or any array-API
namespace) plugs in by constructing ``Backend(name="cupy", xp=cupy,
...)`` and passing it to :func:`set_backend` — no kernel rewrites, which
is the portability argument NN-Defined Modulator makes for tensor-op
PHYs. Only the NumPy backends ship here (the repo adds no dependencies);
the seam is the point.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Any

import numpy as np
import numpy.typing as npt

from ..errors import ConfigurationError

__all__ = [
    "Backend",
    "NUMPY_REFERENCE",
    "NUMPY_FAST",
    "LEGACY",
    "get_backend",
    "set_backend",
    "backend_enabled",
    "derotate",
    "block_correlation_metrics",
    "oqpsk_rails_modulate",
    "oqpsk_rails_demodulate",
    "cumulative_xor",
    "nibble_bits",
    "blocked_ls_subtract",
]


@dataclass(frozen=True)
class Backend:
    """One array-compute profile: a namespace plus a dtype policy.

    Attributes:
        name: Registry name (``"numpy"``, ``"numpy-fast"``, ``"off"``).
        xp: The array namespace the kernels compute in. NumPy here; any
            array-API-compatible namespace (CuPy, ...) fits the same
            slot.
        complex_dtype: Working complex dtype of the kernel inner loops.
        real_dtype: Matching real dtype.
        enabled: ``False`` routes every call site to its legacy loop.
    """

    name: str
    xp: Any
    complex_dtype: Any
    real_dtype: Any
    enabled: bool = True

    @property
    def fast(self) -> bool:
        """Whether this is a reduced-precision (sub-complex128) profile."""
        return np.dtype(self.complex_dtype) != np.dtype(np.complex128)

    def as_complex(self, x: np.ndarray) -> np.ndarray:
        """``x`` in the backend's working complex dtype (no-copy when
        already there)."""
        return self.xp.asarray(x, dtype=self.complex_dtype)

    def as_real(self, x: np.ndarray) -> np.ndarray:
        """``x`` in the backend's working real dtype (no-copy when
        already there)."""
        return self.xp.asarray(x, dtype=self.real_dtype)


NUMPY_REFERENCE = Backend(
    name="numpy", xp=np, complex_dtype=np.complex128, real_dtype=np.float64
)
NUMPY_FAST = Backend(
    name="numpy-fast", xp=np, complex_dtype=np.complex64, real_dtype=np.float32
)
LEGACY = Backend(
    name="off",
    xp=np,
    complex_dtype=np.complex128,
    real_dtype=np.float64,
    enabled=False,
)

_BY_NAME = {
    "numpy": NUMPY_REFERENCE,
    "on": NUMPY_REFERENCE,
    "fast": NUMPY_FAST,
    "numpy-fast": NUMPY_FAST,
    "complex64": NUMPY_FAST,
    "off": LEGACY,
}


def _backend_from_env() -> Backend:
    value = os.environ.get("GALIOT_BACKEND", "numpy").strip().lower()
    if value in {"off", "0", "false", "no"}:
        return LEGACY
    return _BY_NAME.get(value, NUMPY_REFERENCE)


_BACKEND: Backend = _backend_from_env()


def get_backend() -> Backend:
    """The process-wide active backend."""
    return _BACKEND


def set_backend(backend: Backend | str) -> Backend:
    """Install a backend process-wide; returns the previous one.

    Accepts a :class:`Backend` instance or a registry name
    (``"numpy"``, ``"numpy-fast"``/``"fast"``, ``"off"``). The initial
    value comes from the ``GALIOT_BACKEND`` environment variable.
    """
    global _BACKEND
    if isinstance(backend, str):
        key = backend.strip().lower()
        if key in {"0", "false", "no"}:
            key = "off"
        if key not in _BY_NAME:
            valid = ", ".join(sorted(set(_BY_NAME)))
            raise ConfigurationError(
                f"unknown backend {backend!r} (expected one of: {valid})"
            )
        backend = _BY_NAME[key]
    previous = _BACKEND
    _BACKEND = backend
    return previous


def backend_enabled() -> bool:
    """Whether call sites should use the vectorized kernels."""
    return _BACKEND.enabled


# -- kernels ---------------------------------------------------------------


@lru_cache(maxsize=64)
def _index_ramp(n: int) -> np.ndarray:
    """Cached ``arange(n)`` — the per-length half of the phasor ramp.

    The exponential itself depends on the (run-time) frequency estimate
    and cannot be cached, but the index ramp is reused across every
    derotation of the same span length, which on the LoRa path is every
    frame of one spreading factor.
    """
    ramp = np.arange(n, dtype=np.float64)
    ramp.flags.writeable = False
    return ramp


def derotate(
    iq: np.ndarray, freq_hz: float, sample_rate_hz: float
) -> np.ndarray:
    """``iq * exp(-2j pi freq_hz/sample_rate_hz * arange(len(iq)))``.

    The phasor-ramp kernel: callers slice ``iq`` down to the span that
    actually feeds the demodulator before calling (a constant phase
    offset from rebasing the index origin is irrelevant to every
    magnitude-domain consumer), so the exponential runs over the frame,
    not the segment.
    """
    backend = get_backend()
    ramp = _index_ramp(len(iq))
    rotation = (-2j * np.pi * freq_hz / sample_rate_hz) * ramp
    if backend.fast:
        phasor = backend.xp.exp(backend.as_complex(rotation))
        return np.asarray(
            backend.as_complex(iq) * phasor, dtype=np.complex128
        )
    return iq * np.exp(rotation)


def block_correlation_metrics(
    iq: np.ndarray,
    ref: np.ndarray,
    lo: int,
    n_candidates: int,
    block: int,
    n_blocks: int,
) -> np.ndarray:
    """Non-coherent blocked correlation metric for a run of candidates.

    ``metric[c] = sum_b |vdot(ref[b*block:(b+1)*block],
    iq[lo+c+b*block : lo+c+(b+1)*block])|`` for ``c`` in
    ``0..n_candidates-1`` — the LoRa ``_coarse_sync`` refinement scan as
    one stacked sliding-window/einsum contraction instead of a nested
    Python loop of ``vdot`` calls. The caller guarantees
    ``lo + n_candidates - 1 + n_blocks*block <= len(iq)``.

    Returns a float64 metric array of length ``n_candidates``.
    """
    backend = get_backend()
    used = n_blocks * block
    region = backend.as_complex(iq[lo : lo + n_candidates - 1 + used])
    ref_blocks = backend.xp.conj(
        backend.as_complex(ref[:used])
    ).reshape(n_blocks, block)
    windows = np.lib.stride_tricks.sliding_window_view(region, used)
    stacked = windows.reshape(n_candidates, n_blocks, block)
    per_block = backend.xp.einsum("cbk,bk->cb", stacked, ref_blocks)
    return np.asarray(
        backend.xp.abs(per_block).sum(axis=1), dtype=np.float64
    )


def oqpsk_rails_modulate(
    levels: npt.NDArray[np.floating], pulse: np.ndarray, sps: int
) -> np.ndarray:
    """Half-sine O-QPSK rail shaping as two rail-by-pulse outer products.

    Even-index levels fill the I rail at ``k * 2*sps``; odd-index levels
    fill the Q rail offset by ``sps``. Each rail's pulses are
    non-overlapping and contiguous, so placement is one reshape-free
    outer product per rail instead of a per-chip-pair loop. Output
    matches :func:`repro.phy.dsss.chips_to_oqpsk`'s legacy loop
    (unit-RMS over the chip span, half-chip Q tail kept).
    """
    backend = get_backend()
    levels = backend.as_real(levels)
    pulse = backend.as_real(pulse)
    n_pairs = levels.size // 2
    span = n_pairs * 2 * sps
    i_rail = backend.xp.zeros(span + sps, dtype=backend.real_dtype)
    q_rail = backend.xp.zeros(span + sps, dtype=backend.real_dtype)
    i_rail[:span] = (levels[0::2, None] * pulse).ravel()
    q_rail[sps:] = (levels[1::2, None] * pulse).ravel()
    wave = i_rail + 1j * q_rail
    rms = backend.xp.sqrt(
        backend.xp.mean(backend.xp.abs(wave[:span]) ** 2)
    )
    return np.asarray(wave / max(float(rms), 1e-12), dtype=np.complex128)


def oqpsk_rails_demodulate(
    iq: np.ndarray, n_chips: int, pulse: np.ndarray, sps: int
) -> np.ndarray:
    """Matched-filter O-QPSK chip decisions as two rail matmuls.

    The I rail's pulse windows tile ``[0, n_pairs*2*sps)`` contiguously
    and the Q rail's tile the same span offset by ``sps``, so the whole
    per-pair matched-filter loop collapses to two ``(n_pairs, 2*sps) @
    pulse`` products. Decisions are sign-of-correlation; the legacy
    loop's division by the (positive) pulse energy cannot change a sign
    and is skipped. The caller has already verified the segment covers
    ``n_pairs * 2 * sps + sps`` samples.
    """
    backend = get_backend()
    iq = np.asarray(iq, dtype=np.complex128)
    n_pairs = n_chips // 2
    span = n_pairs * 2 * sps
    pulse = backend.as_real(pulse)
    i_corr = backend.as_real(iq.real[:span]).reshape(n_pairs, 2 * sps) @ pulse
    q_corr = (
        backend.as_real(iq.imag[sps : sps + span]).reshape(n_pairs, 2 * sps)
        @ pulse
    )
    chips = np.empty(n_chips, dtype=np.uint8)
    chips[0::2] = i_corr > 0
    chips[1::2] = q_corr > 0
    return chips


def cumulative_xor(bits: npt.NDArray[np.uint8]) -> np.ndarray:
    """Running XOR of a bit array — differential (D-BPSK) encoding.

    ``out[i] = bits[0] ^ ... ^ bits[i]``, bit-identical to the legacy
    per-bit state loop.
    """
    return np.bitwise_xor.accumulate(np.asarray(bits, dtype=np.uint8))


def nibble_bits(symbols: npt.NDArray[np.uint8]) -> np.ndarray:
    """LSB-first 4-bit expansion of a symbol array (802.15.4 order).

    Bit-identical to the legacy per-symbol loop in
    :func:`repro.phy.dsss.symbols_to_bits`.
    """
    arr = np.asarray(symbols, dtype=np.uint8).reshape(-1, 1)
    shifts = np.arange(4, dtype=np.uint8)
    return ((arr >> shifts) & 1).astype(np.uint8).ravel()


def blocked_ls_subtract(
    ref: np.ndarray, region: np.ndarray, block: int
) -> tuple[np.ndarray, complex]:
    """Per-block least-squares subtraction of ``ref`` from ``region``.

    The SIC gain-fit loop as one batched operation: full blocks reshape
    to a ``(n_blocks, block)`` matrix whose per-row energies and
    cross-correlations come from two einsum contractions; the remainder
    block (if any) is fitted scalar-style. Blocks with zero reference
    energy are left unchanged (the subtraction never amplifies), exactly
    like the legacy loop.

    Returns:
        ``(residual_region, first_gain)`` where ``first_gain`` is the
        fitted gain of the block at offset 0 (``0j`` when degenerate).
    """
    backend = get_backend()
    n = len(ref)
    out = region.copy()
    first_gain = 0j
    n_full = n // block
    if n_full:
        ref_mat = backend.as_complex(ref[: n_full * block]).reshape(
            n_full, block
        )
        region_mat = backend.as_complex(region[: n_full * block]).reshape(
            n_full, block
        )
        energies = backend.xp.einsum(
            "ij,ij->i", ref_mat.real, ref_mat.real
        ) + backend.xp.einsum("ij,ij->i", ref_mat.imag, ref_mat.imag)
        numerators = backend.xp.einsum(
            "ij,ij->i", backend.xp.conj(ref_mat), region_mat
        )
        good = energies > 0
        gains = backend.xp.zeros(n_full, dtype=backend.complex_dtype)
        gains[good] = numerators[good] / energies[good]
        out[: n_full * block] = np.asarray(
            (region_mat - gains[:, None] * ref_mat).ravel(),
            dtype=np.complex128,
        )
        if bool(good[0]):
            first_gain = complex(gains[0])
    pos = n_full * block
    if pos < n:
        tail_ref = ref[pos:]
        tail = region[pos:]
        energy = float(np.sum(np.abs(tail_ref) ** 2))
        if energy > 0:
            gain = complex(np.sum(np.conj(tail_ref) * tail) / energy)
            if pos == 0:
                first_gain = gain
            out[pos:] = tail - gain * tail_ref
    return out, first_gain
