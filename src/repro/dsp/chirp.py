"""Chirp generation for Chirp Spread Spectrum (LoRa).

A LoRa symbol with spreading factor ``SF`` occupies ``N = 2**SF`` chips
spread across the signal bandwidth ``BW``; at the critically-sampled rate
``sample_rate_hz == BW`` the base upchirp is

    b[n] = exp(j * pi * (n^2 / N - n)),   n = 0..N-1

whose instantaneous frequency sweeps linearly from ``-BW/2`` to ``+BW/2``.
Data symbol ``k`` is the base chirp cyclically shifted by ``k`` chips, which
after multiplication by the conjugate downchirp becomes a complex tone at
FFT bin ``k`` — the entire demodulator is one FFT.

All generators support integer oversampling so chirps can be embedded in a
wider capture (the paper's RTL-SDR samples 1 MHz around an 868 MHz LoRa
channel of 125 kHz, an oversampling factor of 8).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "base_upchirp",
    "base_downchirp",
    "lora_symbol",
    "linear_chirp",
    "oversampling_factor",
]


def oversampling_factor(sample_rate_hz: float, bw: float) -> int:
    """Integer oversampling factor ``sample_rate_hz / bw``.

    Raises:
        ConfigurationError: if ``sample_rate_hz`` is not an integer multiple of ``bw``.
    """
    ratio = sample_rate_hz / bw
    factor = int(round(ratio))
    if factor < 1 or abs(ratio - factor) > 1e-9:
        raise ConfigurationError(
            f"sample rate {sample_rate_hz} must be an integer multiple of bandwidth {bw}"
        )
    return factor


def base_upchirp(sf: int, oversample: int = 1) -> np.ndarray:
    """Base (symbol 0) upchirp of ``2**sf * oversample`` complex samples."""
    if not 5 <= sf <= 12:
        raise ConfigurationError("sf must be in 5..12")
    if oversample < 1:
        raise ConfigurationError("oversample must be >= 1")
    n_chips = 1 << sf
    n = np.arange(n_chips * oversample) / oversample
    phase = np.pi * (n**2 / n_chips - n)
    return np.exp(1j * phase)


def base_downchirp(sf: int, oversample: int = 1) -> np.ndarray:
    """Conjugate of :func:`base_upchirp`; sweeps ``+BW/2 -> -BW/2``."""
    return np.conj(base_upchirp(sf, oversample))


def lora_symbol(symbol: int, sf: int, oversample: int = 1) -> np.ndarray:
    """Waveform of data symbol ``symbol`` (0..2**sf - 1).

    The symbol is the base upchirp cyclically advanced by ``symbol`` chips,
    so its instantaneous frequency starts at
    ``-BW/2 + symbol * BW / 2**sf`` and wraps once through the band edge.
    """
    n_chips = 1 << sf
    if not 0 <= symbol < n_chips:
        raise ConfigurationError(f"symbol must be in 0..{n_chips - 1}")
    base = base_upchirp(sf, oversample)
    return np.roll(base, -symbol * oversample)


def linear_chirp(
    f_start: float, f_stop: float, duration: float, sample_rate_hz: float, phase0: float = 0.0
) -> np.ndarray:
    """Generic complex linear chirp from ``f_start`` to ``f_stop`` Hz."""
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    n = int(round(duration * sample_rate_hz))
    t = np.arange(n) / sample_rate_hz
    sweep_rate = (f_stop - f_start) / duration
    phase = 2 * np.pi * (f_start * t + 0.5 * sweep_rate * t**2) + phase0
    return np.exp(1j * phase)
