"""Frequency discrimination for FSK demodulation.

The quadrature (polar) discriminator is the workhorse of every FSK-family
demodulator in this package: the angle of ``x[n] * conj(x[n-1])`` is the
per-sample phase advance, i.e. instantaneous frequency scaled by
``2 pi / sample_rate_hz``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["quadrature_demod", "instantaneous_frequency"]


def quadrature_demod(x: np.ndarray, gain: float = 1.0) -> np.ndarray:
    """Per-sample phase advance of ``x`` times ``gain``.

    Output has ``len(x) - 1`` samples. With
    ``gain = sample_rate_hz / (2 * pi)`` the output is instantaneous frequency in Hz.
    """
    if len(x) < 2:
        return np.zeros(0)
    return gain * np.angle(x[1:] * np.conj(x[:-1]))


def instantaneous_frequency(x: np.ndarray, sample_rate_hz: float) -> np.ndarray:
    """Instantaneous frequency in Hz (length ``len(x) - 1``)."""
    return quadrature_demod(x, gain=sample_rate_hz / (2 * np.pi))
