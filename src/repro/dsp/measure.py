"""Signal measurements: power, SNR estimation, occupied bandwidth.

The conventions here back the SNR definition documented in
:mod:`repro.dsp.channel`: packet SNR is measured inside the signal's own
occupied bandwidth, not across the full capture.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "power",
    "power_db",
    "rms",
    "papr_db",
    "estimate_noise_floor",
    "estimate_snr_db",
    "occupied_bandwidth",
]


def power(x: np.ndarray) -> float:
    """Mean power (|x|^2 averaged)."""
    if len(x) == 0:
        return 0.0
    return float(np.mean(np.abs(x) ** 2))


def power_db(x: np.ndarray, floor_db: float = -300.0) -> float:
    """Mean power in dB, clamped at ``floor_db`` for silent input."""
    p = power(x)
    if p <= 0:
        return floor_db
    return float(10 * np.log10(p))


def rms(x: np.ndarray) -> float:
    """Root-mean-square amplitude."""
    return float(np.sqrt(power(x)))


def papr_db(x: np.ndarray) -> float:
    """Peak-to-average power ratio in dB."""
    p = power(x)
    if p <= 0:
        raise ConfigurationError("PAPR undefined for a zero-power signal")
    peak = float(np.max(np.abs(x) ** 2))
    return float(10 * np.log10(peak / p))


def estimate_noise_floor(x: np.ndarray, window: int = 64, percentile: float = 25.0) -> float:
    """Estimate the noise power of a stream with intermittent packets.

    Splits the stream into windows, computes per-window power and takes a
    low percentile — packets occupy a minority of windows in a
    duty-cycled IoT band, so the quiet windows reveal the floor.
    """
    if window < 1:
        raise ConfigurationError("window must be >= 1")
    if len(x) < window:
        return power(x)
    n_windows = len(x) // window
    trimmed = x[: n_windows * window]
    window_power = np.mean(
        np.abs(trimmed.reshape(n_windows, window)) ** 2, axis=1
    )
    return float(np.percentile(window_power, percentile))


def estimate_snr_db(signal_region: np.ndarray, noise_region: np.ndarray) -> float:
    """SNR estimate from a packet region and a known-quiet region.

    The packet region contains signal + noise, so the noise power is
    subtracted before forming the ratio (clamped to a tiny positive value
    when the estimate goes negative).
    """
    noise_p = power(noise_region)
    total_p = power(signal_region)
    if noise_p <= 0:
        raise ConfigurationError("noise region has zero power")
    sig_p = max(total_p - noise_p, noise_p * 1e-6)
    return float(10 * np.log10(sig_p / noise_p))


def occupied_bandwidth(x: np.ndarray, sample_rate_hz: float, fraction: float = 0.99) -> float:
    """Bandwidth containing ``fraction`` of the total signal energy.

    Computed from the centred power spectrum: bins are sorted by energy
    and accumulated until ``fraction`` of the total is covered; the
    result is the bin count times the bin width. Robust to asymmetric
    spectra (e.g. an FSK tone pair).
    """
    if not 0 < fraction <= 1:
        raise ConfigurationError("fraction must be in (0, 1]")
    if len(x) == 0:
        return 0.0
    spectrum = np.abs(np.fft.fft(x)) ** 2
    total = spectrum.sum()
    if total <= 0:
        return 0.0
    order = np.argsort(spectrum)[::-1]
    cum = np.cumsum(spectrum[order])
    n_bins = int(np.searchsorted(cum, fraction * total) + 1)
    return n_bins * sample_rate_hz / len(x)
