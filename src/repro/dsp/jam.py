"""Jammer waveform synthesis primitives.

The adversarial scenario pack (:mod:`repro.net.adversary`) injects three
classic interference shapes into simulated captures — the same shapes
the SDR penetration-testing literature throws at BLE/Zigbee stacks and
ChirpOTLE scripts against LoRaWAN channels:

* a **continuous-wave (CW) tone** parked on one frequency — the cheapest
  jammer there is, and the one a kill filter can notch;
* a **swept tone** sawtooth-chirping across a band — harder to notch,
  periodically clobbering every narrowband channel in its span;
* **pulsed wideband noise** — duty-cycled broadband bursts that look
  like a sudden noise-floor rise to any receiver underneath.

These are pure waveform generators: deterministic functions of their
arguments (the pulsed jammer additionally of the generator handed in),
returning unit-structure complex128 I/Q that the caller scales to the
desired jam power. Attack *placement* (when, how strong, against whom)
lives in :class:`repro.net.adversary.AttackPlan`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["cw_tone", "swept_tone", "pulsed_noise"]


def cw_tone(
    n_samples: int,
    sample_rate_hz: float,
    freq_hz: float,
    phase_rad: float = 0.0,
) -> np.ndarray:
    """A unit-amplitude complex exponential at ``freq_hz``.

    Args:
        n_samples: Length of the burst in samples.
        sample_rate_hz: Sample rate of the target capture.
        freq_hz: Tone frequency (baseband offset from the capture
            centre); must fit inside the capture's Nyquist band.
        phase_rad: Initial carrier phase.

    Raises:
        ConfigurationError: for a non-positive rate, negative length, or
            a tone outside the representable band.
    """
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample_rate_hz must be positive")
    if n_samples < 0:
        raise ConfigurationError("n_samples must be >= 0")
    if abs(freq_hz) > sample_rate_hz / 2:
        raise ConfigurationError(
            f"tone at {freq_hz:g} Hz is outside the ±{sample_rate_hz / 2:g} Hz band"
        )
    n = np.arange(n_samples)
    return np.exp(1j * (2 * np.pi * freq_hz * n / sample_rate_hz + phase_rad))


def swept_tone(
    n_samples: int,
    sample_rate_hz: float,
    f_lo_hz: float,
    f_hi_hz: float,
    period_s: float,
    phase_rad: float = 0.0,
) -> np.ndarray:
    """A unit-amplitude sawtooth sweep from ``f_lo_hz`` to ``f_hi_hz``.

    The instantaneous frequency ramps linearly across the span every
    ``period_s`` seconds and snaps back (a sawtooth, not a triangle —
    the shape ChirpOTLE-style channel jammers use). The phase is the
    exact integral of the instantaneous frequency, so the waveform is
    continuous within each sweep.

    Raises:
        ConfigurationError: for an empty span, non-positive period, or a
            span outside the representable band.
    """
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample_rate_hz must be positive")
    if n_samples < 0:
        raise ConfigurationError("n_samples must be >= 0")
    if f_hi_hz <= f_lo_hz:
        raise ConfigurationError("need f_lo_hz < f_hi_hz")
    if period_s <= 0:
        raise ConfigurationError("period_s must be positive")
    if abs(f_lo_hz) > sample_rate_hz / 2 or abs(f_hi_hz) > sample_rate_hz / 2:
        raise ConfigurationError(
            f"sweep span [{f_lo_hz:g}, {f_hi_hz:g}] Hz exceeds the "
            f"±{sample_rate_hz / 2:g} Hz band"
        )
    t = np.arange(n_samples) / sample_rate_hz
    tau = np.mod(t, period_s)  # time within the current sweep
    rate = (f_hi_hz - f_lo_hz) / period_s
    # phase(tau) = 2*pi * (f_lo*tau + rate*tau^2/2), restarted per sweep.
    phase = 2 * np.pi * (f_lo_hz * tau + 0.5 * rate * tau**2)
    return np.exp(1j * (phase + phase_rad))


def pulsed_noise(
    n_samples: int,
    sample_rate_hz: float,
    period_s: float,
    duty: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Duty-cycled bursts of unit-power complex white noise.

    Each period ``[k*period, (k+1)*period)`` starts with ``duty*period``
    seconds of noise at unit mean power; the rest of the period is
    silent. The *on*-window power is unit regardless of duty, so the
    caller's scale factor sets the in-burst jam power directly.

    Args:
        rng: Noise source. Hand in a generator seeded from the attack
            plan so the burst is bit-identical across runs.

    Raises:
        ConfigurationError: for a non-positive period or a duty outside
            ``[0, 1]``.
    """
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample_rate_hz must be positive")
    if n_samples < 0:
        raise ConfigurationError("n_samples must be >= 0")
    if period_s <= 0:
        raise ConfigurationError("period_s must be positive")
    if not 0.0 <= duty <= 1.0:
        raise ConfigurationError("duty must be in [0, 1]")
    if duty == 0.0 or n_samples == 0:
        return np.zeros(n_samples, dtype=complex)
    noise = (
        rng.normal(size=n_samples) + 1j * rng.normal(size=n_samples)
    ) / np.sqrt(2)
    t = np.arange(n_samples) / sample_rate_hz
    gate = np.mod(t, period_s) < duty * period_s
    return noise * gate
