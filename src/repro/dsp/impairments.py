"""Hardware impairment models for cheap SDR front-ends.

The paper's gateway is an RTL-SDR: an 8-bit ADC behind a consumer tuner.
These helpers model the impairments that matter for detection and joint
decoding: carrier frequency offset (crystal ppm error), static phase,
IQ gain/phase imbalance, DC offset (the RTL-SDR's well-known centre
spike), ADC quantization/clipping, and sample-clock drift.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "apply_cfo",
    "apply_phase",
    "apply_iq_imbalance",
    "apply_dc_offset",
    "quantize",
    "apply_clock_drift",
    "cfo_from_ppm",
]


def cfo_from_ppm(ppm: float, carrier_hz: float) -> float:
    """Carrier frequency offset in Hz for a crystal error in ppm."""
    return ppm * 1e-6 * carrier_hz


def apply_cfo(x: np.ndarray, cfo_hz: float, sample_rate_hz: float) -> np.ndarray:
    """Rotate ``x`` by a constant frequency offset."""
    n = np.arange(len(x))
    return x * np.exp(2j * np.pi * cfo_hz * n / sample_rate_hz)


def apply_phase(x: np.ndarray, phase_rad: float) -> np.ndarray:
    """Apply a static phase rotation."""
    return x * np.exp(1j * phase_rad)


def apply_iq_imbalance(
    x: np.ndarray, gain_db: float = 0.0, phase_deg: float = 0.0
) -> np.ndarray:
    """Model receiver IQ imbalance.

    Args:
        gain_db: Amplitude mismatch of the Q rail relative to I.
        phase_deg: Quadrature error in degrees.

    Uses the standard model ``y = mu * x + nu * conj(x)`` with
    ``mu = (1 + g e^{j phi}) / 2`` and ``nu = (1 - g e^{j phi}) / 2``.
    """
    g = 10 ** (gain_db / 20)
    phi = np.deg2rad(phase_deg)
    mu = 0.5 * (1 + g * np.exp(1j * phi))
    nu = 0.5 * (1 - g * np.exp(1j * phi))
    return mu * x + nu * np.conj(x)


def apply_dc_offset(x: np.ndarray, dc: complex) -> np.ndarray:
    """Add a constant complex DC offset (RTL-SDR centre spike)."""
    return x + dc


def quantize(x: np.ndarray, n_bits: int, full_scale: float) -> np.ndarray:
    """Quantize I and Q to ``n_bits`` with clipping at ``full_scale``.

    Models a mid-rise uniform ADC: values are clipped to
    ``[-full_scale, +full_scale]`` then rounded to ``2**n_bits`` levels.

    Raises:
        ConfigurationError: for a non-positive bit depth or full scale.
    """
    if n_bits < 1:
        raise ConfigurationError("n_bits must be >= 1")
    if full_scale <= 0:
        raise ConfigurationError("full_scale must be positive")
    levels = 1 << n_bits
    step = 2 * full_scale / levels

    def _quant(real: np.ndarray) -> np.ndarray:
        clipped = np.clip(real, -full_scale, full_scale - step / 2)
        return (np.floor(clipped / step) + 0.5) * step

    return _quant(x.real) + 1j * _quant(x.imag)


def apply_clock_drift(x: np.ndarray, ppm: float) -> np.ndarray:
    """Resample ``x`` by a factor ``1 + ppm * 1e-6`` (linear interp).

    Positive ppm means the transmitter clock runs fast relative to the
    receiver, so the received waveform appears slightly compressed.
    """
    if len(x) < 2 or ppm == 0:
        return x.copy()
    factor = 1 + ppm * 1e-6
    positions = np.arange(len(x)) * factor
    positions = positions[positions <= len(x) - 1]
    idx = positions.astype(int)
    frac = positions - idx
    idx_next = np.minimum(idx + 1, len(x) - 1)
    return (1 - frac) * x[idx] + frac * x[idx_next]
