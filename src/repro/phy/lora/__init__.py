"""LoRa (CSS) PHY."""

from .modem import LoRaModem
from . import encoding

__all__ = ["LoRaModem", "encoding"]
