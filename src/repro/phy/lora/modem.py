"""LoRa CSS modem.

Structure of an uplink frame (matching the SX1276 the paper transmits
with):

    N_pre upchirps | 2 sync-word chirps | 2.25 downchirps (SFD) | data

Data symbols come from the encode chain in
:mod:`repro.phy.lora.encoding`. The modem natively oversamples the chirp
bandwidth so frames drop straight into a wider capture: the default
(SF7, BW 125 kHz, oversample 8) emits at the paper's 1 MHz RTL-SDR rate.
"""

from __future__ import annotations

import numpy as np

from ...dsp.backend import backend_enabled, block_correlation_metrics, derotate
from ...dsp.chirp import base_downchirp, base_upchirp, lora_symbol
from ...errors import ConfigurationError, DecodeError
from ...phy.base import FrameResult, Modem, ModulationClass
from ...phy.css import dechirp, demodulate_symbols, modulate_symbols
from ...phy.frames import sample_sync
from . import encoding

__all__ = ["LoRaModem"]


class LoRaModem(Modem):
    """CSS modem with the full LoRa encode chain.

    Args:
        sf: Spreading factor, 5..12.
        bw: Chirp bandwidth in Hz.
        oversample: Integer native oversampling (fs = bw * oversample).
        cr: Coding-rate index 1..4 (codeword length 4 + cr).
        preamble_len: Number of preamble upchirps.
        sync_word: One-byte network sync word.
        sync_threshold: Normalized correlation needed to declare sync.
        implicit_length: When set, run in LoRa's implicit-header mode:
            no length header is transmitted and every frame carries
            exactly this many payload bytes (agreed out of band).
    """

    name = "lora"
    modulation = ModulationClass.CSS

    def __init__(
        self,
        sf: int = 7,
        bw: float = 125e3,
        oversample: int = 8,
        cr: int = 4,
        preamble_len: int = 8,
        sync_word: int = 0x12,
        sync_threshold: float = 0.30,
        implicit_length: int | None = None,
    ):
        if not 5 <= sf <= 12:
            raise ConfigurationError("sf must be in 5..12")
        if cr not in (1, 2, 3, 4):
            raise ConfigurationError("cr must be in 1..4")
        if oversample < 1:
            raise ConfigurationError("oversample must be >= 1")
        if preamble_len < 4:
            raise ConfigurationError("preamble must be at least 4 chirps")
        self.sf = sf
        self.bw = float(bw)
        self.oversample = int(oversample)
        self.cr = cr
        self.preamble_len = int(preamble_len)
        self.sync_word = int(sync_word) & 0xFF
        self._threshold = float(sync_threshold)
        if implicit_length is not None and not 0 <= implicit_length <= 255:
            raise ConfigurationError("implicit_length must be in 0..255")
        self.implicit_length = implicit_length

    # -- characteristics -----------------------------------------------------

    @property
    def sample_rate(self) -> float:
        return self.bw * self.oversample

    @property
    def bandwidth(self) -> float:
        return self.bw

    @property
    def bit_rate(self) -> float:
        # sf bits per symbol, 2**sf / bw symbol duration, FEC rate 4/(4+cr).
        return self.sf * (self.bw / (1 << self.sf)) * 4 / (4 + self.cr)

    @property
    def max_payload(self) -> int:
        return 255

    @property
    def samples_per_symbol(self) -> int:
        """Native samples per chirp symbol."""
        return (1 << self.sf) * self.oversample

    @property
    def sync_block(self) -> int:
        """Quarter-symbol coherent blocks tolerate ppm-scale CFO."""
        return max(self.samples_per_symbol // 4, 64)

    @property
    def sync_decimation(self) -> int:
        """CSS synchronizes at chip rate; fine sync absorbs the error."""
        return self.oversample

    # -- waveforms -------------------------------------------------------------

    def _sync_symbols(self) -> tuple[int, int]:
        high = ((self.sync_word >> 4) & 0x0F) << 3
        low = (self.sync_word & 0x0F) << 3
        return high, low

    def preamble_waveform(self) -> np.ndarray:
        """The run of ``preamble_len`` base upchirps."""
        up = base_upchirp(self.sf, self.oversample)
        return np.tile(up, self.preamble_len)

    def _sfd_waveform(self) -> np.ndarray:
        down = base_downchirp(self.sf, self.oversample)
        quarter = down[: len(down) // 4]
        return np.concatenate([down, down, quarter])

    def sync_waveform(self) -> np.ndarray:
        """Preamble + sync chirps + SFD — the full frame prefix."""
        s1, s2 = self._sync_symbols()
        sync = np.concatenate(
            [
                lora_symbol(s1, self.sf, self.oversample),
                lora_symbol(s2, self.sf, self.oversample),
            ]
        )
        return np.concatenate([self.preamble_waveform(), sync, self._sfd_waveform()])

    def modulate(self, payload: bytes) -> np.ndarray:
        if self.implicit_length is not None:
            if len(payload) != self.implicit_length:
                raise ConfigurationError(
                    f"implicit mode expects exactly {self.implicit_length} "
                    f"payload bytes, got {len(payload)}"
                )
            symbols = encoding.encode_implicit(payload, self.sf, self.cr)
        else:
            symbols = encoding.encode_to_symbols(payload, self.sf, self.cr)
        data = modulate_symbols(symbols, self.sf, self.oversample)
        return np.concatenate([self.sync_reference(), data])

    # -- demodulation --------------------------------------------------------------

    def _tone_bin(self, iq: np.ndarray, start: int, n_symbols: int, up: bool) -> float:
        """Fractional dechirped-tone bin averaged over ``n_symbols``.

        Returns a signed bin offset in (-N/2, N/2]; 0 means the tone sits
        exactly where a perfectly-synchronized symbol-0 chirp would.
        """
        n = 1 << self.sf
        n_sym = self.samples_per_symbol
        stop = start + n_symbols * n_sym
        if start < 0 or stop > len(iq):
            return 0.0
        tones = dechirp(
            iq[start:stop], self.sf, self.oversample, self.bw, up=up
        )
        spectra = np.abs(np.fft.fft(tones.reshape(n_symbols, n), axis=1))
        mean = spectra.mean(axis=0)
        peak = int(np.argmax(mean))
        # Parabolic interpolation for the fractional bin.
        left = mean[(peak - 1) % n]
        right = mean[(peak + 1) % n]
        centre = mean[peak]
        denom = left - 2 * centre + right
        frac = 0.0 if denom == 0 else 0.5 * (left - right) / denom
        value = peak + frac
        if value > n / 2:
            value -= n
        return float(value)

    def _combined_offset_hz(self, iq: np.ndarray, start: int) -> float:
        """Combined CFO + timing offset as seen by the dechirp FFT.

        A carrier offset and a (sub-symbol) timing error both shift the
        dechirped tone of *every* upchirp window by the same constant
        number of bins when processing stays on one fixed sample grid.
        Measuring that shift on the preamble and derotating the whole
        segment therefore compensates both at once for the data symbols
        — the trick that makes this demodulator tolerate the crystal
        offsets of real transmitters.
        """
        bins = self._tone_bin(iq, start, min(self.preamble_len, 4), up=True)
        return bins * self.bw / (1 << self.sf)

    def _coarse_sync(self, iq: np.ndarray) -> tuple[int, float]:
        """CFO-tolerant sync at chip rate.

        Correlating the 12+-symbol sync reference at the oversampled
        capture rate costs dozens of segment-length FFTs; striding both
        the segment and the reference down to one sample per chip cuts
        that by ~oversample^2 while keeping all of the correlation's
        processing gain. The resulting timing quantization (one chip)
        is absorbed by the combined CFO+timing estimator that runs
        right after.
        """
        os_ = self.oversample
        if os_ == 1:
            return sample_sync(
                iq,
                self.sync_reference(),
                self._threshold,
                block=max((1 << self.sf) // 4, 32),
            )
        dec = iq[::os_]
        ref_dec = self.sync_reference()[::os_]
        start, score = sample_sync(
            dec, ref_dec, self._threshold, block=max((1 << self.sf) // 4, 32)
        )
        # Local full-rate refinement: a fractional-chip timing error
        # cannot be absorbed by derotation (the wrapped halves of each
        # chirp interfere destructively), so recover exact-sample timing
        # by scanning +-1 chip around the decimated peak. Non-coherent
        # per-block combining keeps the refinement CFO-proof.
        coarse = start * os_
        ref = self.sync_reference()
        block = max((1 << self.sf) // 4 * os_, 64)
        n_blocks = max(len(ref) // block, 1)
        if backend_enabled():
            lo = max(coarse - os_, 0)
            # Candidates whose full-reference window would run past the
            # segment score nothing in the legacy loop; clamp them out
            # up front.
            hi = min(coarse + os_, len(iq) - len(ref))
            if hi < lo:
                return coarse, score
            metrics = block_correlation_metrics(
                iq, ref, lo, hi - lo + 1, block, n_blocks
            )
            # argmax keeps the first maximum — same candidate the legacy
            # strict-greater scan settles on.
            return lo + int(np.argmax(metrics)), score
        best = coarse
        best_metric = -1.0
        for cand in range(max(coarse - os_, 0), coarse + os_ + 1):
            window = iq[cand : cand + len(ref)]
            if len(window) < len(ref):
                continue
            metric = 0.0
            for b in range(n_blocks):
                seg = slice(b * block, (b + 1) * block)
                metric += abs(np.vdot(ref[seg], window[seg]))
            if metric > best_metric:
                best_metric = metric
                best = cand
        return best, score

    def _frame_span(self) -> int:
        """Upper bound on sync + data samples one frame can occupy."""
        if self.implicit_length is not None:
            max_body = self.implicit_length + 2
        else:
            max_body = encoding.HEADER_BYTES + self.max_payload + 2
        n_data = encoding.symbols_for_body(max_body, self.sf, self.cr)
        return len(self.sync_reference()) + n_data * self.samples_per_symbol

    def demodulate(self, iq: np.ndarray) -> FrameResult:
        iq = np.asarray(iq, dtype=np.complex128)
        start, score = self._coarse_sync(iq)
        abs_start = start
        if backend_enabled():
            # Work on the sync+frame span only: the derotations below
            # then cost O(frame), not O(segment), and the cached-ramp
            # kernel applies. Rebasing the index origin to the slice
            # start adds a constant phase to the derotated samples,
            # which the magnitude-domain dechirp FFT cannot see.
            iq = iq[start : start + self._frame_span()]
            start = 0
        cfo_hz = self._combined_offset_hz(iq, start)
        if abs(cfo_hz) > 1e-3:
            if backend_enabled():
                iq = derotate(iq, cfo_hz, self.sample_rate)
            else:
                n_idx = np.arange(len(iq))
                iq = iq * np.exp(
                    -2j * np.pi * cfo_hz * n_idx / self.sample_rate
                )
            # One refinement pass: the first estimate is biased by
            # spectral leakage at half-bin offsets.
            residual = self._combined_offset_hz(iq, start)
            if abs(residual) > 1e-3:
                if backend_enabled():
                    iq = derotate(iq, residual, self.sample_rate)
                else:
                    iq = iq * np.exp(
                        -2j * np.pi * residual * n_idx / self.sample_rate
                    )
                cfo_hz += residual
        data_at = start + len(self.sync_reference())
        block = 4 + self.cr
        n_sym = self.samples_per_symbol

        def _read(n_symbols: int) -> np.ndarray:
            needed = data_at + n_symbols * n_sym
            if needed > len(iq):
                raise DecodeError("segment too short for the LoRa frame")
            symbols, _ = demodulate_symbols(
                iq[data_at:needed], n_symbols, self.sf, self.oversample, self.bw
            )
            return symbols

        if self.implicit_length is not None:
            body_len = self.implicit_length + 2
            total_symbols = encoding.symbols_for_body(
                body_len, self.sf, self.cr
            )
            symbols = _read(total_symbols)
            payload, crc_ok, corrected, bad = encoding.decode_implicit(
                symbols, self.implicit_length, self.sf, self.cr
            )
        else:
            first = _read(block)
            length = encoding.decode_header(first, self.sf, self.cr)
            body_len = encoding.HEADER_BYTES + length + 2
            total_symbols = encoding.symbols_for_body(
                body_len, self.sf, self.cr
            )
            symbols = _read(total_symbols)
            payload, crc_ok, corrected, bad = encoding.decode_symbols(
                symbols, self.sf, self.cr
            )
        return FrameResult(
            payload=payload,
            crc_ok=crc_ok,
            start=abs_start,
            sync_score=score,
            corrected_errors=corrected,
            extra={
                "uncorrectable": bad,
                "n_symbols": int(total_symbols),
                "cfo_hz": cfo_hz,
            },
        )
