"""LoRa bit-level encode/decode chain.

The on-air chain (mirrored exactly on receive) is:

    body = [len, ~len] + payload + CRC16(payload)
    -> LFSR whitening
    -> 4-bit nibbles (high nibble first)
    -> zero-nibble padding to a whole interleaver block (SF nibbles)
    -> Hamming(4, 4+CR) per nibble
    -> diagonal interleaving (SF codewords -> 4+CR on-air symbols)
    -> Gray *decoding* of each SF-bit group into the chirp index

Gray decoding at the transmitter means the receiver applies Gray
*encoding* to the demodulated FFT bin, so the dominant error event — an
off-by-one bin — lands as a single bit error that the Hamming code
repairs.

Header note: real LoRa sends an explicit header in a reduced-rate first
block; this implementation uses a simplified 2-byte header ([length,
length XOR 0xFF]) encoded at the payload coding rate. The simplification
is documented in DESIGN.md and does not affect any experiment: all
figures depend on chirp-domain behaviour, not header format.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import ChecksumError, ConfigurationError
from ...utils.bits import (
    bits_to_int,
    bytes_to_nibbles,
    int_to_bits,
    nibbles_to_bytes,
)
from ...utils.crc import CRC16_CCITT
from ...utils.gray import gray_decode_array, gray_encode_array
from ...utils.hamming import HammingCodec
from ...utils.interleaver import LoraDiagonalInterleaver
from ...utils.whitening import LoraWhitener

__all__ = [
    "HEADER_BYTES",
    "encode_to_symbols",
    "decode_header",
    "symbols_for_body",
    "blocks_for_body",
    "decode_symbols",
    "encode_implicit",
    "decode_implicit",
]

HEADER_BYTES = 2


def _chain(sf: int, cr: int) -> tuple[HammingCodec, LoraDiagonalInterleaver]:
    return HammingCodec(cr), LoraDiagonalInterleaver(sf, cr)


def blocks_for_body(body_len: int, sf: int) -> int:
    """Interleaver blocks needed for ``body_len`` bytes (2 nibbles each)."""
    n_nibbles = 2 * body_len
    return math.ceil(n_nibbles / sf)


def symbols_for_body(body_len: int, sf: int, cr: int) -> int:
    """On-air data symbols for a whitened body of ``body_len`` bytes."""
    return blocks_for_body(body_len, sf) * (4 + cr)


def encode_to_symbols(payload: bytes, sf: int, cr: int) -> np.ndarray:
    """Run the full transmit chain; returns chirp indices (0..2**sf-1).

    Raises:
        ConfigurationError: for payloads longer than 255 bytes.
    """
    payload = bytes(payload)
    if len(payload) > 255:
        raise ConfigurationError("LoRa payload must be at most 255 bytes")
    hamming, interleaver = _chain(sf, cr)
    header = bytes([len(payload), len(payload) ^ 0xFF])
    body = header + CRC16_CCITT.append(payload)
    white = LoraWhitener().whiten_bytes(body)
    nibbles = bytes_to_nibbles(white).tolist()
    while len(nibbles) % sf:
        nibbles.append(0)
    codeword_bits = hamming.encode_nibbles(np.array(nibbles, dtype=np.uint8))
    interleaved = interleaver.interleave(codeword_bits)
    groups = interleaved.reshape(-1, sf)
    values = np.array([bits_to_int(g) for g in groups], dtype=int)
    return gray_decode_array(values)


def _symbols_to_nibbles(
    symbols: np.ndarray, sf: int, cr: int
) -> tuple[np.ndarray, int, int]:
    """Inverse of the interleave/Hamming stages; returns nibbles + FEC stats."""
    hamming, interleaver = _chain(sf, cr)
    values = gray_encode_array(np.asarray(symbols, dtype=int))
    bits = np.concatenate([int_to_bits(int(v), sf) for v in values])
    deinterleaved = interleaver.deinterleave(bits)
    return hamming.decode_bits(deinterleaved)


def decode_header(
    first_block_symbols: np.ndarray, sf: int, cr: int
) -> int:
    """Recover the payload length from the first interleaver block.

    Raises:
        ChecksumError: when the redundant length check fails.
        ConfigurationError: when the wrong number of symbols is passed.
    """
    if len(first_block_symbols) != 4 + cr:
        raise ConfigurationError("first block must contain 4 + cr symbols")
    nibbles, _, _ = _symbols_to_nibbles(first_block_symbols, sf, cr)
    white = nibbles_to_bytes(nibbles[: 2 * (len(nibbles) // 2)])
    header = LoraWhitener().whiten_bytes(white)[:HEADER_BYTES]
    length, check = header[0], header[1]
    if length ^ check != 0xFF:
        raise ChecksumError("LoRa header length check failed")
    return length


def encode_implicit(payload: bytes, sf: int, cr: int) -> np.ndarray:
    """Implicit-header transmit chain: payload + CRC only, no length.

    Real LoRa's implicit (headerless) mode: both ends agree on the
    payload length out of band, saving the header airtime. Used for
    fixed-format beacons and class-B downlinks.
    """
    payload = bytes(payload)
    if len(payload) > 255:
        raise ConfigurationError("LoRa payload must be at most 255 bytes")
    hamming, interleaver = _chain(sf, cr)
    body = CRC16_CCITT.append(payload)
    white = LoraWhitener().whiten_bytes(body)
    nibbles = bytes_to_nibbles(white).tolist()
    while len(nibbles) % sf:
        nibbles.append(0)
    codeword_bits = hamming.encode_nibbles(np.array(nibbles, dtype=np.uint8))
    interleaved = interleaver.interleave(codeword_bits)
    groups = interleaved.reshape(-1, sf)
    values = np.array([bits_to_int(g) for g in groups], dtype=int)
    return gray_decode_array(values)


def decode_implicit(
    symbols: np.ndarray, payload_len: int, sf: int, cr: int
) -> tuple[bytes, bool, int, int]:
    """Implicit-header receive chain for a known ``payload_len``.

    Returns:
        ``(payload, crc_ok, corrected, uncorrectable)``.
    """
    arr = np.asarray(symbols, dtype=int)
    if arr.size % (4 + cr):
        raise ConfigurationError("symbol count must be a multiple of 4 + cr")
    nibbles, corrected, uncorrectable = _symbols_to_nibbles(arr, sf, cr)
    white = nibbles_to_bytes(nibbles[: 2 * (len(nibbles) // 2)])
    body = LoraWhitener().whiten_bytes(white)
    frame = body[: payload_len + 2]
    if len(frame) < payload_len + 2:
        raise ChecksumError("segment shorter than the agreed frame length")
    crc_ok = CRC16_CCITT.check(frame)
    return frame[:-2], crc_ok, corrected, uncorrectable


def decode_symbols(
    symbols: np.ndarray, sf: int, cr: int
) -> tuple[bytes, bool, int, int]:
    """Run the full receive chain over all data symbols of a frame.

    Returns:
        ``(payload, crc_ok, corrected, uncorrectable)``.

    Raises:
        ChecksumError: when the header length check fails.
        ConfigurationError: when the symbol count is not whole blocks.
    """
    arr = np.asarray(symbols, dtype=int)
    if arr.size % (4 + cr):
        raise ConfigurationError("symbol count must be a multiple of 4 + cr")
    nibbles, corrected, uncorrectable = _symbols_to_nibbles(arr, sf, cr)
    white = nibbles_to_bytes(nibbles[: 2 * (len(nibbles) // 2)])
    body = LoraWhitener().whiten_bytes(white)
    length, check = body[0], body[1]
    if length ^ check != 0xFF:
        raise ChecksumError("LoRa header length check failed")
    frame = body[HEADER_BYTES : HEADER_BYTES + length + 2]
    if len(frame) < length + 2:
        raise ChecksumError("frame truncated relative to header length")
    crc_ok = CRC16_CCITT.check(frame)
    return frame[:-2], crc_ok, corrected, uncorrectable
