"""BLE (LE 1M GFSK) PHY — extension technology."""

from .modem import BleModem

__all__ = ["BleModem"]
