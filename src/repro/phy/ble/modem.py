"""BLE advertising-channel modem (1 Mb/s GFSK).

Implements the LE 1M uncoded PHY shape: 1 Mbit/s GFSK with BT = 0.5 and
±250 kHz deviation, LSB-first bit order, CRC-24 (poly 0x00065B, init
0x555555) and channel-37 data whitening. Frame layout:

    preamble 0xAA | access address 0x8E89BED6 | header (2) | payload | CRC24

Header and payload are whitened; preamble and access address are not.
The whitening keystream uses this package's generic Fibonacci LFSR with
the BLE polynomial (x^7 + x^4 + 1) and the channel-37 seed; it is
self-consistent rather than bit-exact with over-the-air BLE, which no
experiment in the paper depends on.

BLE is an *extension* technology (Table 1 row 4): it is not part of the
paper's three-technology prototype but demonstrates that the universal
preamble and registry scale with software updates.
"""

from __future__ import annotations

import numpy as np

from ...dsp.backend import backend_enabled
from ...errors import ChecksumError, ConfigurationError
from ...phy.base import FrameResult, Modem, ModulationClass
from ...phy.frames import sample_sync_strided
from ...phy.fsk import fsk_demodulate_bits, fsk_frequency_track, fsk_modulate
from ...utils.bits import bits_to_bytes, bytes_to_bits
from ...utils.crc import CrcEngine
from ...utils.whitening import LfsrWhitener

__all__ = ["BleModem"]

_PREAMBLE = bytes([0xAA])
_ACCESS_ADDRESS = (0x8E89BED6).to_bytes(4, "little")
_CRC24 = CrcEngine(width=24, poly=0x00065B, init=0x555555)
_WHITEN_SEED_CH37 = 0x65  # bit6 set | channel index 37


class BleModem(Modem):
    """BLE LE-1M style GFSK modem on the advertising channel."""

    name = "ble"
    modulation = ModulationClass.FSK

    def __init__(
        self,
        bit_rate: float = 1e6,
        sps: int = 4,
        deviation_hz: float = 250e3,
        bt: float = 0.5,
        sync_threshold: float = 0.40,
    ):
        if sps < 2:
            raise ConfigurationError("sps must be >= 2")
        self._bit_rate = float(bit_rate)
        self._sps = int(sps)
        self._deviation = float(deviation_hz)
        self._bt = float(bt)
        self._threshold = float(sync_threshold)

    @property
    def sample_rate(self) -> float:
        return self._bit_rate * self._sps

    @property
    def bandwidth(self) -> float:
        return 2 * (self._deviation + self._bit_rate / 2)

    @property
    def bit_rate(self) -> float:
        return self._bit_rate

    @property
    def sps(self) -> int:
        """Samples per bit at the native rate."""
        return self._sps

    @property
    def sync_block(self) -> int:
        """4-bit coherent blocks tolerate ppm-scale CFO."""
        return 4 * self._sps

    @property
    def max_payload(self) -> int:
        return 37  # legacy advertising PDU payload limit

    # -- waveforms -------------------------------------------------------

    def _wave(self, bits) -> np.ndarray:
        return fsk_modulate(
            bits, self._sps, self._deviation, self.sample_rate, bt=self._bt
        )

    def _whitener(self) -> LfsrWhitener:
        return LfsrWhitener(taps=(7, 4), seed=_WHITEN_SEED_CH37)

    def preamble_waveform(self) -> np.ndarray:
        """Waveform of the 1-byte alternating preamble."""
        return self._wave(bytes_to_bits(_PREAMBLE, msb_first=False))

    def sync_waveform(self) -> np.ndarray:
        """Waveform of preamble + access address."""
        return self._wave(
            bytes_to_bits(_PREAMBLE + _ACCESS_ADDRESS, msb_first=False)
        )

    def modulate(self, payload: bytes) -> np.ndarray:
        payload = bytes(payload)
        if len(payload) > self.max_payload:
            raise ConfigurationError(
                f"payload of {len(payload)} exceeds {self.max_payload} bytes"
            )
        pdu = bytes([0x02, len(payload)]) + payload  # ADV_NONCONN_IND
        body = self._whitener().whiten_bytes(_CRC24.append(pdu))
        bits = np.concatenate(
            [
                bytes_to_bits(_PREAMBLE + _ACCESS_ADDRESS, msb_first=False),
                bytes_to_bits(body, msb_first=False),
            ]
        )
        return self._wave(bits)

    # -- demodulation ------------------------------------------------------

    def demodulate(self, iq: np.ndarray) -> FrameResult:
        iq = np.asarray(iq, dtype=np.complex128)
        start, score = sample_sync_strided(
            iq,
            self.sync_reference(),
            self._threshold,
            block=4 * self._sps,
            stride=max(self._sps // 4, 1),
        )
        # Frame-sized slice: bound the discriminator's filtering work.
        bound = 8 * (5 + 2 + self.max_payload + 3) * self._sps + self._sps
        iq = iq[start : start + bound]
        frame_start, start = start, 0
        track = None
        if backend_enabled():
            # One discriminator pass over the bound slice feeds both the
            # header read and the full-body read.
            track = fsk_frequency_track(
                iq, self.sample_rate, self._sps, self.bandwidth
            )
        body_at = start + 8 * (len(_PREAMBLE) + len(_ACCESS_ADDRESS)) * self._sps
        head_bits = fsk_demodulate_bits(
            iq, body_at, 16, self._sps, self.sample_rate,
            bandwidth_hz=self.bandwidth, track=track,
        )
        header = self._whitener().whiten_bytes(
            bits_to_bytes(head_bits, msb_first=False)
        )
        length = header[1]
        if length > self.max_payload:
            raise ChecksumError(f"implausible BLE PDU length {length}")
        total = 2 + length + 3  # header + payload + CRC24
        body_bits = fsk_demodulate_bits(
            iq, body_at, 8 * total, self._sps, self.sample_rate,
            bandwidth_hz=self.bandwidth, track=track,
        )
        body = self._whitener().whiten_bytes(
            bits_to_bytes(body_bits, msb_first=False)
        )
        crc_ok = _CRC24.check(body)
        return FrameResult(
            payload=body[2:-3],
            crc_ok=crc_ok,
            start=frame_start,
            sync_score=score,
            extra={"pdu_type": body[0], "length": length},
        )
