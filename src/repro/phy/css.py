"""Chirp-spread-spectrum symbol modem (the LoRa PHY core).

Symbols are cyclic shifts of a base upchirp (see :mod:`repro.dsp.chirp`).
Demodulation is the textbook dechirp-and-FFT: multiply by the conjugate
downchirp and the symbol value appears as the index of the strongest FFT
bin. At an oversampled rate the segment is first brick-wall filtered to
the chirp bandwidth and decimated back to one sample per chip.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ..contracts import iq_contract
from ..dsp.backend import backend_enabled
from ..dsp.chirp import base_downchirp, base_upchirp, lora_symbol
from ..dsp.filters import fft_bandpass
from ..errors import ConfigurationError

__all__ = [
    "modulate_symbols",
    "demodulate_symbols",
    "dechirp",
    "symbol_count",
]


def symbol_count(sf: int) -> int:
    """Number of distinct symbol values (``2**sf``)."""
    if not 5 <= sf <= 12:
        raise ConfigurationError("sf must be in 5..12")
    return 1 << sf


def modulate_symbols(symbols: npt.ArrayLike, sf: int, oversample: int = 1) -> np.ndarray:
    """Concatenate the chirp waveforms of a symbol sequence."""
    arr = np.asarray(symbols, dtype=int).ravel()
    n = symbol_count(sf)
    if arr.size and (arr.min() < 0 or arr.max() >= n):
        raise ConfigurationError(f"symbols must be in 0..{n - 1}")
    if arr.size == 0:
        return np.zeros(0, dtype=complex)
    if backend_enabled():
        # Every symbol waveform is a cyclic shift of the base upchirp,
        # so the whole frame is one fancy-index gather — bit-identical
        # to concatenating per-symbol np.roll results.
        base = base_upchirp(sf, oversample)
        idx = (
            np.arange(len(base))[None, :] + arr[:, None] * oversample
        ) % len(base)
        return base[idx].ravel()
    return np.concatenate([lora_symbol(int(s), sf, oversample) for s in arr])


def _decimate_to_chip_rate(
    iq: np.ndarray, sf: int, oversample: int, bw: float
) -> np.ndarray:
    """Filter to the chirp bandwidth and take one sample per chip."""
    if oversample == 1:
        return iq
    fs = bw * oversample
    filtered = fft_bandpass(iq, fs, (-bw / 2, bw / 2))
    return filtered[::oversample]


@iq_contract("iq")
def dechirp(
    iq: np.ndarray, sf: int, oversample: int = 1, bw: float = 125e3, up: bool = True
) -> np.ndarray:
    """Multiply a critically-resampled segment by the conjugate chirp.

    Args:
        iq: Samples at ``bw * oversample``; length is truncated to a whole
            number of symbols.
        up: True to dechirp data/preamble upchirps (multiply by the
            downchirp); False to dechirp SFD downchirps.

    Returns:
        Chip-rate samples, one dechirped tone per ``2**sf`` chips.
    """
    chips = _decimate_to_chip_rate(iq, sf, oversample, bw)
    n = symbol_count(sf)
    n_sym = len(chips) // n
    chips = chips[: n_sym * n]
    ref = base_downchirp(sf) if up else base_upchirp(sf)
    return chips * np.tile(ref, n_sym)


@iq_contract("iq")
def demodulate_symbols(
    iq: np.ndarray,
    n_symbols: int,
    sf: int,
    oversample: int = 1,
    bw: float = 125e3,
) -> tuple[np.ndarray, np.ndarray]:
    """Recover ``n_symbols`` chirp symbols starting at sample 0 of ``iq``.

    Returns:
        ``(symbols, magnitudes)``: the winning FFT bin per symbol and its
        magnitude (useful as a soft confidence for SIC ordering).

    Raises:
        ConfigurationError: if the segment is shorter than the symbols
            requested.
    """
    n = symbol_count(sf)
    needed = n_symbols * n * oversample
    if len(iq) < needed:
        raise ConfigurationError("segment shorter than the requested symbols")
    tones = dechirp(iq[:needed], sf, oversample, bw, up=True)
    frames = tones.reshape(n_symbols, n)
    spectra = np.abs(np.fft.fft(frames, axis=1))
    symbols = np.argmax(spectra, axis=1).astype(int)
    magnitudes = spectra[np.arange(n_symbols), symbols]
    return symbols, magnitudes
