"""PHY layer: modem interface, modulation cores and the Table-1 registry.

Concrete technologies:

* :class:`~repro.phy.lora.LoRaModem` — Chirp Spread Spectrum
* :class:`~repro.phy.xbee.XBeeModem` — 2-GFSK (802.15.4-SUN style)
* :class:`~repro.phy.zwave.ZWaveModem` — BFSK (ITU-T G.9959 R2)
* :class:`~repro.phy.ble.BleModem` — GFSK (LE 1M) [extension]
* :class:`~repro.phy.sigfox.SigfoxModem` — D-BPSK UNB [extension]
* :class:`~repro.phy.oqpsk154.OQpsk154Modem` — O-QPSK DSSS [extension]
"""

from .base import FrameResult, Modem, ModulationClass
from .ble import BleModem
from .lora import LoRaModem
from .oqpsk154 import OQpsk154Modem
from .registry import (
    PROTOTYPE_TECHNOLOGIES,
    REGISTRY,
    TechnologyInfo,
    all_technologies,
    create_modem,
    get_info,
    implemented_technologies,
    table1_rows,
)
from .sigfox import SigfoxModem
from .xbee import XBeeModem
from .zwave import ZWaveModem

__all__ = [
    "FrameResult",
    "Modem",
    "ModulationClass",
    "LoRaModem",
    "XBeeModem",
    "ZWaveModem",
    "BleModem",
    "SigfoxModem",
    "OQpsk154Modem",
    "TechnologyInfo",
    "REGISTRY",
    "PROTOTYPE_TECHNOLOGIES",
    "all_technologies",
    "implemented_technologies",
    "get_info",
    "create_modem",
    "table1_rows",
]
