"""Frame-level helpers shared by the concrete modems.

The demodulators synchronize in the *sample* domain: the known
preamble(+sync) waveform is slid over the segment with normalized
correlation and the strongest peak above a threshold marks the frame
start. This is the same primitive the gateway's detectors use, so a
segment that was detected is (by construction) one the demodulator can
lock onto.
"""

from __future__ import annotations

import numpy as np

from ..contracts import iq_contract
from ..dsp.correlation import normalized_correlation, segmented_correlation
from ..errors import FrameSyncError

__all__ = ["sample_sync", "best_sync_score"]


@iq_contract("iq")
def sample_sync(
    iq: np.ndarray,
    reference: np.ndarray,
    threshold: float,
    block: int | None = None,
) -> tuple[int, float]:
    """Locate ``reference`` inside ``iq``.

    Args:
        iq: Segment to search.
        reference: Known waveform (preamble + sync word).
        threshold: Minimum normalized correlation in [0, 1].
        block: Coherent block length in samples for CFO-tolerant sync
            (``None`` = fully coherent). A transmitter crystal offset
            rotates the carrier across a long reference and destroys
            coherent correlation; per-block correlation with
            non-coherent combining keeps the peak at the cost of a
            little processing gain.

    Returns:
        ``(start_index, score)`` of the strongest correlation peak.

    Raises:
        FrameSyncError: when the segment is shorter than the reference or
            no peak reaches the threshold.
    """
    if len(reference) > len(iq):
        raise FrameSyncError("segment shorter than the sync reference")
    if block is not None and block < len(reference):
        scores = segmented_correlation(iq, reference, block)
    else:
        scores = normalized_correlation(iq, reference)
    best = int(np.argmax(scores))
    score = float(scores[best])
    if score < threshold:
        raise FrameSyncError(
            f"no sync: best correlation {score:.3f} below threshold {threshold:.3f}"
        )
    return best, score


@iq_contract("iq")
def sample_sync_strided(
    iq: np.ndarray,
    reference: np.ndarray,
    threshold: float,
    block: int,
    stride: int,
) -> tuple[int, float]:
    """CFO-tolerant sync at a reduced sample stride.

    Correlates ``iq[::stride]`` against ``reference[::stride]`` (cutting
    the FFT work by ~stride^2) and scales the peak index back to the
    full rate. The timing quantization is ±stride/2 samples; callers
    must tolerate that (FSK demodulators sample mid-bit with tens of
    samples per bit, so a few samples of skew are harmless).

    Raises:
        FrameSyncError: as :func:`sample_sync`.
    """
    if stride <= 1:
        return sample_sync(iq, reference, threshold, block=block)
    start, score = sample_sync(
        iq[::stride],
        reference[::stride],
        threshold,
        block=max(block // stride, 4),
    )
    return start * stride, score


@iq_contract("iq")
def best_sync_score(iq: np.ndarray, reference: np.ndarray) -> float:
    """Best normalized correlation of ``reference`` in ``iq`` (0 if too short).

    Used by the cloud classifier to rank which technologies are present
    in a collision without committing to a decode.
    """
    if len(reference) > len(iq) or len(reference) == 0:
        return 0.0
    return float(np.max(normalized_correlation(iq, reference)))
