"""XBee-868 (2-GFSK, 802.15.4-SUN style) PHY."""

from .modem import XBeeModem

__all__ = ["XBeeModem"]
