"""XBee-868 modem: 2-GFSK, 802.15.4-SUN-FSK style framing.

The paper's prototype drives a TI CC1310 configured for the XBee 868 MHz
profile. The XBee-PRO 868 radio runs 24 kbit/s 2-GFSK with ±25 kHz
deviation (modulation index ~2); this model uses 25 kbit/s so a bit is
an integer 40 samples at the 1 MHz capture rate. The high modulation
index concentrates energy near the two FSK tones — the property
KILL-FREQUENCY exploits. The frame follows the 802.15.4 SUN-FSK layout:

    preamble (4 x 0x55) | SFD 0x904E | PHR (1 byte length) | PSDU

where the PSDU is the payload plus CRC-16-CCITT, whitened with the PN9
sequence. Bits go out MSB first. The PHR is sent unwhitened so the
receiver can size the frame before de-whitening.
"""

from __future__ import annotations

import numpy as np

from ...dsp.backend import backend_enabled
from ...errors import ChecksumError, ConfigurationError
from ...phy.base import FrameResult, Modem, ModulationClass
from ...phy.frames import sample_sync_strided
from ...phy.fsk import fsk_demodulate_bits, fsk_frequency_track, fsk_modulate
from ...utils.bits import bits_to_bytes, bits_to_int, bytes_to_bits, int_to_bits
from ...utils.crc import CRC16_CCITT
from ...utils.whitening import Pn9Whitener

__all__ = ["XBeeModem"]

_PREAMBLE = bytes([0x55] * 4)
_SFD = bytes([0x90, 0x4E])


class XBeeModem(Modem):
    """XBee-868 style GFSK modem.

    Args:
        bit_rate: On-air rate (default 25 kbit/s ≈ the XBee-PRO 868's
            24 kbit/s, rounded for an integer samples-per-bit).
        sps: Samples per bit (default 40 → 1 MHz native rate, matching
            the paper's RTL-SDR capture bandwidth).
        deviation_hz: Peak frequency deviation.
        bt: Gaussian bandwidth-time product.
        sync_threshold: Normalized correlation needed to declare sync.
    """

    name = "xbee"
    modulation = ModulationClass.FSK

    def __init__(
        self,
        bit_rate: float = 25e3,
        sps: int = 40,
        deviation_hz: float = 25e3,
        bt: float = 0.5,
        sync_threshold: float = 0.35,
    ):
        if sps < 2:
            raise ConfigurationError("sps must be >= 2")
        self._bit_rate = float(bit_rate)
        self._sps = int(sps)
        self._deviation = float(deviation_hz)
        self._bt = None if bt is None else float(bt)
        self._threshold = float(sync_threshold)
        self._whitener = Pn9Whitener()

    # -- characteristics ---------------------------------------------------

    @property
    def sample_rate(self) -> float:
        return self._bit_rate * self._sps

    @property
    def bandwidth(self) -> float:
        # Carson's rule for 2-FSK: 2 * (deviation + bit_rate / 2).
        return 2 * (self._deviation + self._bit_rate / 2)

    @property
    def bit_rate(self) -> float:
        return self._bit_rate

    @property
    def sps(self) -> int:
        """Samples per bit at the native rate."""
        return self._sps

    @property
    def sync_block(self) -> int:
        """2-bit coherent blocks tolerate ppm-scale CFO."""
        return 2 * self._sps


    @property
    def sync_decimation(self) -> int:
        """FSK sync/classification may run at a few samples per bit."""
        return max(self._sps // 10, 1)

    @property
    def max_payload(self) -> int:
        return 125  # PHR length covers payload + CRC, capped at 127

    # -- waveforms -----------------------------------------------------------

    def _wave(self, bits) -> np.ndarray:
        return fsk_modulate(
            bits, self._sps, self._deviation, self.sample_rate, bt=self._bt
        )

    def preamble_waveform(self) -> np.ndarray:
        """Waveform of the 4-byte 0x55 preamble."""
        return self._wave(bytes_to_bits(_PREAMBLE))

    def sync_waveform(self) -> np.ndarray:
        """Waveform of preamble + SFD (used for frame sync/classify)."""
        return self._wave(bytes_to_bits(_PREAMBLE + _SFD))

    def modulate(self, payload: bytes) -> np.ndarray:
        payload = bytes(payload)
        if len(payload) > self.max_payload:
            raise ConfigurationError(
                f"payload of {len(payload)} exceeds {self.max_payload} bytes"
            )
        psdu = self._whitener.whiten_bytes(CRC16_CCITT.append(payload))
        phr = int_to_bits(len(payload) + 2, 8)
        bits = np.concatenate(
            [bytes_to_bits(_PREAMBLE + _SFD), phr, bytes_to_bits(psdu)]
        )
        return self._wave(bits)

    # -- demodulation ----------------------------------------------------------

    def _estimate_cfo(
        self, iq: np.ndarray, start: int, track: np.ndarray | None = None
    ) -> float:
        """Mean frequency over the alternating preamble = carrier offset."""
        span = 8 * len(_PREAMBLE) * self._sps
        if track is None:
            track = fsk_frequency_track(
                iq[start : start + span],
                self.sample_rate,
                self._sps,
                self.bandwidth,
            )
            window = track
        else:
            window = track[start : start + span]
        return float(np.mean(window)) if len(window) else 0.0

    def demodulate(self, iq: np.ndarray) -> FrameResult:
        iq = np.asarray(iq, dtype=np.complex128)
        start, score = sample_sync_strided(
            iq,
            self.sync_reference(),
            self._threshold,
            block=2 * self._sps,
            stride=max(self._sps // 10, 1),
        )
        # Work on a frame-sized slice: the discriminator's channel
        # filter would otherwise run over the entire (possibly huge)
        # segment on every read.
        bound = 8 * (len(_PREAMBLE) + len(_SFD) + 1 + self.max_payload + 2)
        iq = iq[start : start + bound * self._sps + self._sps]
        frame_start, start = start, 0
        track = None
        if backend_enabled():
            # One discriminator pass over the bound slice feeds the CFO
            # estimate, the PHR read and the PSDU read.
            track = fsk_frequency_track(
                iq, self.sample_rate, self._sps, self.bandwidth
            )
        cfo = self._estimate_cfo(iq, start, track=track)
        header_bits = 8 * (len(_PREAMBLE) + len(_SFD))
        phr_at = start + header_bits * self._sps
        phr = fsk_demodulate_bits(
            iq, phr_at, 8, self._sps, self.sample_rate,
            threshold_hz=cfo, bandwidth_hz=self.bandwidth, track=track,
        )
        psdu_len = bits_to_int(phr)
        if psdu_len < 2 or psdu_len > self.max_payload + 2:
            raise ChecksumError(f"implausible PHR length {psdu_len}")
        psdu_at = phr_at + 8 * self._sps
        psdu_bits = fsk_demodulate_bits(
            iq, psdu_at, 8 * psdu_len, self._sps, self.sample_rate,
            threshold_hz=cfo, bandwidth_hz=self.bandwidth, track=track,
        )
        psdu = self._whitener.whiten_bytes(bits_to_bytes(psdu_bits))
        crc_ok = CRC16_CCITT.check(psdu)
        return FrameResult(
            payload=psdu[:-2],
            crc_ok=crc_ok,
            start=frame_start,
            sync_score=score,
            extra={"psdu_len": psdu_len, "cfo_hz": cfo},
        )
