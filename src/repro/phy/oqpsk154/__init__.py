"""802.15.4 O-QPSK DSSS PHY — extension technology (KILL-CODES class)."""

from .modem import OQpsk154Modem

__all__ = ["OQpsk154Modem"]
