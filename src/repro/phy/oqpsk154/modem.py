"""802.15.4 O-QPSK DSSS modem (2.4 GHz PHY).

This is the "orthogonal codes" technology class of the paper's Table 1
(Thread / WirelessHART / Weightless all ride this PHY). Each 4-bit
symbol is spread to one of 16 near-orthogonal 32-chip sequences; chips
are half-sine O-QPSK at 2 Mchip/s. Frame layout per 802.15.4:

    preamble (4 x 0x00 = 8 zero symbols) | SFD 0xA7 | PHR (1) | PSDU

with the PSDU being payload + CRC-16. Bits map to symbols LSB-first
(low nibble first), as in the standard.

The modem performs carrier-phase correction from the sync correlation
before slicing chips, since O-QPSK (unlike the FSK/DBPSK modems) is
phase-coherent.
"""

from __future__ import annotations

import numpy as np

from ...dsp.backend import backend_enabled
from ...dsp.correlation import cross_correlate
from ...errors import ChecksumError, ConfigurationError
from ...phy.base import FrameResult, Modem, ModulationClass
from ...phy.dsss import (
    bits_to_symbols,
    chips_to_oqpsk,
    despread_chips,
    oqpsk_to_chips,
    spread_symbols,
    symbols_to_bits,
)
from ...phy.frames import sample_sync
from ...utils.bits import bits_to_bytes, bytes_to_bits
from ...utils.crc import CRC16_CCITT

__all__ = ["OQpsk154Modem"]

_PREAMBLE = bytes(4)  # four zero bytes -> eight zero symbols
_SFD = bytes([0xA7])
_CHIPS_PER_SYMBOL = 32


class OQpsk154Modem(Modem):
    """802.15.4 O-QPSK DSSS modem.

    Args:
        chip_rate: Chips per second (2 Mchip/s standard).
        sps: Samples per chip (even, >= 2).
        sync_threshold: Normalized correlation needed to declare sync.
    """

    name = "oqpsk154"
    modulation = ModulationClass.DSSS

    def __init__(
        self,
        chip_rate: float = 2e6,
        sps: int = 2,
        sync_threshold: float = 0.35,
    ):
        if sps < 2 or sps % 2:
            raise ConfigurationError("sps must be an even integer >= 2")
        self._chip_rate = float(chip_rate)
        self._sps = int(sps)
        self._threshold = float(sync_threshold)

    @property
    def sample_rate(self) -> float:
        return self._chip_rate * self._sps

    @property
    def bandwidth(self) -> float:
        # Half-sine O-QPSK main lobe: ~1.5 x chip rate; use the standard
        # 2 MHz channel width at 2 Mchip/s.
        return self._chip_rate

    @property
    def bit_rate(self) -> float:
        # 4 bits per 32 chips.
        return self._chip_rate * 4 / _CHIPS_PER_SYMBOL

    @property
    def sps(self) -> int:
        """Samples per chip at the native rate."""
        return self._sps

    @property
    def max_payload(self) -> int:
        return 125

    # -- waveforms ------------------------------------------------------------

    def _frame_chips(self, payload: bytes) -> np.ndarray:
        psdu = CRC16_CCITT.append(payload)
        phr = bytes([len(psdu)])
        frame_bits = bytes_to_bits(_PREAMBLE + _SFD + phr + psdu, msb_first=False)
        return spread_symbols(bits_to_symbols(frame_bits))

    def _prefix_chips(self) -> np.ndarray:
        bits = bytes_to_bits(_PREAMBLE + _SFD, msb_first=False)
        return spread_symbols(bits_to_symbols(bits))

    def preamble_waveform(self) -> np.ndarray:
        """Waveform of the 8 zero-symbol preamble."""
        bits = bytes_to_bits(_PREAMBLE, msb_first=False)
        return chips_to_oqpsk(spread_symbols(bits_to_symbols(bits)), self._sps)

    def sync_waveform(self) -> np.ndarray:
        """Waveform of preamble + SFD."""
        return chips_to_oqpsk(self._prefix_chips(), self._sps)

    def modulate(self, payload: bytes) -> np.ndarray:
        payload = bytes(payload)
        if len(payload) > self.max_payload:
            raise ConfigurationError(
                f"payload of {len(payload)} exceeds {self.max_payload} bytes"
            )
        return chips_to_oqpsk(self._frame_chips(payload), self._sps)

    # -- demodulation ---------------------------------------------------------------

    def _derotate(self, iq: np.ndarray, start: int) -> np.ndarray:
        """Correct the carrier phase using the known sync waveform."""
        ref = self.sync_reference()
        window = iq[start : start + len(ref)]
        if len(window) < len(ref):
            return iq
        if backend_enabled():
            # Only lag 0 of the correlation is consumed; a single inner
            # product replaces the full FFT convolution that computed it.
            corr = complex(np.vdot(ref, window))
        else:
            corr = cross_correlate(window, ref)[0]
        if abs(corr) == 0:
            return iq
        return iq * np.exp(-1j * np.angle(corr))

    def _read_symbols(
        self, iq: np.ndarray, chips_at: int, n_symbols: int
    ) -> tuple[np.ndarray, int]:
        n_chips = n_symbols * _CHIPS_PER_SYMBOL
        seg = iq[chips_at:]
        needed = n_chips * self._sps + self._sps  # + half-chip Q tail
        if len(seg) < needed:
            raise ChecksumError("segment too short for the 802.15.4 frame")
        chips = oqpsk_to_chips(seg, n_chips, self._sps)
        symbols, dists = despread_chips(chips)
        return symbols, int(dists.sum())

    def demodulate(self, iq: np.ndarray) -> FrameResult:
        iq = np.asarray(iq, dtype=np.complex128)
        start, score = sample_sync(iq, self.sync_reference(), self._threshold)
        iq = self._derotate(iq, start)
        prefix_symbols = len(self._prefix_chips()) // _CHIPS_PER_SYMBOL
        phr_at = start + prefix_symbols * _CHIPS_PER_SYMBOL * self._sps
        phr_symbols, _ = self._read_symbols(iq, phr_at, 2)
        psdu_len = int(bits_to_bytes(symbols_to_bits(phr_symbols), msb_first=False)[0])
        if psdu_len < 2 or psdu_len > self.max_payload + 2:
            raise ChecksumError(f"implausible PHR length {psdu_len}")
        psdu_at = phr_at + 2 * _CHIPS_PER_SYMBOL * self._sps
        psdu_symbols, chip_errors = self._read_symbols(iq, psdu_at, psdu_len * 2)
        psdu = bits_to_bytes(symbols_to_bits(psdu_symbols), msb_first=False)
        crc_ok = CRC16_CCITT.check(psdu)
        return FrameResult(
            payload=psdu[:-2],
            crc_ok=crc_ok,
            start=start,
            sync_score=score,
            extra={"chip_errors": chip_errors, "psdu_len": psdu_len},
        )
