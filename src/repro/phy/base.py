"""Common modem interface for all implemented IoT PHY layers.

Every technology in the registry (Table 1 of the paper) implements
:class:`Modem`: it can modulate a payload into complex baseband I/Q at its
native sample rate, demodulate a segment back into a frame, and expose the
waveform of its preamble (+ sync word) — the ingredient the gateway's
universal preamble is built from.

The modulation *class* (:class:`ModulationClass`) is what the cloud's
Algorithm 1 dispatches on: FSK/PSK collisions are handled by
KILL-FREQUENCY, CSS by KILL-CSS and DSSS by KILL-CODES.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ModulationClass", "FrameResult", "Modem"]


class ModulationClass(enum.Enum):
    """Broad modulation family, used to pick a kill filter."""

    FSK = "fsk"
    PSK = "psk"
    CSS = "css"
    DSSS = "dsss"
    OFDM = "ofdm"


@dataclass
class FrameResult:
    """Outcome of one demodulation attempt.

    Attributes:
        payload: Recovered payload bytes (may be garbage if ``crc_ok`` is
            False).
        crc_ok: Whether the frame integrity check passed.
        start: Sample index (within the given segment) where the frame's
            preamble was found.
        sync_score: Normalized correlation score of the sync search.
        corrected_errors: FEC-corrected bit errors, when the PHY has FEC.
        extra: PHY-specific diagnostics.
    """

    payload: bytes
    crc_ok: bool
    start: int
    sync_score: float = 0.0
    corrected_errors: int = 0
    extra: dict[str, object] = field(default_factory=dict)


class Modem(abc.ABC):
    """Abstract modulator/demodulator for one radio technology."""

    #: Registry name, e.g. ``"lora"``.
    name: str = "modem"
    #: Modulation family for kill-filter dispatch.
    modulation: ModulationClass = ModulationClass.FSK

    # -- static characteristics -------------------------------------------

    @property
    @abc.abstractmethod
    def sample_rate(self) -> float:
        """Native complex sample rate of :meth:`modulate` output."""

    @property
    @abc.abstractmethod
    def bandwidth(self) -> float:
        """Occupied bandwidth of the emitted signal in Hz."""

    @property
    @abc.abstractmethod
    def bit_rate(self) -> float:
        """Raw on-air bit rate in bit/s."""

    @property
    def max_payload(self) -> int:
        """Largest payload accepted by :meth:`modulate`, in bytes."""
        return 127

    @property
    def sync_block(self) -> int | None:
        """Coherent block length for CFO-tolerant sync correlation.

        ``None`` means fully-coherent correlation is safe (the sync
        reference is short relative to plausible carrier offsets).
        """
        return None

    @property
    def sync_decimation(self) -> int:
        """Stride at which sync correlation may safely run.

        Spread-spectrum signals can be synchronized at (near) their chip
        rate instead of the oversampled capture rate, saving a factor of
        ~stride^2 in correlation cost. The residual timing quantization
        must be absorbed by the modem's own fine synchronization.
        """
        return 1

    # -- waveforms ---------------------------------------------------------

    @abc.abstractmethod
    def preamble_waveform(self) -> np.ndarray:
        """I/Q waveform of the technology's preamble (and sync, if fixed).

        This is the template the gateway correlates with; it must be the
        exact waveform :meth:`modulate` emits at the start of every frame.
        """

    @abc.abstractmethod
    def modulate(self, payload: bytes) -> np.ndarray:
        """Modulate ``payload`` into a complete frame of unit-RMS I/Q."""

    @abc.abstractmethod
    def demodulate(self, iq: np.ndarray) -> FrameResult:
        """Find and decode one frame inside ``iq`` (native sample rate).

        Raises:
            FrameSyncError: when no preamble is found in the segment.
            DecodeError: when demodulation cannot produce a frame.
        """

    # -- derived helpers ----------------------------------------------------

    def sync_reference(self) -> np.ndarray:
        """The modem's sync template, generated once and cached read-only.

        Demodulators correlate every segment against the same reference
        (``sync_waveform()`` where the PHY defines one, the preamble
        otherwise), and regenerating a multi-thousand-sample waveform
        per :meth:`demodulate` call is pure waste on a batch path. The
        cache is safe because the reference is a pure function of the
        modem's fixed parameters; it is returned non-writeable so no
        caller can corrupt it for the next frame.
        """
        cached = getattr(self, "_sync_reference_cache", None)
        if cached is None:
            waveform = (
                self.sync_waveform()
                if hasattr(self, "sync_waveform")
                else self.preamble_waveform()
            )
            cached = np.array(waveform, dtype=np.complex128)
            cached.flags.writeable = False
            self._sync_reference_cache = cached
        return cached

    def demodulate_many(
        self, buffers: list[np.ndarray]
    ) -> list[FrameResult | None]:
        """Demodulate a batch of independent segments.

        The default walks :meth:`demodulate` with the cached
        :meth:`sync_reference` warm, mapping the expected failures
        (:class:`~repro.errors.ReproError`: no sync, bad decode) to
        ``None`` — so batch consumers get one result slot per buffer
        instead of an exception aborting the rest of the batch. PHYs
        with genuinely vectorizable sync can override this with a true
        batched implementation.
        """
        from ..errors import ReproError

        self.sync_reference()
        results: list[FrameResult | None] = []
        for iq in buffers:
            try:
                results.append(self.demodulate(iq))
            except ReproError:
                results.append(None)
        return results

    def frame_samples(self, payload_len: int) -> int:
        """Number of native samples a frame with this payload occupies."""
        return len(self.modulate(bytes(payload_len)))

    def frame_airtime(self, payload_len: int) -> float:
        """Frame duration in seconds for a payload of ``payload_len``."""
        return self.frame_samples(payload_len) / self.sample_rate

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} name={self.name!r} "
            f"mod={self.modulation.value} fs={self.sample_rate:g} "
            f"bw={self.bandwidth:g} rate={self.bit_rate:g}>"
        )
