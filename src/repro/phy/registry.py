"""Technology registry — Table 1 of the paper, as code.

Each entry records the technology's modulation family and sync/preamble
structure exactly as the paper tabulates them, plus (when this package
implements the PHY) a modem factory. The GalioT gateway and cloud are
configured with a list of registry names; adding a technology is the
"simple software update" the paper argues for.

The three prototype technologies (LoRa, XBee, Z-Wave) are fully
implemented; BLE, SigFox and the 802.15.4 O-QPSK family (Thread /
WirelessHART / Weightless) are implemented extensions; WiFi HaLow and
NB-IoT are registered metadata-only, matching the paper's "future work"
rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..errors import UnknownTechnologyError
from .base import Modem, ModulationClass
from .ble import BleModem
from .lora import LoRaModem
from .oqpsk154 import OQpsk154Modem
from .sigfox import SigfoxModem
from .xbee import XBeeModem
from .zwave import ZWaveModem

__all__ = [
    "TechnologyInfo",
    "REGISTRY",
    "PROTOTYPE_TECHNOLOGIES",
    "all_technologies",
    "implemented_technologies",
    "get_info",
    "create_modem",
    "table1_rows",
]


@dataclass(frozen=True)
class TechnologyInfo:
    """One row of Table 1.

    Attributes:
        name: Registry key.
        display_name: Human-readable name as printed in the paper.
        modulation: Modulation family (drives kill-filter choice).
        modulation_text: The paper's modulation column, verbatim.
        sync_text: The paper's "Sync" column, verbatim.
        preamble_text: The paper's "Preamble" column, verbatim.
        factory: Modem constructor, or ``None`` for metadata-only rows.
        notes: Implementation notes (e.g. alias targets).
    """

    name: str
    display_name: str
    modulation: ModulationClass
    modulation_text: str
    sync_text: str
    preamble_text: str
    factory: Callable[..., Modem] | None = None
    notes: str = ""

    @property
    def implemented(self) -> bool:
        """Whether a modem can be constructed for this technology."""
        return self.factory is not None


REGISTRY: dict[str, TechnologyInfo] = {
    info.name: info
    for info in [
        TechnologyInfo(
            name="lora",
            display_name="LoRa",
            modulation=ModulationClass.CSS,
            modulation_text="CSS",
            sync_text="-",
            preamble_text="sequence of 1s",
            factory=LoRaModem,
        ),
        TechnologyInfo(
            name="zwave",
            display_name="Z-Wave",
            modulation=ModulationClass.FSK,
            modulation_text="BFSK,GFSK",
            sync_text="m bytes",
            preamble_text="'01010101'",
            factory=ZWaveModem,
        ),
        TechnologyInfo(
            name="xbee",
            display_name="XBee",
            modulation=ModulationClass.FSK,
            modulation_text="GFSK",
            sync_text="4 bytes",
            preamble_text="'01010101'",
            factory=XBeeModem,
        ),
        TechnologyInfo(
            name="ble",
            display_name="BLE",
            modulation=ModulationClass.FSK,
            modulation_text="GFSK",
            sync_text="4 bytes",
            preamble_text="'01010101'",
            factory=BleModem,
        ),
        TechnologyInfo(
            name="halow",
            display_name="WiFi Halow",
            modulation=ModulationClass.PSK,
            modulation_text="BPSK",
            sync_text="configuration specific",
            preamble_text="configuration specific",
            notes="metadata-only (paper future work)",
        ),
        TechnologyInfo(
            name="sigfox",
            display_name="SigFox",
            modulation=ModulationClass.PSK,
            modulation_text="D-BPSK",
            sync_text="4 bytes",
            preamble_text="unknown",
            factory=SigfoxModem,
        ),
        TechnologyInfo(
            name="thread",
            display_name="Thread",
            modulation=ModulationClass.DSSS,
            modulation_text="QPSK",
            sync_text="4 bytes",
            preamble_text="binary 0s",
            factory=OQpsk154Modem,
            notes="rides the 802.15.4 O-QPSK DSSS PHY",
        ),
        TechnologyInfo(
            name="wirelesshart",
            display_name="WirelessHART",
            modulation=ModulationClass.DSSS,
            modulation_text="O-QPSK",
            sync_text="4 bytes",
            preamble_text="binary 0s",
            factory=OQpsk154Modem,
            notes="rides the 802.15.4 O-QPSK DSSS PHY",
        ),
        TechnologyInfo(
            name="weightless",
            display_name="Weightless",
            modulation=ModulationClass.DSSS,
            modulation_text="O-QPSK",
            sync_text="4 byte",
            preamble_text="binary 0s",
            factory=OQpsk154Modem,
            notes="rides the 802.15.4 O-QPSK DSSS PHY",
        ),
        TechnologyInfo(
            name="oqpsk154",
            display_name="802.15.4 O-QPSK",
            modulation=ModulationClass.DSSS,
            modulation_text="O-QPSK",
            sync_text="1 byte SFD",
            preamble_text="binary 0s",
            factory=OQpsk154Modem,
            notes="base PHY for Thread / WirelessHART / Weightless",
        ),
        TechnologyInfo(
            name="nbiot",
            display_name="NB-IoT",
            modulation=ModulationClass.OFDM,
            modulation_text="OFDMA",
            sync_text="LTE specific",
            preamble_text="LTE specific",
            notes="metadata-only (paper future work)",
        ),
    ]
}

#: The three technologies of the paper's prototype (Sec. 7).
PROTOTYPE_TECHNOLOGIES = ("lora", "xbee", "zwave")


def all_technologies() -> list[TechnologyInfo]:
    """Every registry row, in Table 1 order."""
    return list(REGISTRY.values())


def implemented_technologies() -> list[TechnologyInfo]:
    """Rows with a working modem."""
    return [info for info in REGISTRY.values() if info.implemented]


def get_info(name: str) -> TechnologyInfo:
    """Look up a technology by registry name.

    Raises:
        UnknownTechnologyError: for names not in the registry.
    """
    try:
        return REGISTRY[name]
    except KeyError:
        raise UnknownTechnologyError(name) from None


def create_modem(name: str, **overrides) -> Modem:
    """Instantiate the modem for a registry name.

    Args:
        name: Registry key (e.g. ``"lora"``).
        **overrides: Forwarded to the modem constructor.

    Raises:
        UnknownTechnologyError: for unknown or metadata-only entries.
    """
    info = get_info(name)
    if info.factory is None:
        raise UnknownTechnologyError(
            f"{name} is registered but has no implemented modem"
        )
    modem = info.factory(**overrides)
    modem.name = name
    return modem


def table1_rows() -> list[dict[str, str]]:
    """Table 1 as printable rows (used by the T1 benchmark)."""
    return [
        {
            "technology": info.display_name,
            "modulation": info.modulation_text,
            "sync": info.sync_text,
            "preamble": info.preamble_text,
            "implemented": "yes" if info.implemented else "metadata-only",
        }
        for info in REGISTRY.values()
    ]
