"""SigFox-style ultra-narrow-band D-BPSK PHY — extension technology."""

from .modem import SigfoxModem

__all__ = ["SigfoxModem"]
