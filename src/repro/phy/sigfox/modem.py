"""SigFox-style ultra-narrow-band D-BPSK modem (100 bit/s).

SigFox uplinks are 100 bit/s differential BPSK in a ~100 Hz channel —
the extreme low-power end of Table 1. The frame here is a simplified
but self-consistent equivalent of the SigFox uplink:

    preamble (2 x 0xAA) | sync 0xB227 | length (1) | payload | CRC16

The whole frame is one differential bit stream (the preamble's
alternating bits double as the differential reference), payload and CRC
are PN9-scrambled, and the pulse shaping bounds occupied bandwidth to a
few times the bit rate.

SigFox is an *extension* technology: its sub-noise narrowband signals
are exactly the kind an energy detector misses, so it appears in the
detector-scaling ablation.
"""

from __future__ import annotations

import numpy as np

from ...errors import ChecksumError, ConfigurationError
from ...phy.base import FrameResult, Modem, ModulationClass
from ...phy.frames import sample_sync
from ...phy.psk import bpsk_modulate, dbpsk_demodulate_bits, dbpsk_encode
from ...utils.bits import bits_to_bytes, bits_to_int, bytes_to_bits
from ...utils.crc import CRC16_CCITT
from ...utils.whitening import Pn9Whitener

__all__ = ["SigfoxModem"]

_PREAMBLE = bytes([0xAA] * 2)
_SYNC = bytes([0xB2, 0x27])


class SigfoxModem(Modem):
    """Ultra-narrow-band D-BPSK modem."""

    name = "sigfox"
    modulation = ModulationClass.PSK

    def __init__(
        self,
        bit_rate: float = 100.0,
        sps: int = 160,
        sync_threshold: float = 0.40,
    ):
        if sps < 8:
            raise ConfigurationError("sps must be >= 8 for UNB shaping")
        self._bit_rate = float(bit_rate)
        self._sps = int(sps)
        self._threshold = float(sync_threshold)
        self._whitener = Pn9Whitener()

    @property
    def sample_rate(self) -> float:
        return self._bit_rate * self._sps

    @property
    def bandwidth(self) -> float:
        # UNB BPSK: main lobe approximately twice the bit rate.
        return 2 * self._bit_rate

    @property
    def bit_rate(self) -> float:
        return self._bit_rate

    @property
    def sps(self) -> int:
        """Samples per bit at the native rate."""
        return self._sps

    @property
    def max_payload(self) -> int:
        return 12  # the SigFox uplink payload limit

    # -- waveforms ----------------------------------------------------------

    def _frame_bits(self, payload: bytes) -> np.ndarray:
        body = self._whitener.whiten_bytes(CRC16_CCITT.append(payload))
        return np.concatenate(
            [
                bytes_to_bits(_PREAMBLE + _SYNC),
                bytes_to_bits(bytes([len(payload)])),
                bytes_to_bits(body),
            ]
        )

    def _wave(self, frame_bits) -> np.ndarray:
        return bpsk_modulate(dbpsk_encode(frame_bits), self._sps)

    def preamble_waveform(self) -> np.ndarray:
        """Waveform of the alternating preamble (differentially encoded)."""
        return self._wave(bytes_to_bits(_PREAMBLE))

    def sync_waveform(self) -> np.ndarray:
        """Waveform of preamble + sync word."""
        return self._wave(bytes_to_bits(_PREAMBLE + _SYNC))

    def modulate(self, payload: bytes) -> np.ndarray:
        payload = bytes(payload)
        if len(payload) > self.max_payload:
            raise ConfigurationError(
                f"payload of {len(payload)} exceeds {self.max_payload} bytes"
            )
        return self._wave(self._frame_bits(payload))

    # -- demodulation -----------------------------------------------------------

    def demodulate(self, iq: np.ndarray) -> FrameResult:
        iq = np.asarray(iq, dtype=np.complex128)
        start, score = sample_sync(iq, self.sync_reference(), self._threshold)
        header_bits = 8 * (len(_PREAMBLE) + len(_SYNC))
        len_at = start + header_bits * self._sps
        length_bits = dbpsk_demodulate_bits(iq, len_at, 8, self._sps)
        length = bits_to_int(length_bits)
        if length > self.max_payload:
            raise ChecksumError(f"implausible SigFox length {length}")
        body_at = len_at + 8 * self._sps
        body_bits = dbpsk_demodulate_bits(
            iq, body_at, 8 * (length + 2), self._sps
        )
        body = self._whitener.whiten_bytes(bits_to_bytes(body_bits))
        crc_ok = CRC16_CCITT.check(body)
        return FrameResult(
            payload=body[:-2],
            crc_ok=crc_ok,
            start=start,
            sync_score=score,
            extra={"length": length},
        )
