"""Continuous-phase (G)FSK modulation core.

Shared by the XBee (802.15.4-SUN style GFSK), Z-Wave (G.9959 BFSK) and BLE
modems. Modulation is proper CPM: the instantaneous frequency waveform
(±deviation, optionally Gaussian-shaped) is integrated into phase, so the
emitted signal has constant envelope exactly like the hardware radios.

Demodulation uses a quadrature discriminator followed by a bit-matched
moving average and mid-bit sampling; frame-level synchronization is done
by the caller (sample-domain preamble correlation).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import numpy.typing as npt
from scipy import signal as sp_signal

from ..contracts import iq_contract
from ..dsp.backend import backend_enabled, get_backend
from ..dsp.filters import design_lowpass_fir, gaussian_pulse
from ..dsp.fm import quadrature_demod
from ..errors import ConfigurationError
from ..utils.bits import as_bit_array

__all__ = ["fsk_modulate", "fsk_demodulate_bits", "fsk_frequency_track"]


@lru_cache(maxsize=64)
def _channel_taps(n_taps: int, cutoff_hz: float, sample_rate_hz: float) -> np.ndarray:
    """Cached (read-only) channel-select FIR design.

    The design is deterministic in its arguments, and the FSK modems
    redesign the same filter for every demodulate call; caching it is
    bit-identical.
    """
    taps = design_lowpass_fir(n_taps, cutoff_hz, sample_rate_hz)
    taps.flags.writeable = False
    return taps


def fsk_modulate(
    bits: npt.ArrayLike,
    sps: int,
    deviation_hz: float,
    sample_rate_hz: float,
    bt: float | None = None,
    span: int = 4,
) -> np.ndarray:
    """Modulate a bit array into constant-envelope (G)FSK I/Q.

    Args:
        bits: 0/1 array; bit 1 maps to ``+deviation_hz``.
        sps: Samples per bit.
        deviation_hz: Peak frequency deviation (half the tone spacing).
        sample_rate_hz: Output sample rate.
        bt: Gaussian bandwidth-time product; ``None`` means plain
            rectangular 2-FSK (Z-Wave style).
        span: Gaussian pulse span in bits (ignored for ``bt=None``).

    Returns:
        Unit-amplitude complex waveform of ``len(bits) * sps`` samples.
    """
    arr = as_bit_array(bits)
    if sps < 2:
        raise ConfigurationError("sps must be >= 2")
    if deviation_hz <= 0 or deviation_hz >= sample_rate_hz / 2:
        raise ConfigurationError("deviation must be in (0, sample_rate_hz/2)")
    nrz = 2.0 * arr.astype(float) - 1.0
    freq = np.repeat(nrz, sps)
    if bt is not None:
        pulse = gaussian_pulse(bt, sps, span)
        # 'same' keeps bit centers aligned with the unshaped waveform.
        freq = np.convolve(freq, pulse, mode="same")
    phase = 2 * np.pi * deviation_hz / sample_rate_hz * np.cumsum(freq)
    return np.exp(1j * phase)


@iq_contract("iq")
def fsk_frequency_track(
    iq: np.ndarray, sample_rate_hz: float, sps: int, bandwidth_hz: float | None = None
) -> np.ndarray:
    """Smoothed instantaneous-frequency track of an FSK signal in Hz.

    Applies an optional channel-select lowpass (essential when the
    capture is much wider than the signal: a discriminator's output SNR
    collapses once broadband noise enters it), then the quadrature
    discriminator and a bit-matched moving average (the optimal
    post-discriminator filter for rectangular FSK). The output is
    aligned so index ``n`` estimates the frequency at sample ``n`` of
    the input; length is ``len(iq)``.
    """
    if len(iq) < 2:
        return np.zeros(len(iq))
    fast = backend_enabled()
    backend = get_backend()
    if bandwidth_hz is not None and bandwidth_hz < sample_rate_hz * 0.9:
        cutoff = min(bandwidth_hz / 2, 0.45 * sample_rate_hz)
        taps = _channel_taps(129, float(cutoff), float(sample_rate_hz))
        if fast:
            # FFT convolution: the 129-tap channel filter is the single
            # biggest cost of an FSK demodulate on long segments.
            iq = sp_signal.fftconvolve(
                backend.as_complex(iq), backend.as_complex(taps), mode="same"
            )
        else:
            iq = np.convolve(iq, taps, mode="same")
    inst = quadrature_demod(
        np.asarray(iq, dtype=np.complex128),
        gain=sample_rate_hz / (2 * np.pi),
    )
    kernel = np.ones(sps) / sps
    if fast:
        smooth = sp_signal.fftconvolve(
            backend.as_real(inst), backend.as_real(kernel), mode="same"
        )
    else:
        smooth = np.convolve(inst, kernel, mode="same")
    # quadrature_demod output n sits between samples n and n+1; prepend
    # one element so indexing lines up with the input samples.
    track = np.concatenate(([smooth[0]], smooth))
    return np.asarray(track, dtype=np.float64)


@iq_contract("iq")
def fsk_demodulate_bits(
    iq: np.ndarray,
    start: int,
    n_bits: int,
    sps: int,
    sample_rate_hz: float,
    threshold_hz: float = 0.0,
    bandwidth_hz: float | None = None,
    track: np.ndarray | None = None,
) -> np.ndarray:
    """Slice ``n_bits`` starting at sample ``start`` out of an FSK burst.

    Args:
        iq: Complex samples at the modem's native rate.
        start: Sample index of the first bit's leading edge.
        n_bits: Number of bits to recover.
        sps: Samples per bit.
        sample_rate_hz: Sample rate.
        threshold_hz: Decision threshold; non-zero to compensate a known
            carrier offset.
        bandwidth_hz: Channel-select filter width (the signal's occupied
            bandwidth); ``None`` skips the filter.
        track: Precomputed :func:`fsk_frequency_track` of ``iq`` (same
            length). The FSK modems read several fields out of one
            burst; passing the track once avoids recomputing the
            discriminator chain per read.

    Returns:
        uint8 bit array of length ``n_bits``.

    Raises:
        ConfigurationError: if the requested bits run past the segment.
    """
    needed = start + n_bits * sps
    if start < 0 or needed > len(iq):
        raise ConfigurationError("bit range exceeds the segment")
    if track is None:
        track = fsk_frequency_track(iq, sample_rate_hz, sps, bandwidth_hz)
    centers = start + np.arange(n_bits) * sps + sps // 2
    return (track[centers] > threshold_hz).astype(np.uint8)
