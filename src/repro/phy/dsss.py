"""Direct-sequence spread spectrum core (802.15.4 O-QPSK style).

Each 4-bit data symbol is expanded to a 32-chip pseudo-noise sequence from
the 802.15.4 chip table; the 16 sequences are near-orthogonal cyclic
shifts (and conjugates) of one base sequence. This is the "orthogonal
codes" modulation class of the paper: KILL-CODES removes a DSSS signal by
projecting the received segment onto its code subspace and subtracting.

Chips are transmitted O-QPSK style: even chips on I, odd chips on Q with a
half-chip offset, each shaped by a half-sine pulse (MSK-equivalent).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ..contracts import iq_contract
from ..dsp.backend import (
    backend_enabled,
    nibble_bits,
    oqpsk_rails_demodulate,
    oqpsk_rails_modulate,
)
from ..dsp.filters import half_sine_pulse
from ..errors import ConfigurationError, DecodeError
from ..utils.bits import as_bit_array

__all__ = [
    "IEEE154_CHIPS",
    "spread_symbols",
    "chips_to_oqpsk",
    "oqpsk_to_chips",
    "despread_chips",
    "symbols_to_bits",
    "bits_to_symbols",
]

# IEEE 802.15.4-2015, table 73: 32-chip sequences for the 2.4 GHz O-QPSK
# PHY, chip c0 first.
_CHIP_STRINGS = [
    "11011001110000110101001000101110",
    "11101101100111000011010100100010",
    "00101110110110011100001101010010",
    "00100010111011011001110000110101",
    "01010010001011101101100111000011",
    "00110101001000101110110110011100",
    "11000011010100100010111011011001",
    "10011100001101010010001011101101",
    "10001100100101100000011101111011",
    "10111000110010010110000001110111",
    "01111011100011001001011000000111",
    "01110111101110001100100101100000",
    "00000111011110111000110010010110",
    "01100000011101111011100011001001",
    "10010110000001110111101110001100",
    "11001001011000000111011110111000",
]

IEEE154_CHIPS = np.array(
    [[int(c) for c in row] for row in _CHIP_STRINGS], dtype=np.uint8
)


def bits_to_symbols(bits: npt.ArrayLike) -> np.ndarray:
    """Group a bit array into 4-bit symbols, LSB-first per 802.15.4.

    Raises:
        ConfigurationError: if the bit count is not a multiple of 4.
    """
    arr = as_bit_array(bits)
    if arr.size % 4:
        raise ConfigurationError("bit count must be a multiple of 4")
    groups = arr.reshape(-1, 4)
    return (
        groups[:, 0] + 2 * groups[:, 1] + 4 * groups[:, 2] + 8 * groups[:, 3]
    ).astype(np.uint8)


def symbols_to_bits(symbols: npt.ArrayLike) -> np.ndarray:
    """Inverse of :func:`bits_to_symbols`."""
    arr = np.asarray(symbols, dtype=np.uint8).ravel()
    if arr.size and arr.max() > 15:
        raise ConfigurationError("symbols must be in 0..15")
    if backend_enabled():
        return nibble_bits(arr)
    out = np.empty(arr.size * 4, dtype=np.uint8)
    for i, s in enumerate(arr):
        out[4 * i : 4 * i + 4] = [(s >> b) & 1 for b in range(4)]
    return out


def spread_symbols(symbols: npt.ArrayLike) -> np.ndarray:
    """Concatenate the chip sequences of a symbol array."""
    arr = np.asarray(symbols, dtype=np.uint8).ravel()
    if arr.size and arr.max() > 15:
        raise ConfigurationError("symbols must be in 0..15")
    if arr.size == 0:
        return np.zeros(0, dtype=np.uint8)
    return IEEE154_CHIPS[arr].ravel()


def chips_to_oqpsk(chips: npt.ArrayLike, sps: int = 2) -> np.ndarray:
    """O-QPSK modulate a chip array with half-sine pulses.

    Even-index chips ride the I rail, odd-index chips the Q rail delayed
    by half a chip period. Output rate is ``sps`` samples per chip and
    the waveform is normalized to unit RMS.
    """
    arr = as_bit_array(chips)
    if arr.size % 2:
        raise ConfigurationError("chip count must be even for O-QPSK")
    if sps < 2 or sps % 2:
        raise ConfigurationError("sps must be an even integer >= 2")
    levels = 2.0 * arr.astype(float) - 1.0
    pulse = half_sine_pulse(2 * sps)  # each rail symbol spans two chips
    if backend_enabled():
        return oqpsk_rails_modulate(levels, pulse, sps)
    half = sps  # half-chip-pair offset between rails
    n_pairs = arr.size // 2
    length = (n_pairs + 1) * 2 * sps
    i_rail = np.zeros(length)
    q_rail = np.zeros(length)
    for k in range(n_pairs):
        pos = k * 2 * sps
        i_rail[pos : pos + 2 * sps] += levels[2 * k] * pulse
        qpos = pos + half
        q_rail[qpos : qpos + 2 * sps] += levels[2 * k + 1] * pulse
    wave = i_rail + 1j * q_rail
    rms = np.sqrt(np.mean(np.abs(wave[: n_pairs * 2 * sps]) ** 2))
    return wave[: n_pairs * 2 * sps + half] / max(rms, 1e-12)


@iq_contract("iq")
def oqpsk_to_chips(iq: np.ndarray, n_chips: int, sps: int = 2) -> np.ndarray:
    """Matched-filter chip decisions from an O-QPSK waveform.

    Assumes the waveform starts at chip 0 (frame sync done by the caller)
    and that any carrier phase was corrected.
    """
    if sps < 2 or sps % 2:
        raise ConfigurationError("sps must be an even integer >= 2")
    if n_chips % 2:
        raise ConfigurationError("n_chips must be even")
    pulse = half_sine_pulse(2 * sps)
    if backend_enabled():
        # The last chip pair's Q window reaches furthest: a segment is
        # long enough iff it covers n_pairs*2*sps + sps samples —
        # exactly the first-failure condition of the legacy loop below.
        if len(iq) < (n_chips // 2) * 2 * sps + sps:
            raise DecodeError("segment too short for requested chips")
        return oqpsk_rails_demodulate(iq, n_chips, pulse, sps)
    energy = pulse @ pulse
    chips = np.empty(n_chips, dtype=np.uint8)
    for k in range(n_chips // 2):
        pos = k * 2 * sps
        seg_i = iq.real[pos : pos + 2 * sps]
        qpos = pos + sps
        seg_q = iq.imag[qpos : qpos + 2 * sps]
        if len(seg_i) < 2 * sps or len(seg_q) < 2 * sps:
            # Data-dependent truncation is a decode failure, not a
            # caller bug: the residual simply ran out under the frame.
            raise DecodeError("segment too short for requested chips")
        chips[2 * k] = 1 if (seg_i @ pulse) / energy > 0 else 0
        chips[2 * k + 1] = 1 if (seg_q @ pulse) / energy > 0 else 0
    return chips


def despread_chips(chips: npt.ArrayLike) -> tuple[np.ndarray, np.ndarray]:
    """Map hard chip decisions back to symbols by nearest chip sequence.

    Returns:
        ``(symbols, distances)`` where ``distances`` is the Hamming
        distance to the winning sequence per symbol (0..32) — a quality
        indicator the O-QPSK demodulator uses in place of a soft metric.

    Raises:
        ConfigurationError: if the chip count is not a multiple of 32.
    """
    arr = as_bit_array(chips)
    if arr.size % 32:
        raise ConfigurationError("chip count must be a multiple of 32")
    blocks = arr.reshape(-1, 32)
    # Hamming distance to each of the 16 sequences.
    dists = (blocks[:, None, :] != IEEE154_CHIPS[None, :, :]).sum(axis=2)
    symbols = np.argmin(dists, axis=1).astype(np.uint8)
    best = dists[np.arange(len(blocks)), symbols]
    return symbols, best
