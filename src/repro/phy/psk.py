"""Phase-shift-keying core: BPSK and differential BPSK.

Used by the SigFox modem (D-BPSK at 100 bit/s) and available for the
WiFi-HaLow/Thread-style PSK entries of Table 1. Differential encoding
makes the demodulator immune to an unknown constant carrier phase, which
matters because the cloud decodes segments captured by a cheap
free-running RTL-SDR.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ..contracts import iq_contract
from ..dsp.backend import backend_enabled, cumulative_xor
from ..errors import ConfigurationError
from ..utils.bits import as_bit_array

__all__ = [
    "bpsk_modulate",
    "bpsk_demodulate_bits",
    "dbpsk_encode",
    "dbpsk_decode",
    "dbpsk_modulate",
    "dbpsk_demodulate_bits",
]


def bpsk_modulate(bits: npt.ArrayLike, sps: int, smooth: bool = True) -> np.ndarray:
    """BPSK with rectangular (optionally edge-smoothed) pulses.

    Bit 1 maps to +1, bit 0 to -1. ``smooth`` applies a short raised
    transition at symbol edges to bound the occupied bandwidth, mimicking
    the ultra-narrow-band shaping SigFox uses.
    """
    arr = as_bit_array(bits)
    if sps < 2:
        raise ConfigurationError("sps must be >= 2")
    symbols = 2.0 * arr.astype(float) - 1.0
    wave = np.repeat(symbols, sps).astype(complex)
    if smooth and sps >= 8:
        ramp = max(2, sps // 8)
        kernel = np.ones(ramp) / ramp
        wave = np.convolve(wave, kernel, mode="same")
    return wave


@iq_contract("iq")
def bpsk_demodulate_bits(
    iq: np.ndarray, start: int, n_bits: int, sps: int
) -> np.ndarray:
    """Coherent BPSK slicer (assumes phase was corrected by the caller)."""
    needed = start + n_bits * sps
    if start < 0 or needed > len(iq):
        raise ConfigurationError("bit range exceeds the segment")
    symbols = iq[start:needed].reshape(n_bits, sps).mean(axis=1)
    return (symbols.real > 0).astype(np.uint8)


def dbpsk_encode(bits: npt.ArrayLike) -> np.ndarray:
    """Differential encoding: output flips when the input bit is 1.

    The first output symbol is the reference (equal to the first bit's
    transition from an implicit leading 0).
    """
    arr = as_bit_array(bits)
    if backend_enabled():
        return cumulative_xor(arr)
    out = np.empty(arr.size, dtype=np.uint8)
    state = 0
    for i, bit in enumerate(arr):
        state ^= int(bit)
        out[i] = state
    return out


def dbpsk_decode(symbol_bits: npt.ArrayLike) -> np.ndarray:
    """Inverse of :func:`dbpsk_encode` (first symbol referenced to 0)."""
    arr = as_bit_array(symbol_bits)
    prev = np.concatenate(([0], arr[:-1]))
    return (arr ^ prev).astype(np.uint8)


def dbpsk_modulate(bits: npt.ArrayLike, sps: int) -> np.ndarray:
    """Differentially-encoded BPSK waveform."""
    return bpsk_modulate(dbpsk_encode(bits), sps)


@iq_contract("iq")
def dbpsk_demodulate_bits(
    iq: np.ndarray, start: int, n_bits: int, sps: int
) -> np.ndarray:
    """Phase-blind D-BPSK demodulation via symbol-to-symbol correlation.

    Bit k is 1 when symbol k is anti-podal to symbol k-1; the symbol
    before ``start`` is used as the reference when available, otherwise
    an implicit +1 reference is assumed.
    """
    needed = start + n_bits * sps
    if start < 0 or needed > len(iq):
        raise ConfigurationError("bit range exceeds the segment")
    symbols = iq[start:needed].reshape(n_bits, sps).mean(axis=1)
    if start >= sps:
        ref = iq[start - sps : start].mean()
    else:
        # Implicit leading differential state 0, whose waveform level is
        # -1 (bit 0 maps to -1 in bpsk_modulate).
        ref = -1.0 + 0j
    prev = np.concatenate(([ref], symbols[:-1]))
    return (np.real(symbols * np.conj(prev)) < 0).astype(np.uint8)
