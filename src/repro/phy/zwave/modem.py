"""Z-Wave modem: ITU-T G.9959 profiles R1 / R2 / R3.

Frame layout (simplified MPDU, shared by all profiles):

    preamble (n x 0x55) | SOF 0xF0 | MPDU

    MPDU = home_id (4) | src (1) | frame_ctrl (2) | length (1) |
           dst (1) | payload (n) | checksum (1)

``length`` counts the whole MPDU including the checksum; the checksum is
the XOR of all preceding MPDU bytes seeded with 0xFF. Bits go MSB first.

Profiles (G.9959 data-rate classes):

=======  =========  ==========  ===========  ==========
profile  bit rate   deviation   line coding  default sps
=======  =========  ==========  ===========  ==========
R1       9.6 kb/s   ±20 kHz     Manchester   52 (x2 half-bits)
R2       40 kb/s    ±20 kHz     NRZ          25
R3       100 kb/s   ±29 kHz     NRZ          10
=======  =========  ==========  ===========  ==========

R1's Manchester coding doubles the on-air symbol rate; the modem
transparently encodes/decodes it.
"""

from __future__ import annotations

import numpy as np

from ...dsp.backend import backend_enabled
from ...errors import ChecksumError, ConfigurationError
from ...phy.base import FrameResult, Modem, ModulationClass
from ...phy.frames import sample_sync_strided
from ...phy.fsk import fsk_demodulate_bits, fsk_frequency_track, fsk_modulate
from ...utils.bits import as_bit_array, bits_to_bytes, bits_to_int, bytes_to_bits
from ...utils.crc import xor_checksum
from ...utils.line_coding import manchester_decode, manchester_encode

__all__ = ["ZWaveModem", "ZWAVE_PROFILES"]

_SOF = 0xF0
_MPDU_OVERHEAD = 4 + 1 + 2 + 1 + 1 + 1  # home, src, fc, length, dst, checksum

#: G.9959 data-rate profiles: rate, deviation, Manchester?, default sps
#: (sps counts samples per *half-bit* for Manchester profiles).
ZWAVE_PROFILES = {
    "R1": {"bit_rate": 9.6e3, "deviation_hz": 20e3, "manchester": True, "sps": 52},
    "R2": {"bit_rate": 40e3, "deviation_hz": 20e3, "manchester": False, "sps": 25},
    "R3": {"bit_rate": 100e3, "deviation_hz": 29e3, "manchester": False, "sps": 10},
}


class ZWaveModem(Modem):
    """G.9959 BFSK modem (profiles R1/R2/R3).

    Args:
        profile: ``"R1"``, ``"R2"`` (default) or ``"R3"``; sets rate,
            deviation and line coding. Explicit keyword arguments
            override the profile's values.
        bit_rate: On-air *data* rate (before Manchester expansion).
        sps: Samples per on-air symbol (per half-bit for R1).
        deviation_hz: Peak frequency deviation.
        preamble_bytes: Number of 0x55 preamble bytes (>= 10 per spec).
        home_id: 4-byte network identifier placed in every frame.
        sync_threshold: Normalized correlation needed to declare sync.
    """

    name = "zwave"
    modulation = ModulationClass.FSK

    def __init__(
        self,
        profile: str = "R2",
        bit_rate: float | None = None,
        sps: int | None = None,
        deviation_hz: float | None = None,
        preamble_bytes: int = 10,
        home_id: bytes = b"\xde\xad\xbe\xef",
        src: int = 0x01,
        dst: int = 0x02,
        sync_threshold: float = 0.35,
    ):
        if profile not in ZWAVE_PROFILES:
            raise ConfigurationError(f"unknown G.9959 profile {profile!r}")
        defaults = ZWAVE_PROFILES[profile]
        bit_rate = defaults["bit_rate"] if bit_rate is None else bit_rate
        sps = defaults["sps"] if sps is None else sps
        deviation_hz = (
            defaults["deviation_hz"] if deviation_hz is None else deviation_hz
        )
        if sps < 2:
            raise ConfigurationError("sps must be >= 2")
        if preamble_bytes < 2:
            raise ConfigurationError("preamble must be at least 2 bytes")
        if len(home_id) != 4:
            raise ConfigurationError("home_id must be 4 bytes")
        self.profile = profile
        self._manchester = bool(defaults["manchester"])
        self._bit_rate = float(bit_rate)
        self._sps = int(sps)
        self._deviation = float(deviation_hz)
        self._preamble = bytes([0x55] * preamble_bytes)
        self._home_id = bytes(home_id)
        self._src = int(src) & 0xFF
        self._dst = int(dst) & 0xFF
        self._threshold = float(sync_threshold)

    # -- characteristics ---------------------------------------------------

    @property
    def _symbol_rate(self) -> float:
        """On-air symbol rate (half-bits for Manchester profiles)."""
        return self._bit_rate * (2 if self._manchester else 1)

    @property
    def sample_rate(self) -> float:
        return self._symbol_rate * self._sps

    @property
    def bandwidth(self) -> float:
        return 2 * (self._deviation + self._symbol_rate / 2)

    @property
    def bit_rate(self) -> float:
        return self._bit_rate

    @property
    def sps(self) -> int:
        """Samples per on-air symbol at the native rate."""
        return self._sps

    @property
    def sync_block(self) -> int:
        """2-symbol coherent blocks tolerate ppm-scale CFO."""
        return 2 * self._sps


    @property
    def sync_decimation(self) -> int:
        """Conservative stride: Z-Wave's plain-BFSK sync peak is less
        tolerant of decimation loss than the GFSK profiles."""
        return max(self._sps // 20, 1)

    @property
    def max_payload(self) -> int:
        return 255 - _MPDU_OVERHEAD

    # -- waveforms -----------------------------------------------------------

    def _line_encode(self, bits) -> np.ndarray:
        return manchester_encode(bits) if self._manchester else as_bit_array(bits)

    def _wave(self, bits) -> np.ndarray:
        return fsk_modulate(
            self._line_encode(bits),
            self._sps,
            self._deviation,
            self.sample_rate,
            bt=None,
        )

    def _read_bits(
        self,
        iq: np.ndarray,
        at: int,
        n_bits: int,
        cfo: float,
        track: np.ndarray | None = None,
    ) -> np.ndarray:
        """Demodulate ``n_bits`` data bits starting at sample ``at``."""
        n_symbols = 2 * n_bits if self._manchester else n_bits
        symbols = fsk_demodulate_bits(
            iq, at, n_symbols, self._sps, self.sample_rate,
            threshold_hz=cfo, bandwidth_hz=self.bandwidth, track=track,
        )
        if self._manchester:
            bits, _violations = manchester_decode(symbols)
            return bits
        return symbols

    def _data_samples(self, n_bits: int) -> int:
        """Samples occupied by ``n_bits`` data bits on air."""
        factor = 2 if self._manchester else 1
        return n_bits * factor * self._sps

    def preamble_waveform(self) -> np.ndarray:
        """Waveform of the 0x55 preamble run."""
        return self._wave(bytes_to_bits(self._preamble))

    def sync_waveform(self) -> np.ndarray:
        """Waveform of preamble + SOF."""
        return self._wave(bytes_to_bits(self._preamble + bytes([_SOF])))

    def modulate(self, payload: bytes) -> np.ndarray:
        payload = bytes(payload)
        if len(payload) > self.max_payload:
            raise ConfigurationError(
                f"payload of {len(payload)} exceeds {self.max_payload} bytes"
            )
        length = _MPDU_OVERHEAD + len(payload)
        body = (
            self._home_id
            + bytes([self._src, 0x41, 0x01, length, self._dst])
            + payload
        )
        mpdu = body + bytes([xor_checksum(body)])
        bits = bytes_to_bits(self._preamble + bytes([_SOF]) + mpdu)
        return self._wave(bits)

    # -- demodulation ----------------------------------------------------------

    def _estimate_cfo(
        self, iq: np.ndarray, start: int, track: np.ndarray | None = None
    ) -> float:
        """Mean frequency over the alternating preamble = carrier offset."""
        span = self._data_samples(8 * len(self._preamble))
        if track is None:
            track = fsk_frequency_track(
                iq[start : start + span],
                self.sample_rate,
                self._sps,
                self.bandwidth,
            )
            window = track
        else:
            window = track[start : start + span]
        return float(np.mean(window)) if len(window) else 0.0

    def demodulate(self, iq: np.ndarray) -> FrameResult:
        iq = np.asarray(iq, dtype=np.complex128)
        start, score = sample_sync_strided(
            iq,
            self.sync_reference(),
            self._threshold,
            block=2 * self._sps,
            stride=max(self._sps // 10, 1),
        )
        # Frame-sized slice: bound the discriminator's filtering work.
        bound = self._data_samples(8 * (len(self._preamble) + 1 + 255)) + self._sps
        iq = iq[start : start + bound]
        frame_start, start = start, 0
        track = None
        if backend_enabled():
            # One discriminator pass over the bound slice feeds the CFO
            # estimate and both bit reads (legacy recomputes it thrice).
            track = fsk_frequency_track(
                iq, self.sample_rate, self._sps, self.bandwidth
            )
        cfo = self._estimate_cfo(iq, start, track=track)
        mpdu_at = start + self._data_samples(8 * (len(self._preamble) + 1))
        # Read up to the length field first (home + src + fc + length).
        fixed = 4 + 1 + 2 + 1
        head_bits = self._read_bits(iq, mpdu_at, 8 * fixed, cfo, track=track)
        length = bits_to_int(head_bits[-8:])
        if length < _MPDU_OVERHEAD or length > 255:
            raise ChecksumError(f"implausible MPDU length {length}")
        mpdu_bits = self._read_bits(iq, mpdu_at, 8 * length, cfo, track=track)
        mpdu = bits_to_bytes(mpdu_bits)
        crc_ok = xor_checksum(mpdu[:-1]) == mpdu[-1]
        payload = mpdu[fixed + 1 : -1]
        return FrameResult(
            payload=payload,
            crc_ok=crc_ok,
            start=frame_start,
            sync_score=score,
            extra={"home_id": mpdu[:4], "length": length},
        )
