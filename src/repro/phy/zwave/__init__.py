"""Z-Wave (ITU-T G.9959 R2 BFSK) PHY."""

from .modem import ZWaveModem

__all__ = ["ZWaveModem"]
