"""Command-line entry point: ``galiot <experiment>``.

Runs any of the paper-reproduction experiments and prints its table.
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    format_table,
    run_battery,
    run_boundary,
    run_compression,
    run_compression_depth,
    run_overlap,
    run_roc,
    run_edge_cloud,
    run_fig3b,
    run_fig3c,
    run_headline,
    run_hopping,
    run_kill_filters,
    run_scaling,
    run_sic_depth,
    run_table1,
)

_EXPERIMENTS = {
    "table1": lambda args: run_table1(),
    "fig3b": lambda args: run_fig3b(trials_per_band=args.trials).table(),
    "fig3c": lambda args: run_fig3c(episodes_per_bucket=args.trials).table(),
    "headline": lambda args: run_headline(
        detection_trials=args.trials, episodes_per_bucket=args.trials
    ).table(),
    "scaling": lambda args: run_scaling(),
    "compression": lambda args: run_compression(),
    "kill-filters": lambda args: run_kill_filters(),
    "edge-cloud": lambda args: run_edge_cloud(),
    "sic-depth": lambda args: run_sic_depth(),
    "boundary": lambda args: run_boundary(trials=args.trials),
    "hopping": lambda args: run_hopping(),
    "roc": lambda args: run_roc(trials=args.trials),
    "compression-depth": lambda args: run_compression_depth(trials=args.trials),
    "overlap": lambda args: run_overlap(trials=args.trials),
    "battery": lambda args: run_battery(rounds=max(args.trials, 1)),
}


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, run one experiment, print its table."""
    parser = argparse.ArgumentParser(
        prog="galiot",
        description=(
            "GalioT (HotNets'18) reproduction experiments: regenerate the "
            "paper's tables and figures from the simulated prototype."
        ),
    )
    parser.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    parser.add_argument(
        "--trials",
        type=int,
        default=3,
        help="scenes/episodes per band or bucket (larger = smoother)",
    )
    args = parser.parse_args(argv)
    table = _EXPERIMENTS[args.experiment](args)
    print(format_table(table))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
