"""Command-line entry point: ``galiot <command>``.

Two families of subcommands:

* one per paper-reproduction experiment (``galiot table1``,
  ``galiot fig3b --trials 5`` …) printing its table;
* ``galiot stream`` — run the chunked :class:`~repro.gateway.streaming.
  StreamingGateway` over a synthetic scene with live telemetry and print
  the per-chunk progress plus the end-to-end stage breakdown;
* ``galiot cloud --workers N`` — stream a collision-heavy scene through
  the gateway and fan the shipped segments out over the
  :class:`~repro.cloud.parallel.ParallelCloudService` decode farm
  (``--workers 0`` decodes serially for comparison);
* ``galiot chaos --scenario mixed`` — run the same end-to-end pipeline
  under a seeded :class:`~repro.faults.FaultPlan` (backhaul outages,
  worker crashes/hangs, poison segments, front-end dropouts) with the
  resilience layer on, and report frame survival versus the fault-free
  run;
* ``galiot serve --devices 1000000`` — offer a fleet-scale multi-tenant
  workload to the :class:`~repro.service.IngestionService` (admission
  control, per-tenant quotas, priority queues, autoscaled decode
  workers) and print the deterministic ledger plus latency percentiles.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .contracts import set_sanitize_mode

from .experiments import (
    format_table,
    run_battery,
    run_boundary,
    run_compression,
    run_compression_depth,
    run_overlap,
    run_roc,
    run_edge_cloud,
    run_fig3b,
    run_fig3c,
    run_headline,
    run_hopping,
    run_kill_filters,
    run_scaling,
    run_sic_depth,
    run_table1,
)
from .telemetry import Telemetry, format_snapshot

_EXPERIMENTS = {
    "table1": lambda args: run_table1(),
    "fig3b": lambda args: run_fig3b(trials_per_band=args.trials).table(),
    "fig3c": lambda args: run_fig3c(episodes_per_bucket=args.trials).table(),
    "headline": lambda args: run_headline(
        detection_trials=args.trials, episodes_per_bucket=args.trials
    ).table(),
    "scaling": lambda args: run_scaling(),
    "compression": lambda args: run_compression(),
    "kill-filters": lambda args: run_kill_filters(),
    "edge-cloud": lambda args: run_edge_cloud(),
    "sic-depth": lambda args: run_sic_depth(),
    "boundary": lambda args: run_boundary(trials=args.trials),
    "hopping": lambda args: run_hopping(),
    "roc": lambda args: run_roc(trials=args.trials),
    "compression-depth": lambda args: run_compression_depth(trials=args.trials),
    "overlap": lambda args: run_overlap(trials=args.trials),
    "battery": lambda args: run_battery(rounds=max(args.trials, 1)),
}


def _run_experiment(args: argparse.Namespace) -> int:
    table = _EXPERIMENTS[args.command](args)
    print(format_table(table))
    return 0


def _run_stream(args: argparse.Namespace) -> int:
    """Chunked streaming demo: scene -> StreamingGateway -> telemetry."""
    from .gateway import GalioTGateway, StreamingGateway, iter_chunks
    from .net.scene import SceneBuilder
    from .phy import create_modem

    fs = 1e6
    rng = np.random.default_rng(args.seed)
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    builder = SceneBuilder(fs, args.duration)
    n_samples = int(args.duration * fs)
    for i in range(args.packets):
        modem = modems[i % len(modems)]
        start = int((i + 0.5) * n_samples / args.packets)
        builder.add_packet(
            modem, f"stream-{i}".encode(), start, args.snr, rng,
            snr_mode="capture",
        )
    capture, truth = builder.render(rng)

    telemetry = Telemetry()
    gateway = GalioTGateway(
        modems, fs, detector=args.detector, telemetry=telemetry
    )
    # Freeze the operating point on a noise-only stretch so every chunk
    # (and a monolithic rerun) shares one threshold.
    noise = (
        rng.normal(size=200_000) + 1j * rng.normal(size=200_000)
    ) * np.sqrt(truth.noise_power / 2)
    gateway.detector.calibrate(noise)

    stream = StreamingGateway(gateway)
    total_events = total_segments = total_bits = 0
    for n, report in enumerate(
        stream.run(iter_chunks(capture, args.chunk))
    ):
        total_events += len(report.events)
        total_segments += len(report.segments)
        total_bits += report.shipped_bits
        label = f"chunk {n:3d}" if n * args.chunk < len(capture) else "finalize"
        print(
            f"{label}: +{len(report.events)} events, "
            f"+{len(report.segments)} segments, "
            f"+{report.shipped_bits} bits shipped"
        )
    print(
        f"\ntotals: {total_events} events, {total_segments} segments, "
        f"{total_bits} bits shipped "
        f"({args.packets} packets in {args.duration:.2f} s of capture)\n"
    )
    print(format_snapshot(telemetry.snapshot()))
    return 0


def _run_cloud(args: argparse.Namespace) -> int:
    """Gateway -> cloud farm demo: shipped segments decoded in parallel."""
    import time

    from .cloud import CloudService, ParallelCloudService
    from .gateway import GalioTGateway, StreamingGateway, iter_chunks
    from .net.scene import SceneBuilder
    from .phy import create_modem

    fs = 1e6
    rng = np.random.default_rng(args.seed)
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    builder = SceneBuilder(fs, args.duration)
    n_samples = int(args.duration * fs)
    for i in range(args.packets):
        modem = modems[i % len(modems)]
        # Every other packet lands on top of its predecessor, so the
        # farm sees a realistic mix of clean and collided segments.
        slot = (i // 2 * 2 + 0.5) * n_samples / args.packets
        start = int(slot) + (i % 2) * 400
        builder.add_packet(
            modem, f"cloud-{i}".encode(), start, args.snr, rng,
            snr_mode="capture",
        )
    capture, truth = builder.render(rng)

    telemetry = Telemetry()
    gateway = GalioTGateway(
        modems, fs, use_edge=False, telemetry=telemetry
    )
    noise = (
        rng.normal(size=200_000) + 1j * rng.normal(size=200_000)
    ) * np.sqrt(truth.noise_power / 2)
    gateway.detector.calibrate(noise)

    if args.workers < 1:
        service = CloudService(modems, fs, telemetry=telemetry)
        stream = StreamingGateway(gateway)
        label = "serial"
    else:
        service = ParallelCloudService(
            modems, fs, workers=args.workers, telemetry=telemetry,
            executor=args.executor,
        )
        stream = StreamingGateway(gateway, on_shipped=service.submit)
        label = f"{args.workers} workers ({args.executor})"

    results = []
    t0 = time.perf_counter()
    try:
        for report in stream.run(iter_chunks(capture, args.chunk)):
            if args.workers < 1:
                for segment in report.shipped:
                    results.extend(service.process_segment(segment))
        if args.workers >= 1:
            results = service.drain()
    finally:
        # A crashed run must not leave worker processes (or their
        # /dev/shm blocks) behind; close() is idempotent.
        if args.workers >= 1:
            service.close()
    elapsed = time.perf_counter() - t0

    stats = service.stats
    rate = stats.segments / elapsed if elapsed > 0 else float("inf")
    print(
        f"cloud [{label}]: {stats.segments} segments, "
        f"{stats.frames_decoded} frames decoded in {elapsed:.2f} s "
        f"({rate:.2f} segments/s)"
    )
    print(f"  by method: {stats.by_method}")
    print(f"  by technology: {stats.by_technology}")
    for r in results:
        print(f"  {r.technology:>6s} @ {r.start:>9d} via {r.method}: {r.payload!r}")
    print()
    print(format_snapshot(telemetry.snapshot()))
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    """End-to-end chaos drill: fault-free baseline vs. resilient run."""
    from .cloud import CloudResilience, CloudService, ParallelCloudService
    from .faults import build_scenario
    from .gateway import (
        BackhaulLink,
        DegradationLadder,
        GalioTGateway,
        ResilientBackhaul,
        RtlSdrModel,
        StreamingGateway,
        iter_chunks,
    )
    from .net.scene import SceneBuilder
    from .phy import create_modem

    fs = 1e6
    rng = np.random.default_rng(args.seed)
    # Compact-frame technologies by default: with LoRa in the mix its
    # 2x-frame extraction windows merge every packet into one mega
    # segment, which collapses the per-segment fault axes (poison,
    # corruption) the drill exists to exercise.
    modems = [create_modem(n.strip()) for n in args.technologies.split(",")]
    builder = SceneBuilder(fs, args.duration)
    n_samples = int(args.duration * fs)
    for i in range(args.packets):
        modem = modems[i % len(modems)]
        start = int((i + 0.5) * n_samples / args.packets)
        builder.add_packet(
            modem, f"chaos-{i}".encode(), start, args.snr, rng,
            snr_mode="capture",
        )
    capture, truth = builder.render(rng)
    noise = (
        rng.normal(size=200_000) + 1j * rng.normal(size=200_000)
    ) * np.sqrt(truth.noise_power / 2)
    plan = build_scenario(
        args.scenario,
        seed=args.seed,
        duration_s=args.duration,
        n_segments_hint=args.packets,
    )

    def run(faulty: bool):
        telemetry = Telemetry()
        front_end = (
            RtlSdrModel(faults=plan if faulty else None)
            if plan.sample_gaps
            else None
        )
        if faulty:
            backhaul = ResilientBackhaul(
                BackhaulLink(rate_bps=args.rate_mbps * 1e6, max_queue_s=0.5),
                faults=plan,
            )
            ladder = DegradationLadder()
        else:
            backhaul, ladder = None, None
        gateway = GalioTGateway(
            modems, fs, use_edge=False, front_end=front_end,
            backhaul=backhaul, degradation=ladder, telemetry=telemetry,
        )
        gateway.detector.calibrate(noise)
        if faulty:
            farm = ParallelCloudService(
                modems, fs, workers=args.workers, executor=args.executor,
                telemetry=telemetry, faults=plan,
                resilience=CloudResilience(decode_timeout_s=30.0),
            )
            stream = StreamingGateway(
                gateway, on_shipped=farm.submit, fault_tolerant=True
            )
            try:
                report = stream.process_stream(
                    iter_chunks(capture, args.chunk)
                )
                results = farm.drain()
                quarantined = list(farm.quarantine)
                stats = farm.stats
            finally:
                # The drill injects crashes on purpose: an escaping
                # fault must still tear the farm down.
                farm.close()
        else:
            service = CloudService(modems, fs, telemetry=telemetry)
            stream = StreamingGateway(gateway)
            report = stream.process_stream(iter_chunks(capture, args.chunk))
            results = [
                r for s in report.shipped for r in service.process_segment(s)
            ]
            quarantined = []
            stats = service.stats
        return report, results, quarantined, stats, telemetry

    print(f"scenario {args.scenario!r} (seed {args.seed}):")
    for w in plan.outages:
        print(f"  outage          {w.start_s:.3f}s .. {w.end_s:.3f}s")
    for s in plan.latency_spikes:
        print(f"  latency spike   {s.start_s:.3f}s .. {s.end_s:.3f}s (+{s.extra_s*1e3:.0f} ms)")
    for g in plan.sample_gaps:
        print(f"  sample gap      {g.start} (+{g.length} samples)")
    if plan.poison_segments:
        print(f"  poison segments {sorted(plan.poison_segments)}")
    if plan.corrupt_segments:
        print(f"  corrupt segments {sorted(plan.corrupt_segments)}")
    if plan.crash_submissions:
        print(f"  worker crashes at submissions {sorted(plan.crash_submissions)}")
    if plan.hang_submissions:
        print(f"  worker hangs at submissions {sorted(plan.hang_submissions)}")
    print()

    _, base_results, _, _, _ = run(faulty=False)
    report, results, quarantined, stats, telemetry = run(faulty=True)

    base_frames = [(r.technology, r.payload) for r in base_results if r.ok]
    frames = [(r.technology, r.payload) for r in results if r.ok]
    survived = sum(1 for f in base_frames if f in frames)
    ratio = survived / len(base_frames) if base_frames else 1.0
    print(
        f"fault-free frames: {len(base_frames)}  "
        f"chaos frames: {len(frames)}  "
        f"survival: {100 * ratio:.1f}%"
    )
    print(
        f"gateway: {len(report.shipped)} shipped, "
        f"{report.degraded_segments} degraded (metadata-only), "
        f"{report.dropped_segments} evicted"
    )
    print(
        f"cloud: {stats.segments} decoded, {stats.retried} retried, "
        f"{stats.requeued} requeued, {stats.quarantined} quarantined, "
        f"{stats.degraded} degraded"
    )
    for q in quarantined:
        print(f"  quarantined seq {q.seq}: {q.reason}")
    print()
    print(format_snapshot(telemetry.snapshot()))
    return 0 if ratio >= 0.95 else 1


def _run_attack(args: argparse.Namespace) -> int:
    """Scored adversarial drill: legit-traffic survival under attack."""
    from .net.adversary import build_attack_scenario
    from .net.attackdrill import run_attack_drill

    technologies = tuple(n.strip() for n in args.technologies.split(","))
    plan = build_attack_scenario(
        args.scenario,
        seed=args.seed,
        duration_s=args.duration,
        technologies=technologies,
        n_packets_hint=args.packets,
    )
    print(f"scenario {args.scenario!r} (seed {args.seed}):")
    for j in plan.jammers:
        extra = f" period {j.period_s * 1e3:.0f} ms duty {j.duty:.2f}" if j.kind == "pulse" else ""
        print(
            f"  {j.kind + ' jammer':<15} {j.start_s:.3f}s .. {j.end_s:.3f}s "
            f"power {j.power:.1f}x{extra}"
        )
    for r in plan.replays:
        print(
            f"  replay          packet #{r.victim} after +{r.delay_s:.3f}s "
            f"({r.gain_db:+.1f} dB)"
        )
    for s in plan.spoofs:
        print(f"  spoof           {s.technology} preamble at {s.start_s:.3f}s")
    if plan.is_empty():
        print("  (no adversary: measures the hardening layer's clean-air overhead)")
    print()

    report = run_attack_drill(
        args.scenario,
        seed=args.seed,
        duration_s=args.duration,
        packets=args.packets,
        snr_db=args.snr,
        technologies=technologies,
        rate_mbps=args.rate_mbps,
        chunk=args.chunk,
        hardened=not args.unhardened,
    )
    print(
        f"baseline frames: {report.baseline_frames}  "
        f"accepted under attack: {report.accepted_frames}  "
        f"survival: {100 * report.survival:.1f}%"
    )
    print(
        f"acceptance hygiene: {report.false_decodes} false decodes "
        f"({100 * report.false_decode_rate:.2f}%), "
        f"{report.replay_accepts} replays accepted "
        f"(guard rejected {report.guard.replays_rejected} replays, "
        f"{report.guard.duplicates_rejected} duplicates, "
        f"{report.guard.corrupt_rejected} corrupt)"
    )
    latency = report.detection_latency_s
    latency_str = (
        "n/a (no jammers)" if latency is None
        else "undetected" if latency == float("inf")
        else f"{latency * 1e3:.1f} ms"
    )
    print(
        f"jamming: {report.jamming_events} events, "
        f"detection latency {latency_str}"
    )
    print(
        f"gateway: {report.degraded_segments} degraded (metadata-only), "
        f"{report.dropped_segments} evicted"
    )
    print()
    print(format_snapshot(report.telemetry.snapshot()))
    return 0 if report.passed() else 1


def _run_serve(args: argparse.Namespace) -> int:
    """Fleet-scale ingestion demo: load generator -> service -> farm."""
    from .cloud import ParallelCloudService
    from .net.traffic import DutyCycleProfile
    from .phy import create_modem
    from .service import (
        AdmissionController,
        AdmissionPolicy,
        AutoscalePolicy,
        AutoscalerModel,
        IngestionService,
        TenantQuota,
        TenantWorkload,
        generate_workload,
        offered_rate_hz,
    )

    fs = 250e3
    rng = np.random.default_rng(args.seed)
    # Three tenants share the fleet: a dense LoRa metering estate, a
    # chattier XBee sensor deployment and a small Z-Wave alarm fleet.
    workloads = [
        TenantWorkload(
            "metering", "eu868",
            DutyCycleProfile("lora", int(args.devices * 0.6), 0.001, 12),
        ),
        TenantWorkload(
            "sensors", "us915",
            DutyCycleProfile("xbee", int(args.devices * 0.3), 0.005, 16),
        ),
        TenantWorkload(
            "alarms", "eu868",
            DutyCycleProfile("zwave", int(args.devices * 0.1), 0.0005, 10),
        ),
    ]
    modems = {
        w.profile.technology: create_modem(w.profile.technology)
        for w in workloads
    }
    offered = offered_rate_hz(workloads, modems)
    print(
        f"fleet: {args.devices:,} devices over {len(workloads)} tenants, "
        f"offered load {offered:,.0f} segments/s (modeled)"
    )
    arrivals = generate_workload(
        workloads, fs, args.duration, rng, max_requests=args.max_requests
    )
    print(
        f"drawn: {len(arrivals)} arrivals over the first "
        f"{arrivals[-1].arrival_s * 1e3:.2f} ms of modeled time"
    )

    admission = None
    if not args.no_admission:
        admission = AdmissionController(
            AdmissionPolicy(
                default_quota=TenantQuota(
                    rate_hz=args.quota_hz, burst=args.quota_burst
                ),
                drain_rate_hz=args.drain_hz,
                max_backlog=args.max_backlog,
            )
        )
    if args.workers > 0:
        policy = AutoscalePolicy(
            min_workers=args.workers, max_workers=args.workers
        )
    else:
        policy = AutoscalePolicy()
    telemetry = Telemetry()
    with ParallelCloudService(
        list(modems.values()), fs, workers=max(policy.max_workers, 1),
        executor=args.executor, telemetry=telemetry,
    ) as farm:
        service = IngestionService(
            farm,
            admission=admission,
            autoscaler=AutoscalerModel(policy=policy),
            telemetry=telemetry,
        )
        report = service.run(arrivals)

    ledger = report.ledger
    label = (
        f"{args.workers} workers" if args.workers > 0
        else f"autoscaled (peak {report.peak_workers})"
    )
    print(
        f"\nserve [{label}]: {ledger.accepted}/{ledger.offered} admitted, "
        f"{ledger.decoded_segments} decoded "
        f"({ledger.ok_frames}/{ledger.decoded_frames} frames ok), "
        f"{ledger.quarantined} quarantined in {report.elapsed_s:.2f} s "
        f"({report.sustained_rate_hz:.1f} segments/s sustained)"
    )
    if ledger.rejected:
        shed = ", ".join(
            f"{reason}: {count}"
            for reason, count in sorted(ledger.rejected.items())
        )
        print(f"  shed: {shed}")
    for tenant, counts in sorted(ledger.by_tenant.items()):
        detail = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"  tenant {tenant}: {detail}")
    print(
        f"  latency: p50 {report.latency_percentile(50) * 1e3:.2f} ms, "
        f"p99 {report.latency_percentile(99) * 1e3:.2f} ms"
    )
    if report.scale_events:
        print(f"  autoscaler: {report.scale_events} scale events")
    print()
    print(format_snapshot(telemetry.snapshot()))
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    """Run the repo's DSP-aware linter (``tools/galiot_lint``)."""
    try:
        from galiot_lint.cli import main as lint_main
    except ImportError:
        tools = Path(__file__).resolve().parents[2] / "tools"
        if not (tools / "galiot_lint").is_dir():
            print(
                "galiot-lint is unavailable (tools/galiot_lint not found; "
                "run from a source checkout)",
                file=sys.stderr,
            )
            return 2
        sys.path.insert(0, str(tools))
        from galiot_lint.cli import main as lint_main
    argv = list(args.paths)
    for selected in args.select or []:
        argv += ["--select", selected]
    for ignored in args.ignore or []:
        argv += ["--ignore", ignored]
    if args.list_rules:
        argv.append("--list-rules")
    if args.format != "text":
        argv += ["--format", args.format]
    if args.fix:
        argv.append("--fix")
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.no_cache:
        argv.append("--no-cache")
    if args.stats:
        argv.append("--stats")
    return lint_main(argv)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch one subcommand."""
    parser = argparse.ArgumentParser(
        prog="galiot",
        description=(
            "GalioT (HotNets'18) reproduction: regenerate the paper's "
            "tables and figures, or drive the streaming gateway."
        ),
    )
    parser.add_argument(
        "--sanitize",
        choices=["off", "warn", "raise"],
        default=None,
        help=(
            "runtime signal-contract mode for this invocation "
            "(overrides the GALIOT_SANITIZE environment variable)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in sorted(_EXPERIMENTS):
        exp = sub.add_parser(name, help=f"run the {name} experiment")
        exp.add_argument(
            "--trials",
            type=int,
            default=3,
            help="scenes/episodes per band or bucket (larger = smoother)",
        )
        exp.set_defaults(func=_run_experiment)
    stream = sub.add_parser(
        "stream",
        help="run the chunked streaming gateway with end-to-end telemetry",
    )
    stream.add_argument(
        "--chunk", type=_positive_int, default=262_144,
        help="chunk size in samples (default: 262144)",
    )
    stream.add_argument(
        "--duration", type=float, default=1.0,
        help="scene duration in seconds (default: 1.0)",
    )
    stream.add_argument(
        "--packets", type=_positive_int, default=6,
        help="packets placed in the scene (default: 6)",
    )
    stream.add_argument(
        "--snr", type=float, default=10.0,
        help="per-packet capture SNR in dB (default: 10)",
    )
    stream.add_argument(
        "--detector", choices=["universal", "bank", "energy"],
        default="universal", help="detector to stream (default: universal)",
    )
    stream.add_argument(
        "--seed", type=int, default=0xC0FFEE, help="scene RNG seed"
    )
    stream.set_defaults(func=_run_stream)
    cloud = sub.add_parser(
        "cloud",
        help="stream a scene into the parallel cloud decode farm",
    )
    cloud.add_argument(
        "--workers", type=int, default=2,
        help="decode farm size; 0 = serial CloudService (default: 2)",
    )
    cloud.add_argument(
        "--executor", choices=["process", "thread"], default="process",
        help="worker pool flavour (default: process)",
    )
    cloud.add_argument(
        "--chunk", type=_positive_int, default=262_144,
        help="streaming chunk size in samples (default: 262144)",
    )
    cloud.add_argument(
        "--duration", type=float, default=1.0,
        help="scene duration in seconds (default: 1.0)",
    )
    cloud.add_argument(
        "--packets", type=_positive_int, default=6,
        help="packets placed in the scene, pairwise-collided (default: 6)",
    )
    cloud.add_argument(
        "--snr", type=float, default=12.0,
        help="per-packet capture SNR in dB (default: 12)",
    )
    cloud.add_argument(
        "--seed", type=int, default=0xC0FFEE, help="scene RNG seed"
    )
    cloud.set_defaults(func=_run_cloud)
    chaos = sub.add_parser(
        "chaos",
        help="run a seeded fault scenario through the resilient pipeline",
    )
    from .faults import SCENARIOS

    chaos.add_argument(
        "--scenario", choices=SCENARIOS, default="mixed",
        help="named fault scenario to inject (default: mixed)",
    )
    chaos.add_argument(
        "--workers", type=_positive_int, default=2,
        help="decode farm size (default: 2)",
    )
    chaos.add_argument(
        "--executor", choices=["process", "thread"], default="thread",
        help="worker pool flavour (default: thread)",
    )
    chaos.add_argument(
        "--chunk", type=_positive_int, default=262_144,
        help="streaming chunk size in samples (default: 262144)",
    )
    chaos.add_argument(
        "--duration", type=float, default=2.0,
        help="scene duration in seconds (default: 2.0)",
    )
    chaos.add_argument(
        "--packets", type=_positive_int, default=48,
        help="packets placed in the scene (default: 48 — the mixed "
        "scenario loses ~2 segments, so the 95%% survival bar needs "
        "a few dozen)",
    )
    chaos.add_argument(
        "--snr", type=float, default=12.0,
        help="per-packet capture SNR in dB (default: 12)",
    )
    chaos.add_argument(
        "--rate-mbps", type=float, default=20.0,
        help="backhaul link rate in Mbit/s (default: 20)",
    )
    chaos.add_argument(
        "--technologies", default="xbee,zwave",
        help="comma-separated modem round-robin (default: xbee,zwave; "
        "adding lora merges packets into few large segments)",
    )
    chaos.add_argument(
        "--seed", type=int, default=0xC0FFEE, help="scene + fault RNG seed"
    )
    chaos.set_defaults(func=_run_chaos)
    attack = sub.add_parser(
        "attack",
        help="run a seeded adversary scenario against the hardened pipeline",
    )
    from .net.adversary import ATTACK_SCENARIOS

    attack.add_argument(
        "--scenario", choices=ATTACK_SCENARIOS, default="mixed",
        help="named attack scenario to render (default: mixed; 'none' "
        "measures the hardening layer's clean-air overhead)",
    )
    attack.add_argument(
        "--chunk", type=_positive_int, default=262_144,
        help="streaming chunk size in samples (default: 262144)",
    )
    attack.add_argument(
        "--duration", type=float, default=2.0,
        help="scene duration in seconds (default: 2.0)",
    )
    attack.add_argument(
        "--packets", type=_positive_int, default=48,
        help="honest packets placed in the scene (default: 48)",
    )
    attack.add_argument(
        "--snr", type=float, default=12.0,
        help="per-packet capture SNR in dB (default: 12)",
    )
    attack.add_argument(
        "--rate-mbps", type=float, default=20.0,
        help="backhaul link rate in Mbit/s (default: 20)",
    )
    attack.add_argument(
        "--technologies", default="xbee,zwave",
        help="comma-separated modem round-robin (default: xbee,zwave)",
    )
    attack.add_argument(
        "--unhardened", action="store_true",
        help="disable the hardened receive path (what the guards are worth)",
    )
    attack.add_argument(
        "--seed", type=int, default=0xC0FFEE,
        help="scene + attack-plan RNG seed",
    )
    attack.set_defaults(func=_run_attack)
    serve = sub.add_parser(
        "serve",
        help="offer a fleet-scale tenant workload to the ingestion service",
    )
    serve.add_argument(
        "--devices", type=_positive_int, default=1_000_000,
        help="simulated device population across tenants (default: 10^6)",
    )
    serve.add_argument(
        "--duration", type=float, default=30.0,
        help="modeled horizon in seconds (default: 30)",
    )
    serve.add_argument(
        "--max-requests", type=_positive_int, default=400,
        help="arrival-stream budget (default: 400)",
    )
    serve.add_argument(
        "--workers", type=int, default=0,
        help="decode workers; 0 = queue-depth autoscaling (default: 0)",
    )
    serve.add_argument(
        "--executor", choices=["process", "thread"], default="thread",
        help="decode pool flavour (default: thread)",
    )
    serve.add_argument(
        "--no-admission", action="store_true",
        help="disable admission control (accept every arrival)",
    )
    serve.add_argument(
        "--quota-hz", type=float, default=2000.0,
        help="per-tenant sustained admission rate (default: 2000)",
    )
    serve.add_argument(
        "--quota-burst", type=_positive_int, default=64,
        help="per-tenant admission burst depth (default: 64)",
    )
    serve.add_argument(
        "--drain-hz", type=float, default=5000.0,
        help="modeled decode capacity for the backlog bound (default: 5000)",
    )
    serve.add_argument(
        "--max-backlog", type=_positive_int, default=256,
        help="modeled backlog bound before shedding (default: 256)",
    )
    serve.add_argument(
        "--seed", type=int, default=0xC0FFEE, help="workload RNG seed"
    )
    serve.set_defaults(func=_run_serve)
    lint = sub.add_parser(
        "lint",
        help="run the DSP-aware static-analysis pass (galiot-lint)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--select", action="append", default=None, metavar="CODES",
        help="comma-separated rule codes/prefixes to enable (e.g. GL001,GL004)",
    )
    lint.add_argument(
        "--ignore", action="append", default=None, metavar="CODES",
        help="comma-separated rule codes/prefixes to disable",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list the available rules and exit",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="apply available autofixes, then re-lint",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file of tolerated findings "
        "(default: ./.galiot-lint-baseline.json if present)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file and report every finding",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="disable the per-file analysis cache",
    )
    lint.add_argument(
        "--stats", action="store_true",
        help="print cache/timing statistics to stderr",
    )
    lint.set_defaults(func=_run_lint)
    args = parser.parse_args(argv)
    if args.sanitize is not None:
        set_sanitize_mode(args.sanitize)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
