"""The GalioT gateway: RTL-SDR model, universal detection, ship-to-cloud.

Pipeline (Figure 2 of the paper):

    RtlSdrModel -> UniversalPreambleDetector -> SegmentExtractor
        -> EdgeDecoder (optional) -> SegmentCodec -> BackhaulLink
"""

from .backhaul import BackhaulLink, Shipment
from .channelizer import Channelizer
from .compression import CompressedSegment, CompressionStats, SegmentCodec
from .detection import (
    EnergyDetector,
    PreambleBankDetector,
    cfar_threshold,
    detection_ratio,
    match_events,
    matched_filter_track,
    packet_detected,
)
from .edge import EdgeDecoder, EdgeOutcome
from .extractor import SegmentExtractor, max_frame_samples
from .gateway import GalioTGateway, GatewayReport
from .monitor import OccupancyMonitor, TechnologyStats
from .hopping import (
    ChannelPlan,
    DwellResult,
    HopScheduler,
    HoppingFrontend,
    run_hopping_campaign,
)
from .resilience import (
    DegradationLadder,
    ResilientBackhaul,
    ShipOutcome,
    SpillEntry,
)
from .rtlsdr import RtlSdrConfig, RtlSdrModel
from .streaming import StreamingGateway, detector_context, iter_chunks
from .universal import UniversalPreamble, UniversalPreambleDetector

__all__ = [
    "BackhaulLink",
    "Shipment",
    "Channelizer",
    "CompressedSegment",
    "CompressionStats",
    "SegmentCodec",
    "EnergyDetector",
    "PreambleBankDetector",
    "cfar_threshold",
    "matched_filter_track",
    "match_events",
    "packet_detected",
    "detection_ratio",
    "EdgeDecoder",
    "EdgeOutcome",
    "SegmentExtractor",
    "max_frame_samples",
    "GalioTGateway",
    "GatewayReport",
    "OccupancyMonitor",
    "TechnologyStats",
    "ChannelPlan",
    "HoppingFrontend",
    "HopScheduler",
    "DwellResult",
    "run_hopping_campaign",
    "DegradationLadder",
    "ResilientBackhaul",
    "ShipOutcome",
    "SpillEntry",
    "RtlSdrConfig",
    "RtlSdrModel",
    "StreamingGateway",
    "detector_context",
    "iter_chunks",
    "UniversalPreamble",
    "UniversalPreambleDetector",
]
