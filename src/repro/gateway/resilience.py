"""Resilient shipping: spill buffer, retries, and graceful degradation.

Before this layer, a backhaul backlog raised
:class:`~repro.errors.CapacityError` and the segment was simply gone —
acceptable in a benchmark, fatal in the paper's always-on deployment.
:class:`ResilientBackhaul` wraps the FIFO
:class:`~repro.gateway.backhaul.BackhaulLink` with three policies:

* **Spill, don't drop.** A shipment the link refuses (backlog bound, or
  an injected outage from a :class:`~repro.faults.FaultPlan`) lands in a
  bounded spill buffer and is retried with exponential backoff plus
  deterministic seeded jitter, on the modelled ``at_time`` axis — no
  wall-clock, so runs are reproducible.
* **Priority eviction.** When the spill buffer itself overflows, the
  lowest-score (then oldest) entries are evicted first: a weak detection
  is sacrificed before a strong one, and every eviction is an explicit,
  telemetry-counted ``backhaul.evicted`` — the *only* way this layer
  loses a segment.
* **Pressure signal.** :meth:`ResilientBackhaul.pressure` folds link
  backlog, spill fill and outage state into one [0, 1] number that
  :class:`DegradationLadder` consumes to walk the gateway down (and back
  up) the full → compressed → metadata-only shipping ladder.

Everything is inert by default: a gateway without a
``ResilientBackhaul`` takes none of these code paths, and a
``ResilientBackhaul`` without a fault plan only differs from the raw
link in what happens *after* the link refuses a shipment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CapacityError, ConfigurationError
from ..faults import FaultPlan
from ..telemetry import NULL, Telemetry
from .backhaul import BackhaulLink, Shipment

__all__ = ["SpillEntry", "ShipOutcome", "ResilientBackhaul", "DegradationLadder"]


@dataclass
class SpillEntry:
    """One shipment waiting in the spill buffer for a retry slot.

    Attributes:
        payload: Opaque caller object delivered back on success (the
            gateway passes the :class:`~repro.types.Segment`; ``None``
            for metadata-only ships).
        n_bits: Wire size, fixed at first submission.
        score: Drop-policy priority (the segment's best detection
            score); lowest evicts first.
        submitted_at: Original submission time (modelled seconds).
        attempt: Retries already consumed.
        next_retry_at: Earliest modelled time of the next attempt.
        metadata_only: Whether this ship carries no I/Q payload.
    """

    payload: object
    n_bits: int
    score: float
    submitted_at: float
    attempt: int = 0
    next_retry_at: float = 0.0
    metadata_only: bool = False


@dataclass(frozen=True)
class ShipOutcome:
    """What one :meth:`ResilientBackhaul.ship` call did.

    ``delivered`` may include *older* spilled entries that a due retry
    just got through, not only the entry submitted by this call;
    ``evicted`` lists drop-policy victims (possibly the new entry
    itself). ``status`` describes the submitted entry: ``"delivered"``,
    ``"spilled"`` or ``"evicted"``.
    """

    status: str
    delivered: tuple[SpillEntry, ...]
    evicted: tuple[SpillEntry, ...]


class ResilientBackhaul:
    """Bounded spill-and-retry wrapper around a :class:`BackhaulLink`.

    Args:
        link: The underlying FIFO uplink model.
        faults: Optional fault plan supplying outage windows and latency
            spikes (``None`` — the default — models a healthy link and
            costs one ``is None`` check per query).
        max_spill_bits: Spill-buffer capacity; beyond it the drop policy
            evicts lowest-score-first.
        base_backoff_s: First-retry delay (modelled seconds).
        max_backoff_s: Backoff ceiling.
        jitter: Uniform jitter fraction added to every backoff, drawn
            from a generator seeded by ``seed`` (or the plan's seed), so
            identical runs produce identical retry schedules.
        seed: Jitter seed override.
        telemetry: Metrics sink (defaults to the link's sink).
    """

    def __init__(
        self,
        link: BackhaulLink,
        faults: FaultPlan | None = None,
        max_spill_bits: int = 64_000_000,
        base_backoff_s: float = 0.05,
        max_backoff_s: float = 5.0,
        jitter: float = 0.5,
        seed: int | None = None,
        telemetry: Telemetry | None = None,
    ):
        if max_spill_bits <= 0:
            raise ConfigurationError("max_spill_bits must be positive")
        if base_backoff_s <= 0 or max_backoff_s < base_backoff_s:
            raise ConfigurationError(
                "need 0 < base_backoff_s <= max_backoff_s"
            )
        if jitter < 0:
            raise ConfigurationError("jitter must be >= 0")
        self.link = link
        self.faults = faults
        self.max_spill_bits = int(max_spill_bits)
        self.base_backoff_s = float(base_backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.jitter = float(jitter)
        self.telemetry = telemetry if telemetry is not None else link.telemetry
        root = seed if seed is not None else (faults.seed if faults else 0)
        self._rng = np.random.default_rng((root, 0x5E11))
        self.spill: list[SpillEntry] = []
        self.spill_bits = 0
        # The wrapper interleaves two time axes — segment-start ship
        # times and chunk-end retry times — so it keeps its own
        # monotonic cursor and clamps submissions forward; the raw
        # BackhaulLink underneath would (rightly) reject regressions.
        self._clock = float("-inf")

    def _advance(self, at_time: float) -> float:
        self._clock = max(self._clock, at_time)
        return self._clock

    # -- link state -------------------------------------------------------

    def link_up(self, at_time: float) -> bool:
        """Whether the uplink is outside every outage window."""
        return self.faults is None or not self.faults.backhaul_down(at_time)

    def pressure(self, at_time: float) -> float:
        """Backpressure in [0, 1]: max of outage, backlog and spill fill."""
        if not self.link_up(at_time):
            return 1.0
        backlog = max(0.0, self.link._busy_until - at_time)
        return min(
            1.0,
            max(
                backlog / self.link.max_queue_s,
                self.spill_bits / self.max_spill_bits,
            ),
        )

    # -- shipping ---------------------------------------------------------

    def ship(
        self,
        n_bits: int,
        at_time: float,
        score: float = 0.0,
        payload: object = None,
        metadata_only: bool = False,
    ) -> ShipOutcome:
        """Submit a shipment; never raises for capacity or outages.

        Due spilled entries are retried first (FIFO), then the new entry
        is attempted; on refusal it spills, and the drop policy runs.
        """
        at_time = self._advance(at_time)
        delivered = list(self.flush(at_time))
        entry = SpillEntry(
            payload=payload,
            n_bits=int(n_bits),
            score=float(score),
            submitted_at=at_time,
            metadata_only=metadata_only,
        )
        if self._try_link(entry, at_time):
            delivered.append(entry)
            return ShipOutcome("delivered", tuple(delivered), ())
        self._spill(entry, at_time)
        evicted = self._evict_over_capacity()
        status = "evicted" if any(e is entry for e in evicted) else "spilled"
        return ShipOutcome(status, tuple(delivered), tuple(evicted))

    def flush(self, at_time: float) -> list[SpillEntry]:
        """Retry every due spilled entry; returns what got through."""
        return self._retry(self._advance(at_time), due_only=True)

    def drain(self, at_time: float) -> list[SpillEntry]:
        """End-of-stream retry of *everything*, ignoring backoff timers.

        Entries the link still refuses (e.g. an outage extending past
        the stream) stay spilled — they are not lost, just undelivered.
        """
        return self._retry(self._advance(at_time), due_only=False)

    # -- internals --------------------------------------------------------

    def _retry(self, at_time: float, due_only: bool) -> list[SpillEntry]:
        if not self.spill:
            return []
        delivered: list[SpillEntry] = []
        if not self.link_up(at_time):
            return delivered
        remaining: list[SpillEntry] = []
        for entry in self.spill:
            if due_only and entry.next_retry_at > at_time:
                remaining.append(entry)
                continue
            self.telemetry.count("backhaul.retries")
            if self._attempt(entry, at_time):
                delivered.append(entry)
                self.spill_bits -= entry.n_bits
                self.telemetry.count("backhaul.recovered")
            else:
                entry.attempt += 1
                entry.next_retry_at = at_time + self._backoff(entry.attempt)
                remaining.append(entry)
        self.spill = remaining
        self.telemetry.gauge("backhaul.spill_bits", self.spill_bits)
        return delivered

    def _try_link(self, entry: SpillEntry, at_time: float) -> bool:
        """First-submission attempt: outage check plus the raw link."""
        if not self.link_up(at_time):
            return False
        return self._attempt(entry, at_time)

    def _attempt(self, entry: SpillEntry, at_time: float) -> bool:
        try:
            shipment: Shipment = self.link.ship(entry.n_bits, at_time)
        except CapacityError:
            return False
        extra = 0.0 if self.faults is None else self.faults.extra_latency_s(at_time)
        if extra > 0:
            self.telemetry.count("backhaul.latency_spikes")
            self.telemetry.gauge(
                "backhaul.last_delay_s", shipment.delay + extra
            )
        return True

    def _spill(self, entry: SpillEntry, at_time: float) -> None:
        entry.next_retry_at = at_time + self._backoff(entry.attempt)
        self.spill.append(entry)
        self.spill_bits += entry.n_bits
        self.telemetry.count("backhaul.spilled")
        self.telemetry.gauge("backhaul.spill_bits", self.spill_bits)

    def _backoff(self, attempt: int) -> float:
        base = min(self.base_backoff_s * (2.0**attempt), self.max_backoff_s)
        return base * (1.0 + self.jitter * float(self._rng.random()))

    def _evict_over_capacity(self) -> list[SpillEntry]:
        """Drop policy: evict lowest-score, then oldest, until we fit."""
        evicted: list[SpillEntry] = []
        while self.spill_bits > self.max_spill_bits and self.spill:
            victim = min(self.spill, key=lambda e: (e.score, e.submitted_at))
            self.spill.remove(victim)
            self.spill_bits -= victim.n_bits
            evicted.append(victim)
            self.telemetry.count("backhaul.evicted")
            self.telemetry.count("backhaul.evicted_bits", victim.n_bits)
        if evicted:
            self.telemetry.gauge("backhaul.spill_bits", self.spill_bits)
        return evicted


class DegradationLadder:
    """Hysteresis controller for the gateway's shipping fidelity.

    Levels (cumulative cost reduction):

    * ``FULL`` (0) — the normal pipeline: full-fidelity compressed I/Q.
    * ``COMPRESSED`` (1) — aggressive requantization (fewer bits per
      rail, max entropy-coding effort): smaller, lossier segments the
      cloud can still decode.
    * ``METADATA`` (2) — detection metadata only, no I/Q: the cloud
      learns *that* a packet was seen but cannot joint-decode it; such
      ships are counted as *degraded*, never silently lost.

    Escalation requires ``escalate_after`` consecutive pressure readings
    at or above ``high``; recovery requires ``recover_after`` readings
    at or below ``low``. The two-threshold hysteresis keeps the ladder
    from oscillating on a link hovering near its capacity.
    """

    FULL = 0
    COMPRESSED = 1
    METADATA = 2

    def __init__(
        self,
        high: float = 0.6,
        low: float = 0.2,
        escalate_after: int = 2,
        recover_after: int = 4,
        telemetry: Telemetry = NULL,
    ):
        if not 0.0 <= low < high <= 1.0:
            raise ConfigurationError("need 0 <= low < high <= 1")
        if escalate_after < 1 or recover_after < 1:
            raise ConfigurationError(
                "escalate_after and recover_after must be >= 1"
            )
        self.high = float(high)
        self.low = float(low)
        self.escalate_after = int(escalate_after)
        self.recover_after = int(recover_after)
        self.telemetry = telemetry
        self.level = self.FULL
        self._hot = 0
        self._cool = 0

    def observe(self, pressure: float) -> int:
        """Fold one pressure reading; returns the (possibly new) level."""
        if pressure >= self.high:
            self._hot += 1
            self._cool = 0
            if self._hot >= self.escalate_after and self.level < self.METADATA:
                self.level += 1
                self._hot = 0
                self.telemetry.count("gateway.degradation_escalations")
        elif pressure <= self.low:
            self._cool += 1
            self._hot = 0
            if self._cool >= self.recover_after and self.level > self.FULL:
                self.level -= 1
                self._cool = 0
                self.telemetry.count("gateway.degradation_recoveries")
        else:
            self._hot = 0
            self._cool = 0
        self.telemetry.gauge("gateway.degradation_level", self.level)
        return self.level

    def reset(self) -> None:
        """Back to full fidelity with cleared hysteresis state."""
        self.level = self.FULL
        self._hot = 0
        self._cool = 0
