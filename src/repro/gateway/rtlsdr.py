"""RTL-SDR front-end model.

The paper's gateway is a ~10$ RTL-SDR dongle: an 8-bit ADC behind a
consumer tuner, capturing 1 MHz of complex baseband. This model applies
the impairments that matter for detection and joint decoding, in the
order they occur in the real signal path:

    tuner CFO (crystal ppm) -> IQ imbalance -> DC offset
    -> front-end thermal noise -> AGC scaling -> 8-bit quantization

The output is what the Raspberry Pi sees and what the gateway's
detectors operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..dsp.impairments import (
    apply_cfo,
    apply_dc_offset,
    apply_iq_imbalance,
    cfo_from_ppm,
    quantize,
)
from ..errors import ConfigurationError

if TYPE_CHECKING:
    from ..faults import FaultPlan

__all__ = ["RtlSdrConfig", "RtlSdrModel"]


@dataclass(frozen=True)
class RtlSdrConfig:
    """Front-end parameters.

    Attributes:
        sample_rate: Complex capture rate (the paper uses 1 MHz).
        carrier_hz: Tuned carrier (868 MHz ISM band).
        adc_bits: ADC resolution (8 for the RTL2832U).
        ppm: Crystal frequency error in parts-per-million.
        iq_gain_db: IQ amplitude imbalance.
        iq_phase_deg: IQ quadrature error.
        dc_offset: Residual DC as a fraction of full scale.
        noise_floor: Added front-end noise power (0 to disable; scenes
            usually carry their own channel noise already).
        agc_headroom_db: Backoff between the signal's RMS and ADC full
            scale; models the dongle's gain staging.
    """

    sample_rate: float = 1e6
    carrier_hz: float = 868e6
    adc_bits: int = 8
    ppm: float = 0.0
    iq_gain_db: float = 0.0
    iq_phase_deg: float = 0.0
    dc_offset: complex = 0.0
    noise_floor: float = 0.0
    agc_headroom_db: float = 12.0

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        if self.adc_bits < 1:
            raise ConfigurationError("adc_bits must be >= 1")
        if self.agc_headroom_db < 0:
            raise ConfigurationError("agc_headroom_db must be >= 0")


class RtlSdrModel:
    """Applies the RTL-SDR signal path to a clean baseband stream.

    Args:
        config: Front-end parameters.
        faults: Optional :class:`~repro.faults.FaultPlan` whose
            ``sample_gaps`` are applied to the capture (zeroed ranges,
            modelling USB drops / front-end dropouts). Gap positions are
            absolute stream samples: the model keeps a cursor across
            successive :meth:`capture` calls so chunked (streaming) and
            monolithic captures see identical dropouts; call
            :meth:`reset_stream` between streams. ``None`` (default)
            costs a single ``is None`` check.
    """

    def __init__(
        self,
        config: RtlSdrConfig | None = None,
        faults: "FaultPlan | None" = None,
    ):
        self.config = config or RtlSdrConfig()
        self.faults = faults
        self._cursor = 0
        self.dropped_samples = 0

    def reset_stream(self) -> None:
        """Rewind the absolute-sample cursor used for fault placement."""
        self._cursor = 0
        self.dropped_samples = 0

    @property
    def cfo_hz(self) -> float:
        """Tuner CFO implied by the configured ppm error."""
        return cfo_from_ppm(self.config.ppm, self.config.carrier_hz)

    def capture(
        self, x: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Run ``x`` through the modelled front end.

        Args:
            x: Clean complex baseband at ``config.sample_rate``.
            rng: Needed only when ``config.noise_floor`` > 0.

        Returns:
            The quantized capture, scaled back so sample values are
            comparable with the input (the AGC gain is undone after
            quantization, leaving only quantization error and clipping).
        """
        cfg = self.config
        y = x
        if cfg.ppm:
            y = apply_cfo(y, self.cfo_hz, cfg.sample_rate)
        if cfg.iq_gain_db or cfg.iq_phase_deg:
            y = apply_iq_imbalance(y, cfg.iq_gain_db, cfg.iq_phase_deg)
        if cfg.noise_floor > 0:
            if rng is None:
                raise ConfigurationError("rng required when noise_floor > 0")
            scale = np.sqrt(cfg.noise_floor / 2)
            y = y + rng.normal(scale=scale, size=len(y)) + 1j * rng.normal(
                scale=scale, size=len(y)
            )
        rms = float(np.sqrt(np.mean(np.abs(y) ** 2))) if len(y) else 0.0
        if rms <= 0:
            self._cursor += len(x)
            return np.zeros_like(x)
        full_scale = rms * (10 ** (cfg.agc_headroom_db / 20))
        if cfg.dc_offset:
            y = apply_dc_offset(y, cfg.dc_offset * full_scale)
        out = quantize(y, cfg.adc_bits, full_scale)
        if self.faults is not None:
            out = self._apply_gaps(out)
        self._cursor += len(x)
        return out

    def _apply_gaps(self, out: np.ndarray) -> np.ndarray:
        """Zero the scheduled dropout ranges overlapping this capture."""
        lo = self._cursor
        hi = lo + len(out)
        for gap in self.faults.gaps_overlapping(lo, hi):
            a = max(gap.start, lo) - lo
            b = min(gap.end, hi) - lo
            out[a:b] = 0
            self.dropped_samples += b - a
        return out

    def bits_per_second_raw(self) -> float:
        """Backhaul cost of shipping the raw stream (2 rails x adc_bits)."""
        return self.config.sample_rate * 2 * self.config.adc_bits
