"""Spectrum occupancy monitoring.

A long-running gateway learns which technologies occupy its band and
when — input for the hopping scheduler's priors, for capacity planning,
and for the paper's "multi-technology wireless sensing" direction (a
device's transmission pattern is itself a sensor reading).

:class:`OccupancyMonitor` consumes detection events plus decode results
over time and maintains per-technology duty-cycle and inter-arrival
statistics.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..phy.base import Modem
from ..types import DecodeResult

__all__ = ["TechnologyStats", "OccupancyMonitor"]


@dataclass
class TechnologyStats:
    """Running statistics for one technology.

    Attributes:
        frames: Frames observed.
        airtime_s: Total airtime attributed to the technology.
        arrivals_s: Timestamps of observed frames (for rate estimates).
    """

    frames: int = 0
    airtime_s: float = 0.0
    arrivals_s: list[float] = field(default_factory=list)

    def mean_interarrival_s(self) -> float:
        """Mean gap between frames (inf with fewer than two)."""
        if len(self.arrivals_s) < 2:
            return float("inf")
        return float(np.mean(np.diff(sorted(self.arrivals_s))))


class OccupancyMonitor:
    """Aggregates decode results into band-occupancy statistics.

    Args:
        airtime_lookup: ``technology -> seconds`` for a typical frame,
            used to attribute airtime (e.g. built from the registry's
            modems at a typical payload size).
    """

    def __init__(self, airtime_lookup: dict[str, float]):
        if not airtime_lookup:
            raise ConfigurationError("airtime_lookup must not be empty")
        self._airtimes = dict(airtime_lookup)
        self.stats: dict[str, TechnologyStats] = {}
        self._observed_s = 0.0

    @classmethod
    def from_modems(cls, modems: Iterable[Modem], typical_payload: int = 16) -> OccupancyMonitor:
        """Build the airtime lookup from live modems."""
        return cls(
            {
                m.name: m.frame_airtime(min(typical_payload, m.max_payload))
                for m in modems
            }
        )

    def observe(self, results: list[DecodeResult], at_time: float) -> None:
        """Fold one capture's decode results into the statistics."""
        for result in results:
            if not result.ok:
                continue
            stats = self.stats.setdefault(result.technology, TechnologyStats())
            stats.frames += 1
            stats.airtime_s += self._airtimes.get(result.technology, 0.0)
            stats.arrivals_s.append(at_time)

    def advance(self, seconds: float) -> None:
        """Account observed wall-clock time (for duty cycles)."""
        # Checked as "not >= 0" rather than "< 0": NaN compares False to
        # everything, so a NaN would sail through a `seconds < 0` guard
        # and poison every duty cycle from then on.
        if not (np.isfinite(seconds) and seconds >= 0):
            raise ConfigurationError("seconds must be finite and >= 0")
        self._observed_s += seconds

    def duty_cycle(self, technology: str) -> float:
        """Fraction of observed time the technology was on the air."""
        if self._observed_s <= 0:
            return 0.0
        stats = self.stats.get(technology)
        if stats is None:
            return 0.0
        return min(stats.airtime_s / self._observed_s, 1.0)

    def busiest(self) -> str | None:
        """Technology with the largest attributed airtime."""
        if not self.stats:
            return None
        return max(self.stats, key=lambda t: self.stats[t].airtime_s)

    def summary(self) -> list[tuple[str, int, float, float]]:
        """Rows of ``(technology, frames, duty_cycle, mean_gap_s)``."""
        return [
            (
                tech,
                s.frames,
                self.duty_cycle(tech),
                s.mean_interarrival_s(),
            )
            for tech, s in sorted(self.stats.items())
        ]
