"""Segment extraction: what actually gets shipped off the gateway.

Per the paper (Sec. 4): "*We then conservatively ship samples
corresponding to twice the maximum packet length across technologies
around the detected preamble*". The extractor turns detection events
into such segments and merges overlapping ones, so a collision is
shipped as a single contiguous segment containing every colliding
packet.
"""

from __future__ import annotations

import math

import numpy as np

from ..contracts import iq_contract
from ..errors import ConfigurationError
from ..phy.base import Modem
from ..telemetry import NULL, Telemetry
from ..types import DetectionEvent, Segment

__all__ = ["SegmentExtractor", "max_frame_samples"]


def max_frame_samples(modems: list[Modem], sample_rate_hz: float, payload_len: int) -> int:
    """Largest frame length across technologies, in capture samples."""
    if not modems:
        raise ConfigurationError("at least one modem is required")
    return max(
        math.ceil(m.frame_airtime(min(payload_len, m.max_payload)) * sample_rate_hz)
        for m in modems
    )


class SegmentExtractor:
    """Cuts ship-to-cloud segments around detection events.

    Args:
        modems: Registered technologies (to size the maximum packet).
        sample_rate_hz: Capture sample rate.
        typical_payload: Payload size used to bound the frame length.
        span_factor: Segment length as a multiple of the maximum frame
            (the paper ships 2x).
        pre_fraction: Portion of the segment placed *before* the event
            (detectors fire at the preamble, so most of the span goes
            after it).
        telemetry: Metrics sink (the shared no-op by default).
    """

    def __init__(
        self,
        modems: list[Modem],
        sample_rate_hz: float,
        typical_payload: int = 32,
        span_factor: float = 2.0,
        pre_fraction: float = 0.1,
        telemetry: Telemetry = NULL,
    ):
        if span_factor <= 0:
            raise ConfigurationError("span_factor must be positive")
        if not 0 <= pre_fraction < 1:
            raise ConfigurationError("pre_fraction must be in [0, 1)")
        self.sample_rate_hz = float(sample_rate_hz)
        self.max_frame = max_frame_samples(modems, sample_rate_hz, typical_payload)
        self.span = math.ceil(span_factor * self.max_frame)
        self.pre = math.ceil(self.span * pre_fraction)
        self.telemetry = telemetry

    @iq_contract("samples")
    def extract(
        self, samples: np.ndarray, events: list[DetectionEvent]
    ) -> list[Segment]:
        """Cut (merged) segments around ``events``.

        Returns:
            Segments sorted by start; each carries the events it covers.
        """
        if not events:
            return []
        with self.telemetry.span("extract"):
            windows: list[tuple[int, int]] = []
            for event in sorted(events, key=lambda e: e.index):
                lo = max(event.index - self.pre, 0)
                hi = min(event.index - self.pre + self.span, len(samples))
                if windows and lo <= windows[-1][1]:
                    windows[-1] = (windows[-1][0], max(windows[-1][1], hi))
                else:
                    windows.append((lo, hi))
            segments = []
            for lo, hi in windows:
                covered = [e for e in events if lo <= e.index < hi]
                segments.append(
                    Segment(
                        start=lo,
                        samples=samples[lo:hi].copy(),
                        sample_rate=self.sample_rate_hz,
                        detections=covered,
                    )
                )
        self.telemetry.count("extract.segments", len(segments))
        self.telemetry.count(
            "extract.samples_out", sum(s.length for s in segments)
        )
        return segments

    def shipped_fraction(self, segments: list[Segment], n_samples: int) -> float:
        """Fraction of the capture that was shipped (backhaul proxy)."""
        if n_samples <= 0:
            raise ConfigurationError("n_samples must be positive")
        return sum(s.length for s in segments) / n_samples
