"""Packet detectors: the energy baseline and the optimal preamble bank.

Three detectors are compared in Figure 3(b) of the paper:

* **Energy detection** (:class:`EnergyDetector`) — the scheme used by
  prior multi-technology work: a moving-average power threshold over the
  estimated noise floor. Cheap, but blind to packets below the floor.
* **Per-technology correlation** (:class:`PreambleBankDetector`) — the
  optimal scheme: correlate with every technology's own preamble and
  take the per-technology peaks. Detection cost grows linearly with the
  number of technologies.
* **Universal preamble** (:mod:`repro.gateway.universal`) — GalioT's
  single-template detector, implemented in its own module.

All detectors share a constant-false-alarm-rate (CFAR) thresholding
scheme: the decision threshold is a robust location/scale estimate of
the *score* distribution (median + k·MAD), so the same ``k`` works at
any absolute noise level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..contracts import iq_contract
from ..dsp.correlation import find_peaks_above
from ..dsp.fastcorr import TemplateBank, blocked_bank, correlate_many
from ..dsp.filters import moving_average
from ..dsp.resample import to_rate
from ..errors import ConfigurationError
from ..phy.base import Modem
from ..telemetry import NULL, Telemetry
from ..types import DetectionEvent

__all__ = [
    "cfar_threshold",
    "matched_filter_track",
    "EnergyDetector",
    "PreambleBankDetector",
    "match_events",
    "packet_detected",
    "detection_ratio",
]


def cfar_threshold(scores: np.ndarray, k: float) -> float:
    """Robust threshold ~ (noise mean + k * noise std) of the score track.

    Location and scale come from the 10th/25th percentiles, so the
    estimate survives even when packets occupy up to ~75% of the
    capture — which happens once an ultra-narrow-band technology
    (SigFox frames last seconds) is in the band. For a clean Gaussian
    track the formula reduces to ``mean + k * std``.
    """
    p10 = float(np.percentile(scores, 10))
    p25 = float(np.percentile(scores, 25))
    scale = max(p25 - p10, 1e-30)
    # Calibrated on the Rayleigh envelope of a matched filter against
    # noise (p10 = 0.459 s, p25 = 0.759 s, median = 1.177 s,
    # MAD = 0.448 s): this reproduces the classic median + 1.4826 k MAD
    # threshold while only looking at the lowest quartile.
    return p10 + (2.39 + 2.21 * k) * scale


def matched_filter_track(
    x: np.ndarray,
    template: np.ndarray,
    block: int | None = None,
    *,
    bank: TemplateBank | None = None,
    telemetry: Telemetry = NULL,
) -> np.ndarray:
    """Matched-filter magnitude track, normalized by the template norm.

    Unlike :func:`repro.dsp.correlation.normalized_correlation`, the
    score is *not* divided by the local window energy. For sub-noise
    detection this is the optimal statistic, and it does not penalize
    templates with zero-padded tails (the universal preamble pads every
    representative to the longest one). The CFAR threshold supplies the
    noise calibration that local normalization would otherwise provide.

    Correlation runs on the shared-FFT engine
    (:mod:`repro.dsp.fastcorr`): in blocked mode every sub-template
    reuses one forward FFT per overlap-save segment instead of paying a
    full ``fftconvolve`` each.

    Args:
        x: Received samples.
        template: Reference waveform.
        block: When set, correlate coherently per ``block`` samples and
            combine magnitudes non-coherently (CFO tolerance).
        bank: Prebuilt ``blocked_bank(template, block)`` so a detector
            scoring many chunks caches the template spectra across
            calls; built transiently when omitted.
        telemetry: Metrics sink threaded into the correlation engine.
    """
    norm = float(np.sqrt(np.sum(np.abs(template) ** 2)))
    if norm <= 0:
        raise ConfigurationError("template has zero energy")
    out_len = len(x) - len(template) + 1
    if out_len <= 0:
        raise ConfigurationError("template longer than signal")
    if bank is None:
        # Ceiling division (partial tail kept): the final short block
        # must enter the accumulation, otherwise the remainder tail's
        # energy is correlated by nobody while ``norm`` still charges
        # for it, biasing every score low when len(template) % block != 0.
        bank = blocked_bank(template, block, partial_tail=True)
    tracks = correlate_many(x, bank, telemetry=telemetry)
    if block is None:
        return np.abs(tracks[0]) / norm
    acc = np.zeros(out_len)
    for offset in bank.keys():
        corr = np.abs(tracks[offset])
        acc += corr[offset : offset + out_len] ** 2
    return np.sqrt(acc) / norm


@dataclass
class EnergyDetector:
    """Moving-average energy detector (the baseline of [14] in the paper).

    Attributes:
        window: Averaging window in samples.
        k: CFAR factor applied to the smoothed power track.
        min_distance: Minimum spacing between reported events.
        threshold: Fixed decision threshold. ``None`` (the default)
            re-estimates the CFAR threshold from each capture; a fixed
            value (set directly or via :meth:`calibrate`) keeps the
            operating point identical across captures — what a
            continuously-running gateway wants, and what makes chunked
            streaming bit-identical to a monolithic pass.
        telemetry: Metrics sink (the shared no-op by default).
    """

    window: int = 256
    k: float = 6.0
    min_distance: int = 512
    threshold: float | None = None

    name: str = "energy"
    telemetry: Telemetry = field(default=NULL, repr=False, compare=False)

    @iq_contract("samples")
    def calibrate(self, samples: np.ndarray) -> float:
        """Freeze the threshold from a calibration capture."""
        self.threshold = cfar_threshold(self.scores(samples), self.k)
        return self.threshold

    @iq_contract("samples")
    def scores(self, samples: np.ndarray) -> np.ndarray:
        """Smoothed power track."""
        return moving_average(np.abs(samples) ** 2, self.window)

    @iq_contract("samples")
    def detect(self, samples: np.ndarray) -> list[DetectionEvent]:
        """Events at the rising edge of every above-threshold region."""
        self.telemetry.count("detect.samples_in", len(samples))
        if len(samples) < self.window:
            return []
        with self.telemetry.span("detect"):
            events = self._detect(samples)
        self.telemetry.count("detect.events", len(events))
        return events

    def _detect(self, samples: np.ndarray) -> list[DetectionEvent]:
        track = self.scores(samples)
        threshold = (
            self.threshold
            if self.threshold is not None
            else cfar_threshold(track, self.k)
        )
        above = track > threshold
        # Rising edges: index i where above[i] and not above[i-1].
        edges = np.flatnonzero(above & ~np.roll(above, 1))
        if above[0]:
            edges = np.unique(np.concatenate(([0], edges)))
        events = []
        last = -self.min_distance
        for idx in edges:
            if idx - last < self.min_distance:
                continue
            events.append(
                DetectionEvent(
                    index=int(idx),
                    score=float(track[idx] / max(threshold, 1e-30)),
                    detector=self.name,
                )
            )
            last = idx
        return events


class PreambleBankDetector:
    """Optimal per-technology preamble correlation.

    Args:
        modems: The technologies to detect.
        sample_rate_hz: Capture sample rate (modem preambles are resampled to it).
        k: CFAR factor on each technology's score track.
        min_distance: Minimum spacing between events of one technology.
        block: Coherent block length for CFO-tolerant correlation
            (``None`` = fully coherent).
        threshold: Fixed decision threshold(s): a float applied to every
            technology's track, or a per-technology dict (the shape
            :meth:`calibrate` produces). ``None`` re-estimates CFAR per
            capture.
        telemetry: Metrics sink (the shared no-op by default).
    """

    name = "preamble-bank"

    def __init__(
        self,
        modems: list[Modem],
        sample_rate_hz: float,
        k: float = 7.0,
        min_distance: int = 1024,
        block: int | None = None,
        max_template_s: float = 0.05,
        threshold: float | dict[str, float] | None = None,
        telemetry: Telemetry = NULL,
    ):
        if not modems:
            raise ConfigurationError("at least one modem is required")
        self.sample_rate_hz = float(sample_rate_hz)
        self.k = float(k)
        self.min_distance = int(min_distance)
        self.block = block
        self.threshold = threshold
        self.telemetry = telemetry
        cap = max(int(max_template_s * sample_rate_hz), 1)
        self.templates = {
            m.name: to_rate(m.preamble_waveform(), m.sample_rate, self.sample_rate_hz)[:cap]
            for m in modems
        }
        self._bank: TemplateBank | None = None
        self._block_plan: dict[str, list[tuple[tuple[str, int], int]]] = {}

    def _ensure_bank(self) -> TemplateBank:
        """Bank of every technology's (sub-)templates, built once.

        Entry keys are ``(technology, block_offset)``; ``_block_plan``
        maps each technology to its entries in accumulation order, so
        one :func:`~repro.dsp.fastcorr.correlate_many` call scores the
        whole bank off a single forward FFT per overlap-save segment.
        """
        if self._bank is None:
            entries: dict[tuple[str, int], np.ndarray] = {}
            for name, template in self.templates.items():
                if self.block is None:
                    plan = [((name, 0), 0)]
                    entries[(name, 0)] = template
                else:
                    n_blocks = -(-len(template) // self.block)
                    plan = []
                    for b in range(n_blocks):
                        offset = b * self.block
                        entries[(name, offset)] = template[
                            offset : offset + self.block
                        ]
                        plan.append(((name, offset), offset))
                self._block_plan[name] = plan
            self._bank = TemplateBank(entries)
        return self._bank

    def _score_tracks(self, samples: np.ndarray) -> dict[str, np.ndarray]:
        """Matched-filter tracks for every template that fits ``samples``.

        Combination matches :func:`matched_filter_track` exactly
        (coherent, or non-coherent across blocks with the partial tail
        kept); the correlations themselves share forward FFTs across
        all technologies and blocks.
        """
        bank = self._ensure_bank()
        feasible = [
            name
            for name, template in self.templates.items()
            if len(template) <= len(samples)
        ]
        keys = [
            key for name in feasible for key, _ in self._block_plan[name]
        ]
        tracks = correlate_many(
            samples, bank, keys=keys, telemetry=self.telemetry
        )
        out: dict[str, np.ndarray] = {}
        for name in feasible:
            template = self.templates[name]
            norm = float(np.sqrt(np.sum(np.abs(template) ** 2)))
            if norm <= 0:
                raise ConfigurationError("template has zero energy")
            out_len = len(samples) - len(template) + 1
            if self.block is None:
                out[name] = np.abs(tracks[(name, 0)]) / norm
            else:
                acc = np.zeros(out_len)
                for key, offset in self._block_plan[name]:
                    corr = np.abs(tracks[key])
                    acc += corr[offset : offset + out_len] ** 2
                out[name] = np.sqrt(acc) / norm
        return out

    @iq_contract("samples")
    def calibrate(self, samples: np.ndarray) -> dict[str, float]:
        """Freeze per-technology thresholds from a calibration capture."""
        self.threshold = {
            name: cfar_threshold(scores, self.k)
            for name, scores in self._score_tracks(samples).items()
        }
        return self.threshold

    def _threshold_for(self, name: str, scores: np.ndarray) -> float:
        if self.threshold is None:
            return cfar_threshold(scores, self.k)
        if isinstance(self.threshold, dict):
            fixed = self.threshold.get(name)
            if fixed is None:
                return cfar_threshold(scores, self.k)
            return float(fixed)
        return float(self.threshold)

    @property
    def n_correlations(self) -> int:
        """Template correlations per capture — grows with the bank size."""
        return len(self.templates)

    def _score(self, samples: np.ndarray, template: np.ndarray) -> np.ndarray:
        return matched_filter_track(
            samples, template, self.block, telemetry=self.telemetry
        )

    @iq_contract("samples")
    def detect(self, samples: np.ndarray) -> list[DetectionEvent]:
        """Per-technology correlation peaks above each CFAR threshold."""
        self.telemetry.count("detect.samples_in", len(samples))
        events: list[DetectionEvent] = []
        with self.telemetry.span("detect"):
            for name, scores in self._score_tracks(samples).items():
                threshold = self._threshold_for(name, scores)
                for idx in find_peaks_above(scores, threshold, self.min_distance):
                    events.append(
                        DetectionEvent(
                            index=idx,
                            score=float(scores[idx]),
                            detector=self.name,
                            technology=name,
                        )
                    )
        self.telemetry.count("detect.events", len(events))
        return sorted(events, key=lambda e: e.index)

    @iq_contract("samples")
    def stream_candidates(
        self, samples: np.ndarray
    ) -> list[tuple[str | None, int, np.ndarray, np.ndarray]]:
        """Raw per-technology threshold crossings for chunked streaming.

        No min-distance suppression is applied; the streaming layer
        replays :func:`~repro.dsp.correlation.find_peaks_above`'s greedy
        suppression incrementally across chunk joins (independently per
        technology, as :meth:`detect` does). Freeze :attr:`threshold`
        (e.g. via :meth:`calibrate`) for results identical to a
        monolithic pass.

        Returns:
            ``[(technology, template_len, indices, scores)]``, one entry
            per template short enough to score this buffer.
        """
        self.telemetry.count("detect.samples_in", len(samples))
        out: list[tuple[str | None, int, np.ndarray, np.ndarray]] = []
        with self.telemetry.span("detect"):
            for name, scores in self._score_tracks(samples).items():
                threshold = self._threshold_for(name, scores)
                idx = np.flatnonzero(scores >= threshold)
                out.append((name, len(self.templates[name]), idx, scores[idx]))
        return out


def match_events(
    events: list[DetectionEvent],
    packets: list,
    gate: int,
) -> tuple[set[int], list[DetectionEvent]]:
    """Assign detector events to ground-truth packets.

    Each event is credited to the packet whose *start* is nearest, as
    long as the event lies inside that packet's gate
    ``[start - gate, end)``. Periodic preambles (0x55 runs, repeated
    upchirps) produce correlation sidelobes at symbol-multiple offsets,
    so the gate must span the detection template; nearest-start
    assignment keeps a collision's two packets from crediting each
    other.

    Args:
        events: Detector output.
        packets: Ground-truth :class:`~repro.types.PacketTruth` records.
        gate: Pre-start slack in samples (usually the template length).

    Returns:
        ``(detected_packet_ids, false_alarms)``.
    """
    detected: set[int] = set()
    false_alarms: list[DetectionEvent] = []
    if not packets or not events:
        return detected, list(events)
    # Sorted-by-start layout: for each event the nearest qualifying
    # start is found with one binary search plus a short backward scan,
    # instead of a full pass over every packet per event. ``order``
    # breaks equal starts by original list position so ties resolve
    # exactly as the old first-strictly-smaller-distance loop did.
    starts = np.fromiter((p.start for p in packets), dtype=np.int64)
    ends = np.fromiter((p.end for p in packets), dtype=np.int64)
    order = np.lexsort((np.arange(len(packets)), starts))
    s_sorted = starts[order]
    e_sorted = ends[order]
    # Running max of ends prunes the backward scan: once every packet at
    # or left of a slot has ended by the event index, none can qualify.
    cummax_end = np.maximum.accumulate(e_sorted)
    indices = np.fromiter((e.index for e in events), dtype=np.int64)
    j_right = np.searchsorted(s_sorted, indices, side="right")
    n_packets = len(packets)
    for event, idx, j in zip(events, indices, j_right, strict=True):
        best_pos: int | None = None
        best_dist: int | None = None
        # Right side: starts strictly above the event index, ascending
        # distance — the first equal-start run containing a qualifying
        # packet (event before its end) wins; within the run the
        # earliest original position among the qualifiers is kept.
        r = j
        while r < n_packets and s_sorted[r] - gate <= idx:
            if idx < e_sorted[r]:
                run_start = int(s_sorted[r])
                best_dist = run_start - int(idx)
                best_pos = int(order[r])
                r += 1
                while r < n_packets and s_sorted[r] == run_start:
                    if idx < e_sorted[r] and int(order[r]) < best_pos:
                        best_pos = int(order[r])
                    r += 1
                break
            r += 1
        # Left side: starts at or below the event index, distance grows
        # as the scan moves left, so the first slot whose packet is
        # still in flight (end > idx) is the nearest qualifying start.
        k = j - 1
        while k >= 0 and cummax_end[k] > idx:
            if e_sorted[k] > idx and s_sorted[k] - gate <= idx:
                dist = int(idx - s_sorted[k])
                if best_dist is None or dist <= best_dist:
                    # Equal starts share the distance; the earliest
                    # original position among the qualifiers wins.
                    lo = int(
                        np.searchsorted(s_sorted, s_sorted[k], side="left")
                    )
                    pos = int(order[k])
                    for k2 in range(lo, k):
                        if e_sorted[k2] > idx and int(order[k2]) < pos:
                            pos = int(order[k2])
                    if (
                        best_dist is None
                        or dist < best_dist
                        or pos < best_pos
                    ):
                        best_pos, best_dist = pos, dist
                break
            k -= 1
        if best_pos is None:
            false_alarms.append(event)
        else:
            detected.add(packets[best_pos].packet_id)
    return detected, false_alarms


def packet_detected(
    events: list[DetectionEvent], start: int, end: int, tolerance: int = 0
) -> bool:
    """Whether any event falls within a single packet's extent."""
    lo = start - tolerance
    return any(lo <= e.index < end for e in events)


def detection_ratio(
    events: list[DetectionEvent],
    packets: list,
    gate: int = 1024,
) -> float:
    """Fraction of ground-truth packets credited with a detection."""
    if not packets:
        return float("nan")
    detected, _ = match_events(events, packets, gate)
    return len(detected) / len(packets)
