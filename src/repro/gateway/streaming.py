"""Chunked streaming front for the GalioT gateway.

The paper's gateway runs *continuously* on a Raspberry-Pi-class device,
but :meth:`~repro.gateway.gateway.GalioTGateway.process` wants the whole
capture in memory at once. :class:`StreamingGateway` drives the same
Figure-2 pipeline over an unbounded iterator of capture chunks and, for
the correlation detectors with a frozen threshold, produces *exactly*
the events, segments and shipped bits of one monolithic pass:

* **Overlap carry.** The matched-filter score at index ``n`` depends on
  samples ``x[n : n + L]`` (``L`` = template length), so each chunk is
  scored together with the last ``L - 1`` samples of history. With
  exactly that much carry the per-chunk score tracks *partition* the
  monolithic track — every score index is computed exactly once, by
  exactly one chunk (per-technology ``scored_to`` bookkeeping drops the
  short strip the preamble bank's shorter templates re-score).
* **Incremental greedy suppression.**
  :func:`~repro.dsp.correlation.find_peaks_above` accepts candidates in
  descending score order and is *not* decomposable per chunk: a locally
  kept peak may suppress a neighbour and then itself lose to a peak in
  the next chunk, resurrecting the neighbour. Detectors therefore hand
  the streaming layer their **raw threshold crossings**
  (:meth:`~repro.gateway.universal.UniversalPreambleDetector.stream_candidates`),
  and the global greedy is replayed over a pending window every chunk.
  A candidate is emitted (or discarded) only once its accept/reject
  status is provably stable against *any* future candidate: instability
  starts within ``min_distance`` of the scored frontier and propagates
  backwards only through strictly priority-decreasing neighbour chains,
  so a fixpoint marking finalizes everything the future can no longer
  touch.
* **In-flight extractor state.** Ship windows (``2x`` the largest frame
  around each event) routinely span chunk boundaries and can still
  *merge* with the next event's window. Open windows are carried across
  chunks and a segment is emitted only when no future event can merge
  into it and all of its samples have arrived, so a packet bisected by
  a chunk boundary is shipped once, in one piece.

Each processed chunk yields an incremental
:class:`~repro.gateway.gateway.GatewayReport`;
:meth:`GatewayReport.absorb <repro.gateway.gateway.GatewayReport.absorb>`
merges them into totals identical to one monolithic ``process()`` call
over the concatenated stream. Two caveats: per-capture CFAR thresholds
are data-dependent (freeze the operating point with
``detector.calibrate(...)`` for exactness), and the energy detector's
rising-edge state machine is inherently whole-track, so it streams via
event-level de-duplication instead (approximate near chunk joins).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator

import numpy as np

from ..contracts import iq_contract
from ..errors import ConfigurationError
from ..telemetry import Telemetry
from ..types import DetectionEvent, DetectorLike, Segment
from .detection import EnergyDetector, PreambleBankDetector
from .gateway import GalioTGateway, GatewayReport
from .resilience import ResilientBackhaul
from .universal import UniversalPreambleDetector

__all__ = ["StreamingGateway", "detector_context", "iter_chunks"]


def detector_context(detector: DetectorLike) -> int:
    """Samples of history a detector needs to re-score a chunk boundary.

    For correlation detectors this is ``len(template) - 1``: carrying
    exactly that much makes consecutive chunks' valid-mode score tracks
    partition the monolithic track with no gap and no overlap (for the
    longest template; shorter bank templates re-score a short strip that
    per-technology ``scored_to`` bookkeeping drops).
    """
    if isinstance(detector, UniversalPreambleDetector):
        return detector.universal.length - 1
    if isinstance(detector, PreambleBankDetector):
        return max(len(t) for t in detector.templates.values()) - 1
    if isinstance(detector, EnergyDetector):
        return detector.window
    return 0


@iq_contract("capture")
def iter_chunks(capture: np.ndarray, chunk_size: int) -> Iterator[np.ndarray]:
    """Split an in-memory capture into consecutive chunks (for tests
    and demos; a real deployment feeds SDR buffers directly)."""
    if chunk_size < 1:
        raise ConfigurationError("chunk_size must be >= 1")
    for lo in range(0, len(capture), chunk_size):
        yield capture[lo : lo + chunk_size]


@dataclass
class _Window:
    """One in-flight extraction window (absolute sample indices)."""

    lo: int
    hi: int
    events: list[DetectionEvent] = field(default_factory=list)


@dataclass
class _TechTrack:
    """Pending suppression state of one technology's score track."""

    template_len: int
    indices: list[int] = field(default_factory=list)  # ascending
    scores: list[float] = field(default_factory=list)
    scored_to: int = 0  # score indices below this are already ingested
    accepted: list[int] = field(default_factory=list)  # finalized, sorted


class StreamingGateway:
    """Run a :class:`GalioTGateway` over an iterator of capture chunks.

    One instance consumes one stream: detector carry, pending candidates
    and open extraction windows live on the instance between chunks.
    Call :meth:`reset` (or build a fresh instance) for a new stream.

    Args:
        gateway: The configured gateway whose pipeline to drive. Its
            detector, extractor, edge, codec and backhaul are used
            as-is, so streaming and monolithic accounting share every
            code path below the chunking layer.
        telemetry: Metrics sink for stream-level metrics; defaults to
            the gateway's own sink.
        on_shipped: Cloud dispatch hook, called with each segment that
            survives edge filtering and the backhaul (in stream order,
            from the chunk that completed it). Wire it to a cloud
            service — e.g. ``ParallelCloudService.submit`` — to fan
            decoding out while the stream is still arriving.

            Exception policy: a raising hook never corrupts gateway
            window state — the segment is already extracted, shipped
            and accounted before the hook runs. The error is counted as
            ``gateway.hook_errors`` and re-raised, unless
            ``fault_tolerant`` is set, in which case the stream carries
            on without it.
        fault_tolerant: Swallow (but count) ``on_shipped`` hook errors
            instead of re-raising them.
    """

    def __init__(
        self,
        gateway: GalioTGateway,
        telemetry: Telemetry | None = None,
        on_shipped: Callable[[Segment], None] | None = None,
        fault_tolerant: bool = False,
    ):
        self.gateway = gateway
        self.telemetry = (
            telemetry if telemetry is not None else gateway.telemetry
        )
        self.on_shipped = on_shipped
        self.fault_tolerant = bool(fault_tolerant)
        self.context = detector_context(gateway.detector)
        self.min_distance = int(getattr(gateway.detector, "min_distance", 0))
        self.reset()

    def reset(self) -> None:
        """Forget all carried state; ready for a new stream."""
        front_end = self.gateway.front_end
        if front_end is not None and hasattr(front_end, "reset_stream"):
            front_end.reset_stream()
        if self.gateway.jamming is not None:
            self.gateway.jamming.reset()
        self._pos = 0  # absolute index of the next sample to arrive
        self._buffer = np.zeros(0, dtype=complex)
        self._buf_start = 0  # absolute index of _buffer[0]
        self._tracks: dict[str | None, _TechTrack] = {}
        self._pending: list[DetectionEvent] = []  # legacy (energy) path
        self._flushed_to = 0  # emitted events are below, future ones above
        self._windows: list[_Window] = []
        self._ended = False

    # -- public API -------------------------------------------------------

    def run(
        self,
        chunks: Iterable[np.ndarray],
        rng: np.random.Generator | None = None,
    ) -> Iterator[GatewayReport]:
        """Process a chunk stream, yielding one incremental report per
        chunk plus a final flush report after the stream ends."""
        for chunk in chunks:
            yield self.process_chunk(chunk, rng)
        yield self.finalize()

    def process_stream(
        self,
        chunks: Iterable[np.ndarray],
        rng: np.random.Generator | None = None,
    ) -> GatewayReport:
        """Consume the whole stream and return the merged totals."""
        return GatewayReport.merged(list(self.run(chunks, rng)))

    def process_chunk(
        self, chunk: np.ndarray, rng: np.random.Generator | None = None
    ) -> GatewayReport:
        """Ingest one chunk; returns the report of what it completed.

        Events appear in the report of the chunk that *finalized* them
        (proved their suppression outcome stable), segments in the
        report of the chunk that supplied their last needed sample —
        so a boundary-spanning packet is reported exactly once.
        """
        if self._ended:
            raise ConfigurationError(
                "stream already finalized; call reset() for a new stream"
            )
        report = GatewayReport()
        chunk = np.asarray(chunk)
        if len(chunk) == 0:
            return report
        with self.telemetry.span("stream.chunk"):
            samples, report.raw_bits = self.gateway.capture_front_end(
                chunk, rng
            )
            chunk_start = self._pos
            self._buffer = np.concatenate(
                [self._buffer, np.asarray(samples, dtype=complex)]
            )
            self._pos += len(samples)
            for event in self._detect(chunk_start):
                if not self.gateway.admit_event(event):
                    continue
                report.events.append(event)
                self._feed_extractor(event)
            self._close_ready(report, final=False)
            self._flush_backhaul(report, final=False)
            self._trim_buffer()
            if self.gateway.jamming is not None:
                # capture_front_end already fed the samples; report the
                # events this chunk closed.
                report.jamming_events = self.gateway.jamming.drain_events()
        self.telemetry.count("stream.chunks")
        self.telemetry.count("stream.samples_in", len(chunk))
        self.telemetry.gauge("stream.buffered_samples", len(self._buffer))
        return report

    def finalize(self) -> GatewayReport:
        """Flush carried state after the stream ends.

        Emits every still-pending event and open window (clamped to the
        true stream length, as a monolithic pass would clamp to the
        capture length). Idempotent: a second call returns an empty
        report.
        """
        if self._ended:
            return GatewayReport()
        self._ended = True
        report = GatewayReport()
        with self.telemetry.span("stream.finalize"):
            emitted = self._resolve(final=True)
            for event in self._pending:  # legacy (energy) path
                emitted.append(event)
            self._pending = []
            self._flushed_to = self._pos
            for event in emitted:
                if not self.gateway.admit_event(event):
                    continue
                report.events.append(event)
                self._feed_extractor(event)
            self._close_ready(report, final=True)
            self._flush_backhaul(report, final=True)
            if self.gateway.jamming is not None:
                self.gateway.jamming.flush()
                report.jamming_events = self.gateway.jamming.drain_events()
        return report

    # -- detection --------------------------------------------------------

    def _detect(self, chunk_start: int) -> list[DetectionEvent]:
        """Score [carry + chunk], merge candidates, emit finalized events."""
        det_lo = max(chunk_start - self.context, 0)
        det_buf = self._buffer[det_lo - self._buf_start :]
        detector = self.gateway.detector
        if not hasattr(detector, "stream_candidates"):
            return self._legacy_detect(detector, det_lo, det_buf)
        for tech, tlen, idx, sc in detector.stream_candidates(det_buf):
            track = self._tracks.setdefault(tech, _TechTrack(tlen))
            absolute = np.asarray(idx, dtype=np.int64) + det_lo
            fresh = absolute >= track.scored_to
            track.indices.extend(absolute[fresh].tolist())
            track.scores.extend(np.asarray(sc)[fresh].tolist())
            track.scored_to = max(track.scored_to, self._pos - tlen + 1)
        emitted = self._resolve(final=False)
        self.telemetry.count("detect.events", len(emitted))
        return emitted

    def _resolve(self, final: bool) -> list[DetectionEvent]:
        """Replay the global greedy suppression over pending candidates
        and emit every candidate whose outcome the future cannot change.

        The emission watermark is the lowest still-unstable candidate
        (capped at the scored frontier), so events always reach the
        extractor in ascending index order across chunks.
        """
        md = max(self.min_distance, 1)
        known = max(self._pos - self.context, 0)
        frontier = known - md
        states: dict[str | None, tuple] = {}
        watermark: int | None = None
        for tech, track in self._tracks.items():
            if not track.indices:
                continue
            idx = np.asarray(track.indices, dtype=np.int64)
            sc = np.asarray(track.scores, dtype=float)
            fixed = np.asarray(track.accepted, dtype=np.int64)
            status = self._greedy(idx, sc, track.accepted, md)
            if final:
                marked = np.zeros(len(idx), dtype=bool)
            else:
                marked = idx > frontier
                self._stabilize(idx, sc, status, marked, fixed, md)
            states[tech] = (idx, sc, status, marked)
            if marked.any():
                lowest = int(idx[marked].min())
                watermark = (
                    lowest if watermark is None else min(watermark, lowest)
                )
        if final:
            cutoff = None  # flush everything
        else:
            cutoff = known if watermark is None else min(watermark, known)
        emitted: list[DetectionEvent] = []
        name = self.gateway.detector.name
        for tech, (idx, sc, status, marked) in states.items():
            track = self._tracks[tech]
            flush = ~marked if cutoff is None else (~marked) & (idx < cutoff)
            if not flush.any():
                continue
            for i, s in zip(
                idx[flush & status].tolist(),
                sc[flush & status].tolist(),
                strict=True,
            ):
                emitted.append(
                    DetectionEvent(
                        index=int(i),
                        score=float(s),
                        detector=name,
                        technology=tech,
                    )
                )
                insort(track.accepted, int(i))
            keep = ~flush
            track.indices = idx[keep].tolist()
            track.scores = sc[keep].tolist()
            floor = (
                track.indices[0] if track.indices else track.scored_to
            ) - md
            track.accepted = [a for a in track.accepted if a >= floor]
        if cutoff is not None:
            self._flushed_to = max(self._flushed_to, cutoff)
        emitted.sort(key=lambda e: e.index)
        return emitted

    @staticmethod
    def _greedy(
        idx: np.ndarray, sc: np.ndarray, fixed: list[int], md: int
    ) -> np.ndarray:
        """Exactly :func:`~repro.dsp.correlation.find_peaks_above`:
        candidates in descending score order (ties: later index first,
        matching the reversed stable argsort), each accepted iff no
        accepted peak lies within ``md``. Already-emitted peaks
        (``fixed``) are unconditional suppressors — the stability proof
        guarantees no pending candidate outranks them in range.
        """
        order = np.argsort(sc, kind="stable")[::-1]
        accepted = list(fixed)
        status = np.zeros(len(idx), dtype=bool)
        for i in order:
            v = int(idx[i])
            j = bisect_left(accepted, v)
            near = (j > 0 and v - accepted[j - 1] < md) or (
                j < len(accepted) and accepted[j] - v < md
            )
            if near:
                continue
            insort(accepted, v)
            status[i] = True
        return status

    @staticmethod
    def _stabilize(
        idx: np.ndarray,
        sc: np.ndarray,
        status: np.ndarray,
        marked: np.ndarray,
        fixed: np.ndarray,
        md: int,
    ) -> None:
        """Grow ``marked`` (in place) to every candidate whose greedy
        outcome a future candidate could still flip.

        A future candidate can directly contest only the strip within
        ``md`` of the scored frontier (the initial marking); from there
        instability propagates through neighbour chains of strictly
        decreasing priority. The greatest stable set is the fixpoint of:

        * a rejected candidate is stable iff some suppressor within
          ``md`` is itself stable (emitted, or accepted-and-unmarked);
        * an accepted candidate is stable iff no *marked* candidate of
          higher priority lies within ``md``.
        """
        while True:
            stable_acc = np.concatenate([fixed, idx[status & ~marked]])
            stable_acc.sort()
            lo = np.searchsorted(stable_acc, idx - md, side="right")
            hi = np.searchsorted(stable_acc, idx + md, side="left")
            has_stable_suppressor = hi > lo
            grew = (~status) & (~marked) & (~has_stable_suppressor)
            m_idx = idx[marked]
            m_sc = sc[marked]
            for i in np.flatnonzero(status & ~marked):
                a = np.searchsorted(m_idx, idx[i] - md, side="right")
                b = np.searchsorted(m_idx, idx[i] + md, side="left")
                if a >= b:
                    continue
                peak = m_sc[a:b].max()
                outranked = peak > sc[i] or (
                    peak == sc[i]
                    and bool(
                        np.any(
                            (m_sc[a:b] == sc[i]) & (m_idx[a:b] > idx[i])
                        )
                    )
                )
                if outranked:
                    grew[i] = True
            if not grew.any():
                return
            marked |= grew

    def _legacy_detect(
        self, detector, det_lo: int, det_buf: np.ndarray
    ) -> list[DetectionEvent]:
        """Event-level de-duplication for detectors without raw candidate
        access (the energy detector's rising-edge state machine is
        whole-track anyway, so streaming it is inherently approximate)."""
        for event in detector.detect(det_buf):
            absolute = DetectionEvent(
                index=event.index + det_lo,
                score=event.score,
                detector=event.detector,
                technology=event.technology,
            )
            self._suppress_or_keep(absolute)
        watermark = self._pos - self.context - self.min_distance
        emitted: list[DetectionEvent] = []
        if watermark > self._flushed_to:
            emitted = [e for e in self._pending if e.index < watermark]
            self._pending = [
                e for e in self._pending if e.index >= watermark
            ]
            self._flushed_to = watermark
        return emitted

    def _suppress_or_keep(self, cand: DetectionEvent) -> None:
        """Score-greedy min-distance suppression across chunk joins."""
        if cand.index < self._flushed_to:
            # Already-finalized region: this is a boundary re-score of
            # an event an earlier chunk reported.
            return
        rivals = [
            p
            for p in self._pending
            if p.technology == cand.technology
            and abs(p.index - cand.index) < max(self.min_distance, 1)
        ]
        if rivals:
            if all(cand.score > r.score for r in rivals):
                for r in rivals:
                    self._pending.remove(r)
            else:
                self.telemetry.count("stream.boundary_duplicates")
                return
        insort(self._pending, cand, key=lambda e: e.index)

    # -- extraction -------------------------------------------------------

    def _feed_extractor(self, event: DetectionEvent) -> None:
        """Incremental version of :meth:`SegmentExtractor.extract`'s
        window merge: same ``pre``/``span``, same last-window rule."""
        extractor = self.gateway.extractor
        lo = max(event.index - extractor.pre, 0)
        hi = event.index - extractor.pre + extractor.span
        if self._windows and lo <= self._windows[-1].hi:
            last = self._windows[-1]
            last.hi = max(last.hi, hi)
            last.events.append(event)
        else:
            self._windows.append(_Window(lo=lo, hi=hi, events=[event]))

    def _close_ready(self, report: GatewayReport, final: bool) -> None:
        """Emit every window that can no longer change."""
        extractor = self.gateway.extractor
        while self._windows:
            window = self._windows[0]
            if final:
                hi = min(window.hi, self._pos)
            else:
                if window.hi > self._pos:
                    break  # its samples have not all arrived yet
                mergeable = len(self._windows) == 1 and (
                    self._flushed_to - extractor.pre <= window.hi
                )
                if mergeable:
                    break  # a future event could still extend it
                hi = window.hi
            self._windows.pop(0)
            segment = Segment(
                start=window.lo,
                samples=self._buffer[
                    window.lo - self._buf_start : hi - self._buf_start
                ].copy(),
                sample_rate=self.gateway.sample_rate_hz,
                detections=list(window.events),
            )
            report.segments.append(segment)
            shipped_before = len(report.shipped)
            self.gateway.ship_segment(segment, report)
            # A resilient backhaul may deliver *older* spilled segments
            # alongside (or instead of) the one just closed — notify the
            # hook for every newly shipped segment, in delivery order.
            for shipped in report.shipped[shipped_before:]:
                self._notify_shipped(shipped)
            self.telemetry.count("stream.segments")

    def _notify_shipped(self, segment: Segment) -> None:
        """Invoke ``on_shipped`` under the documented exception policy.

        Gateway state (windows, buffers, accounting) is fully updated
        before the hook runs, so a raising hook can never corrupt it:
        the error is counted, then re-raised unless ``fault_tolerant``.
        """
        if self.on_shipped is None:
            return
        try:
            self.on_shipped(segment)
        except Exception:
            self.telemetry.count("gateway.hook_errors")
            if not self.fault_tolerant:
                raise

    def _flush_backhaul(self, report: GatewayReport, final: bool) -> None:
        """Retry the resilient backhaul's spill buffer at stream time.

        Per chunk, due retries go out even when the chunk closed no
        windows; at finalize, everything still spilled is retried once
        more (an outage outlasting the stream keeps its entries spilled,
        not lost).
        """
        backhaul = self.gateway.backhaul
        if not isinstance(backhaul, ResilientBackhaul):
            return
        now = self._pos / self.gateway.sample_rate_hz
        delivered = backhaul.drain(now) if final else backhaul.flush(now)
        if not delivered:
            return
        shipped_before = len(report.shipped)
        self.gateway.account_deliveries(delivered, (), report)
        for shipped in report.shipped[shipped_before:]:
            self._notify_shipped(shipped)

    # -- buffer management ------------------------------------------------

    def _trim_buffer(self) -> None:
        """Drop samples nothing can reference any more.

        Retention floor: the next chunk's detection carry, the earliest
        open window, and the earliest window any future event could open
        (``pre`` before the emission watermark).
        """
        extractor = self.gateway.extractor
        keep_from = min(
            self._pos - self.context,
            self._flushed_to - self.min_distance - extractor.pre,
        )
        if self._windows:
            keep_from = min(keep_from, self._windows[0].lo)
        keep_from = max(keep_from, self._buf_start)
        drop = keep_from - self._buf_start
        if drop > 0:
            self._buffer = self._buffer[drop:]
            self._buf_start = keep_from
