"""Frequency-hopping front ends (paper Sec. 6, "Multi-Technology
Programmable Gateway").

The paper's gateways capture a few MHz, but the unlicensed 868/900 MHz
space is far wider. One of the design-space options Sec. 6 sketches is
"frequency hopping with a few frontends that dynamically learns the
schedule". This module implements that option:

* :class:`ChannelPlan` — the sub-channels of a wide band;
* :class:`HoppingFrontend` — a tuner model that extracts one channel's
  complex baseband out of a wideband capture (mix, filter, decimate);
* :class:`HopScheduler` — an exponential-weights learner over channel
  activity: channels that yielded detections get visited more;
* :func:`run_hopping_campaign` — dwell-by-dwell simulation comparing a
  scheduler against round-robin scanning on the same wideband scene.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dsp.filters import fft_bandpass, frequency_shift
from ..errors import ConfigurationError
from ..types import DetectorLike

__all__ = [
    "ChannelPlan",
    "HoppingFrontend",
    "HopScheduler",
    "DwellResult",
    "run_hopping_campaign",
]


@dataclass(frozen=True)
class ChannelPlan:
    """Sub-channel layout of a wide capture.

    Attributes:
        wide_fs: Sample rate of the wideband capture.
        channel_bw: Bandwidth (= output sample rate) of one channel.
        centers_hz: Channel centre offsets relative to the capture
            centre (must fit inside ±wide_fs/2).
    """

    wide_fs: float
    channel_bw: float
    centers_hz: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.channel_bw <= 0 or self.wide_fs <= 0:
            raise ConfigurationError("rates must be positive")
        ratio = self.wide_fs / self.channel_bw
        if abs(ratio - round(ratio)) > 1e-9:
            raise ConfigurationError(
                "wide_fs must be an integer multiple of channel_bw"
            )
        for c in self.centers_hz:
            if abs(c) + self.channel_bw / 2 > self.wide_fs / 2 + 1e-9:
                raise ConfigurationError(f"channel at {c} Hz exceeds the band")

    @property
    def n_channels(self) -> int:
        """Number of sub-channels."""
        return len(self.centers_hz)

    @property
    def decimation(self) -> int:
        """Integer decimation from the wide rate to one channel."""
        return int(round(self.wide_fs / self.channel_bw))

    @classmethod
    def uniform(
        cls, wide_fs: float, channel_bw: float, n_channels: int
    ) -> ChannelPlan:
        """Evenly spaced, non-overlapping channels centred in the band."""
        if n_channels < 1:
            raise ConfigurationError("n_channels must be >= 1")
        span = n_channels * channel_bw
        if span > wide_fs:
            raise ConfigurationError("channels do not fit in the band")
        first = -span / 2 + channel_bw / 2
        centers = tuple(first + i * channel_bw for i in range(n_channels))
        return cls(wide_fs=wide_fs, channel_bw=channel_bw, centers_hz=centers)


class HoppingFrontend:
    """A single tuner that can dwell on one channel at a time."""

    def __init__(self, plan: ChannelPlan):
        self.plan = plan

    def tune(
        self, wide_samples: np.ndarray, channel: int, start: int, n_wide: int
    ) -> np.ndarray:
        """Extract ``n_wide`` wideband samples of one channel's baseband.

        Args:
            wide_samples: The wideband capture.
            channel: Channel index in the plan.
            start: First wideband sample of the dwell.
            n_wide: Dwell length in wideband samples.

        Returns:
            Channel baseband at ``plan.channel_bw`` complex samples/s.

        Raises:
            ConfigurationError: for an unknown channel index.
        """
        if not 0 <= channel < self.plan.n_channels:
            raise ConfigurationError(f"no channel {channel} in the plan")
        stop = min(start + n_wide, len(wide_samples))
        chunk = wide_samples[start:stop]
        if len(chunk) == 0:
            return np.zeros(0, dtype=complex)
        centre = self.plan.centers_hz[channel]
        mixed = frequency_shift(chunk, -centre, self.plan.wide_fs)
        filtered = fft_bandpass(
            mixed, self.plan.wide_fs,
            (-self.plan.channel_bw / 2, self.plan.channel_bw / 2),
        )
        return filtered[:: self.plan.decimation]


@dataclass
class HopScheduler:
    """Exponential-weights learner over channel activity.

    Channels accumulate weight when a dwell on them detects packets and
    decay otherwise; the next dwell picks a channel proportionally to
    weight, with an exploration floor so quiet channels are still
    revisited (the "dynamically learns the schedule" behaviour).

    Attributes:
        n_channels: Number of channels.
        learning_rate: Multiplicative update per detection.
        decay: Weight decay applied to the visited channel on an empty
            dwell.
        explore: Probability mass spread uniformly across all channels.
    """

    n_channels: int
    learning_rate: float = 1.6
    decay: float = 0.85
    explore: float = 0.2
    weights: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ConfigurationError("n_channels must be >= 1")
        if not 0 <= self.explore <= 1:
            raise ConfigurationError("explore must be in [0, 1]")
        if self.weights is None:
            self.weights = np.ones(self.n_channels)

    def probabilities(self) -> np.ndarray:
        """Current channel-selection distribution."""
        w = self.weights / self.weights.sum()
        uniform = np.full(self.n_channels, 1.0 / self.n_channels)
        return (1 - self.explore) * w + self.explore * uniform

    def pick(self, rng: np.random.Generator) -> int:
        """Draw the next dwell's channel."""
        return int(rng.choice(self.n_channels, p=self.probabilities()))

    def update(self, channel: int, detections: int) -> None:
        """Feed back the dwell outcome."""
        if detections > 0:
            self.weights[channel] *= self.learning_rate ** min(detections, 4)
        else:
            self.weights[channel] *= self.decay
        # Keep weights bounded for numerical hygiene.
        self.weights = np.clip(self.weights, 1e-6, 1e6)


@dataclass(frozen=True)
class DwellResult:
    """One dwell's outcome."""

    dwell_index: int
    channel: int
    detections: int


def run_hopping_campaign(
    wide_samples: np.ndarray,
    plan: ChannelPlan,
    detector: DetectorLike,
    dwell_wide_samples: int,
    rng: np.random.Generator,
    scheduler: HopScheduler | None = None,
) -> list[DwellResult]:
    """Sweep a wideband capture dwell by dwell with one tuner.

    Args:
        wide_samples: The wideband scene.
        plan: Channel layout.
        detector: Any object with ``detect(samples) -> list`` running at
            the channel rate (e.g. a
            :class:`~repro.gateway.universal.UniversalPreambleDetector`).
        dwell_wide_samples: Dwell length in wideband samples.
        rng: Random source for the scheduler.
        scheduler: ``None`` scans round-robin (the baseline); otherwise
            the scheduler picks each dwell's channel and learns from it.

    Returns:
        One :class:`DwellResult` per dwell.
    """
    if dwell_wide_samples < plan.decimation:
        raise ConfigurationError("dwell shorter than one channel sample")
    frontend = HoppingFrontend(plan)
    results: list[DwellResult] = []
    n_dwells = len(wide_samples) // dwell_wide_samples
    for i in range(n_dwells):
        if scheduler is None:
            channel = i % plan.n_channels
        else:
            channel = scheduler.pick(rng)
        baseband = frontend.tune(
            wide_samples, channel, i * dwell_wide_samples, dwell_wide_samples
        )
        events = detector.detect(baseband)
        results.append(
            DwellResult(dwell_index=i, channel=channel, detections=len(events))
        )
        if scheduler is not None:
            scheduler.update(channel, len(events))
    return results
