"""Backhaul link model (the gateway's home cable/Ethernet uplink).

A simple FIFO serialization model: shipments queue behind each other at
the configured rate and arrive after a fixed propagation latency. The
model answers the paper's Sec. 6 question quantitatively: raw-stream
shipping needs tens of Mbit/s forever, detect-and-ship needs bursts
proportional to channel occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CapacityError, ConfigurationError
from ..telemetry import NULL, Telemetry

__all__ = ["Shipment", "BackhaulLink"]


@dataclass(frozen=True)
class Shipment:
    """One completed transfer over the link."""

    submitted_at: float
    n_bits: int
    started_at: float
    arrived_at: float

    @property
    def delay(self) -> float:
        """Total submit-to-arrival delay in seconds."""
        return self.arrived_at - self.submitted_at


@dataclass
class BackhaulLink:
    """Rate-limited FIFO uplink.

    Attributes:
        rate_bps: Serialization rate in bit/s.
        latency_s: One-way propagation latency.
        max_queue_s: Refuse shipments once the queue backlog exceeds
            this many seconds of serialization (models a bounded buffer
            on the Raspberry Pi).
        telemetry: Metrics sink (the shared no-op by default).
    """

    rate_bps: float = 10e6
    latency_s: float = 20e-3
    max_queue_s: float = 30.0
    shipments: list[Shipment] = field(default_factory=list)
    telemetry: Telemetry = field(default=NULL, repr=False, compare=False)
    _busy_until: float = 0.0
    _last_submit: float = field(default=float("-inf"), repr=False)

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ConfigurationError("rate_bps must be positive")
        if self.latency_s < 0:
            raise ConfigurationError("latency_s must be >= 0")
        if self.max_queue_s <= 0:
            raise ConfigurationError("max_queue_s must be positive")

    def ship(self, n_bits: int, at_time: float) -> Shipment:
        """Submit ``n_bits`` at ``at_time``; returns the arrival record.

        Submissions must be non-decreasing in ``at_time`` (the link is a
        FIFO serialization model: a submission dated before one already
        accepted would have to rewrite history, and before this check it
        silently mis-accounted the backlog instead).

        Raises:
            CapacityError: when the queue backlog exceeds the bound.
            ConfigurationError: on negative ``n_bits`` or an ``at_time``
                earlier than an already-accepted submission.
        """
        if n_bits < 0:
            raise ConfigurationError("n_bits must be >= 0")
        if at_time < self._last_submit:
            raise ConfigurationError(
                f"non-monotonic submission: at_time {at_time:.6f}s is "
                f"before the last accepted submission "
                f"({self._last_submit:.6f}s)"
            )
        start = max(at_time, self._busy_until)
        backlog = start - at_time
        self.telemetry.gauge("backhaul.backlog_s", backlog)
        if backlog > self.max_queue_s:
            self.telemetry.count("backhaul.drops")
            raise CapacityError(
                f"backhaul backlog {backlog:.1f}s exceeds {self.max_queue_s:.1f}s"
            )
        done = start + n_bits / self.rate_bps
        self._busy_until = done
        self._last_submit = at_time
        shipment = Shipment(
            submitted_at=at_time,
            n_bits=n_bits,
            started_at=start,
            arrived_at=done + self.latency_s,
        )
        self.shipments.append(shipment)
        self.telemetry.count("backhaul.shipments")
        self.telemetry.count("backhaul.shipped_bits", n_bits)
        return shipment

    @property
    def total_bits(self) -> int:
        """All bits shipped so far."""
        return sum(s.n_bits for s in self.shipments)

    def utilization(self, over_seconds: float) -> float:
        """Average offered load as a fraction of the link rate."""
        if over_seconds <= 0:
            raise ConfigurationError("over_seconds must be positive")
        return self.total_bits / (self.rate_bps * over_seconds)
