"""GalioT's universal preamble (Sec. 4 of the paper).

Construction follows the paper's two steps:

1. **Coalesce** preambles that are effectively the same waveform
   (same modulation *and* correlated patterns — e.g. two 0x55 GFSK
   preambles at the same rate) and keep the shortest representative of
   each group.
2. **Sum** the representatives, zero-padded at the end to the longest
   preamble, after normalizing each to unit energy.

Because the representatives are mutually (near-)orthogonal, correlating
a capture against the *sum* yields a distinct peak wherever any single
technology's preamble appears — and multiple distinct peaks for a
cross-technology collision — at the cost of **one** correlation
regardless of how many technologies are registered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dsp.correlation import (
    cross_correlate,
    find_peaks_above,
    normalized_correlation,
)
from ..contracts import iq_contract
from ..dsp.fastcorr import TemplateBank, blocked_bank
from ..dsp.resample import to_rate
from ..errors import ConfigurationError
from ..phy.base import Modem
from ..telemetry import NULL, Telemetry
from ..types import DetectionEvent
from .detection import cfar_threshold, matched_filter_track

__all__ = ["UniversalPreamble", "UniversalPreambleDetector"]


def _unit_energy(x: np.ndarray) -> np.ndarray:
    energy = float(np.sum(np.abs(x) ** 2))
    if energy <= 0:
        raise ConfigurationError("preamble waveform has zero energy")
    return x / np.sqrt(energy)


def _peak_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Peak normalized sliding correlation between two unit-energy
    waveforms (symmetric: the shorter slides over the longer)."""
    short, long_ = (a, b) if len(a) <= len(b) else (b, a)
    if len(short) == 0:
        return 0.0
    scores = normalized_correlation(long_, short)
    return float(np.max(scores)) if len(scores) else 0.0


@dataclass
class UniversalPreamble:
    """The combined template plus its construction metadata.

    Attributes:
        waveform: The summed, zero-padded template at the capture rate.
        sample_rate_hz: Capture sample rate.
        groups: Coalescing result: list of lists of technology names;
            the first name of each group is the representative.
        representatives: Unit-energy representative waveform per group.
    """

    waveform: np.ndarray
    sample_rate_hz: float
    groups: list[list[str]]
    representatives: dict[str, np.ndarray] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        modems: list[Modem],
        sample_rate_hz: float,
        coalesce_threshold: float = 0.5,
        max_len_s: float = 0.05,
    ) -> UniversalPreamble:
        """Construct the universal preamble for a set of technologies.

        Args:
            modems: Registered technologies (order matters only for
                tie-breaking).
            sample_rate_hz: Capture sample rate.
            coalesce_threshold: Peak sliding correlation above which two
                preambles are considered "common" and merged.
            max_len_s: Cap on any representative's duration. The paper
                sets the template length to the *maximum* preamble
                length, which is fine for the prototype trio but
                explodes for ultra-narrow-band entries (a SigFox
                preamble lasts hundreds of milliseconds); truncating a
                very long preamble costs only part of its correlation
                gain while keeping one bounded correlation per capture.

        Raises:
            ConfigurationError: when ``modems`` is empty.
        """
        if not modems:
            raise ConfigurationError("at least one modem is required")
        cap = max(int(max_len_s * sample_rate_hz), 1)
        templates = {
            m.name: _unit_energy(
                to_rate(m.preamble_waveform(), m.sample_rate, sample_rate_hz)[:cap]
            )
            for m in modems
        }
        # Step 1: coalesce correlated preambles, shortest as representative.
        groups: list[list[str]] = []
        for name, wave in templates.items():
            placed = False
            for group in groups:
                rep = templates[group[0]]
                if _peak_correlation(wave, rep) >= coalesce_threshold:
                    group.append(name)
                    group.sort(key=lambda n: len(templates[n]))
                    placed = True
                    break
            if not placed:
                groups.append([name])
        representatives = {g[0]: templates[g[0]] for g in groups}
        # Step 2: sum, zero-padding at the end to the longest.
        length = max(len(w) for w in representatives.values())
        combined = np.zeros(length, dtype=complex)
        for wave in representatives.values():
            combined[: len(wave)] += wave
        return cls(
            waveform=combined,
            sample_rate_hz=float(sample_rate_hz),
            groups=groups,
            representatives=representatives,
        )

    @property
    def length(self) -> int:
        """Template length in samples."""
        return len(self.waveform)

    def response_to(self, technology_waveform: np.ndarray) -> float:
        """Peak correlation of a technology's preamble with the template.

        This is the paper's analysis check: C(P_j, P) should show one
        distinct spike for every registered technology.
        """
        return float(
            np.max(np.abs(cross_correlate(
                np.concatenate(
                    [np.zeros(self.length, complex),
                     technology_waveform,
                     np.zeros(self.length, complex)]
                ),
                self.waveform,
            )))
        )


class UniversalPreambleDetector:
    """Single-correlation packet detector built on the universal preamble.

    Args:
        universal: A built :class:`UniversalPreamble`.
        k: CFAR factor on the score track.
        min_distance: Minimum spacing between reported events.
        block: Coherent block length for CFO tolerance (``None`` = fully
            coherent correlation; best at very low SNR).
        threshold: Fixed decision threshold. ``None`` re-estimates the
            CFAR threshold per capture; freeze it (directly or with
            :meth:`calibrate`) for a stable operating point across
            captures and chunks.
        telemetry: Metrics sink (the shared no-op by default).
    """

    name = "universal"

    def __init__(
        self,
        universal: UniversalPreamble,
        k: float = 7.0,
        min_distance: int = 1024,
        block: int | None = None,
        threshold: float | None = None,
        telemetry: Telemetry = NULL,
    ):
        self.universal = universal
        self.k = float(k)
        self.min_distance = int(min_distance)
        self.block = block
        self.threshold = threshold
        self.telemetry = telemetry
        # Persistent sub-template bank: the shared-FFT engine caches the
        # conjugate template spectra across every scored chunk.
        self._bank: TemplateBank = blocked_bank(universal.waveform, block)

    @iq_contract("samples")
    def calibrate(self, samples: np.ndarray) -> float:
        """Freeze the threshold from a calibration capture."""
        self.threshold = cfar_threshold(self.scores(samples), self.k)
        return self.threshold

    @property
    def n_correlations(self) -> int:
        """Always one — the point of the universal preamble."""
        return 1

    @iq_contract("samples")
    def scores(self, samples: np.ndarray) -> np.ndarray:
        """Matched-filter score track against the universal template."""
        return matched_filter_track(
            samples,
            self.universal.waveform,
            self.block,
            bank=self._bank,
            telemetry=self.telemetry,
        )

    @iq_contract("samples")
    def detect(self, samples: np.ndarray) -> list[DetectionEvent]:
        """Correlation peaks above the CFAR threshold."""
        self.telemetry.count("detect.samples_in", len(samples))
        if len(samples) < self.universal.length:
            return []
        with self.telemetry.span("detect"):
            scores = self.scores(samples)
            threshold = (
                self.threshold
                if self.threshold is not None
                else cfar_threshold(scores, self.k)
            )
            events = [
                DetectionEvent(
                    index=idx, score=float(scores[idx]), detector=self.name
                )
                for idx in find_peaks_above(scores, threshold, self.min_distance)
            ]
        self.telemetry.count("detect.events", len(events))
        return events

    @iq_contract("samples")
    def stream_candidates(
        self, samples: np.ndarray
    ) -> list[tuple[str | None, int, np.ndarray, np.ndarray]]:
        """Raw threshold crossings for the chunked streaming front.

        Unlike :meth:`detect`, no min-distance suppression is applied —
        the streaming layer replays
        :func:`~repro.dsp.correlation.find_peaks_above`'s greedy
        suppression incrementally across chunk joins, which requires the
        un-suppressed candidate set. Freeze :attr:`threshold` for results
        identical to a monolithic pass (per-chunk CFAR re-estimation is
        data-dependent).

        Returns:
            ``[(technology, template_len, indices, scores)]`` with one
            entry (``technology`` is ``None`` — the universal template
            is technology-agnostic).
        """
        self.telemetry.count("detect.samples_in", len(samples))
        if len(samples) < self.universal.length:
            return []
        with self.telemetry.span("detect"):
            scores = self.scores(samples)
            threshold = (
                self.threshold
                if self.threshold is not None
                else cfar_threshold(scores, self.k)
            )
            idx = np.flatnonzero(scores >= threshold)
        return [(None, self.universal.length, idx, scores[idx])]
