"""Edge decoding: try locally, ship to the cloud only on failure.

Sec. 4 of the paper: "*I/Q samples are pushed to the edge for decoding
individual technologies (assuming no collisions) and shipped to the
cloud only if decoding fails.*" The edge runs the plain single-frame
demodulators — no kill filters, no SIC — so an uncollided segment is
resolved in one pass while a same-power collision falls through to the
cloud.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsp.resample import to_rate
from ..errors import ReproError
from ..phy.base import Modem
from ..telemetry import NULL, Telemetry
from ..types import DecodeResult, Segment

__all__ = ["EdgeOutcome", "EdgeDecoder"]


@dataclass
class EdgeOutcome:
    """Result of the edge's attempt on one segment.

    Attributes:
        results: Frames recovered locally (CRC-clean only).
        ship_to_cloud: Whether the segment still needs the cloud.
    """

    results: list[DecodeResult]
    ship_to_cloud: bool


class EdgeDecoder:
    """Single-technology decode pass running on the gateway/edge node.

    Args:
        modems: Registered technologies.
        sample_rate_hz: Capture sample rate of incoming segments.
        ship_on_multi_detection: Treat segments whose detector found
            more than one event as potential collisions and ship them
            even if one frame decoded locally (the cloud may recover
            the rest).
        telemetry: Metrics sink (the shared no-op by default).
    """

    def __init__(
        self,
        modems: list[Modem],
        sample_rate_hz: float,
        ship_on_multi_detection: bool = True,
        telemetry: Telemetry = NULL,
    ):
        self.modems = list(modems)
        self.sample_rate_hz = float(sample_rate_hz)
        self.ship_on_multi_detection = ship_on_multi_detection
        self.telemetry = telemetry

    def try_decode(self, segment: Segment) -> EdgeOutcome:
        """Attempt a plain decode of every technology on the segment."""
        results: list[DecodeResult] = []
        with self.telemetry.span("edge"):
            for modem in self.modems:
                try:
                    native = to_rate(segment.samples, self.sample_rate_hz, modem.sample_rate)
                    frame = modem.demodulate(native)
                except ReproError:
                    continue
                if frame.crc_ok:
                    results.append(
                        DecodeResult(
                            technology=modem.name,
                            payload=frame.payload,
                            ok=True,
                            method="direct",
                            start=frame.start,
                        )
                    )
        ship = not results
        if self.ship_on_multi_detection and len(segment.detections) > len(results):
            ship = True
        self.telemetry.count("edge.segments")
        self.telemetry.count("edge.frames", len(results))
        if not ship:
            self.telemetry.count("edge.resolved_locally")
        return EdgeOutcome(results=results, ship_to_cloud=ship)

    def try_decode_batch(self, segments: list[Segment]) -> list[EdgeOutcome]:
        """Edge pass over a batch of segments, one outcome per segment.

        Per technology, every segment is resampled once and handed to
        :meth:`~repro.phy.base.Modem.demodulate_many`, so the modem's
        cached sync reference (and any PHY-level batch implementation)
        is amortized over the whole batch instead of rebuilt per frame —
        the modem-batched counterpart of the serial :meth:`try_decode`
        loop, with identical per-segment outcomes.
        """
        per_segment: list[list[DecodeResult]] = [[] for _ in segments]
        with self.telemetry.span("edge.batch"):
            for modem in self.modems:
                buffers = [
                    to_rate(s.samples, self.sample_rate_hz, modem.sample_rate)
                    for s in segments
                ]
                for slot, frame in zip(
                    per_segment, modem.demodulate_many(buffers), strict=True
                ):
                    if frame is not None and frame.crc_ok:
                        slot.append(
                            DecodeResult(
                                technology=modem.name,
                                payload=frame.payload,
                                ok=True,
                                method="direct",
                                start=frame.start,
                            )
                        )
        outcomes: list[EdgeOutcome] = []
        for segment, results in zip(segments, per_segment, strict=True):
            ship = not results
            if self.ship_on_multi_detection and len(segment.detections) > len(
                results
            ):
                ship = True
            self.telemetry.count("edge.segments")
            self.telemetry.count("edge.frames", len(results))
            if not ship:
                self.telemetry.count("edge.resolved_locally")
            outcomes.append(EdgeOutcome(results=results, ship_to_cloud=ship))
        return outcomes
