"""I/Q segment compression for the backhaul.

Sec. 6 of the paper ("Limited Backhaul — Compute, Compress or Ship?")
motivates compressing detected segments before shipping. The codec here
mirrors what a Raspberry-Pi-class gateway can afford:

1. Scale the segment to its peak and requantize I and Q to ``bits``
   (8 by default — no loss versus the RTL-SDR's own ADC).
2. Entropy-code the interleaved I/Q bytes with zlib.

The codec is measured end to end: :class:`CompressionStats` records raw
versus shipped bits, and decompression returns samples whose
quantization error is bounded by the chosen bit depth.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..telemetry import NULL, Telemetry
from ..types import Segment

__all__ = ["CompressedSegment", "CompressionStats", "SegmentCodec"]

_HEADER = struct.Struct("<qIdfB")  # start, n, fs, scale, bits


@dataclass(frozen=True)
class CompressedSegment:
    """A wire-format segment: header metadata + compressed payload."""

    blob: bytes

    @property
    def n_bits(self) -> int:
        """Size on the wire in bits."""
        return 8 * len(self.blob)


@dataclass(frozen=True)
class CompressionStats:
    """Before/after accounting for one segment."""

    raw_bits: int
    shipped_bits: int

    @property
    def ratio(self) -> float:
        """Compression ratio (>1 means the codec helped).

        The degenerate empty segment (0 raw bits) reports 1.0 — nothing
        was compressed, so nothing was gained or lost.
        """
        if self.raw_bits <= 0:
            return 1.0
        if self.shipped_bits <= 0:
            return float("inf")
        return self.raw_bits / self.shipped_bits


class SegmentCodec:
    """Requantize + zlib codec for I/Q segments.

    Args:
        bits: Bits per rail after requantization (1..8).
        level: zlib compression level.
        telemetry: Metrics sink (the shared no-op by default).
    """

    def __init__(self, bits: int = 8, level: int = 6, telemetry: Telemetry = NULL):
        if not 1 <= bits <= 8:
            raise ConfigurationError("bits must be in 1..8")
        if not 0 <= level <= 9:
            raise ConfigurationError("level must be in 0..9")
        self.bits = bits
        self.level = level
        self.telemetry = telemetry

    def compress(self, segment: Segment) -> tuple[CompressedSegment, CompressionStats]:
        """Encode a segment; returns the wire blob and its stats."""
        with self.telemetry.span("compress"):
            blob, stats = self._compress(segment)
        self.telemetry.count("compress.segments")
        self.telemetry.count("compress.raw_bits", stats.raw_bits)
        self.telemetry.count("compress.shipped_bits", stats.shipped_bits)
        return blob, stats

    def _compress(self, segment: Segment) -> tuple[CompressedSegment, CompressionStats]:
        x = segment.samples
        peak = float(np.max(np.abs(np.concatenate([x.real, x.imag])))) if len(x) else 0.0
        scale = peak if peak > 0 else 1.0
        levels = (1 << self.bits) - 1
        half = levels / 2.0

        def _rail(values: np.ndarray) -> np.ndarray:
            q = np.round(values / scale * half + half)
            return np.clip(q, 0, levels).astype(np.uint8)

        inter = np.empty(2 * len(x), dtype=np.uint8)
        inter[0::2] = _rail(x.real)
        inter[1::2] = _rail(x.imag)
        packed = zlib.compress(inter.tobytes(), self.level)
        header = _HEADER.pack(
            segment.start, len(x), segment.sample_rate, scale, self.bits
        )
        blob = CompressedSegment(blob=header + packed)
        raw_bits = 2 * self.bits * len(x)
        return blob, CompressionStats(raw_bits=raw_bits, shipped_bits=blob.n_bits)

    def decompress(self, compressed: CompressedSegment) -> Segment:
        """Decode a wire blob back into a (quantized) segment."""
        with self.telemetry.span("decompress"):
            return self._decompress(compressed)

    def _decompress(self, compressed: CompressedSegment) -> Segment:
        header = compressed.blob[: _HEADER.size]
        start, n, fs, scale, bits = _HEADER.unpack(header)
        inter = np.frombuffer(
            zlib.decompress(compressed.blob[_HEADER.size :]), dtype=np.uint8
        )
        if len(inter) != 2 * n:
            raise ConfigurationError("corrupt compressed segment")
        levels = (1 << bits) - 1
        half = levels / 2.0
        i = (inter[0::2].astype(float) - half) / half * scale
        q = (inter[1::2].astype(float) - half) / half * scale
        return Segment(start=start, samples=i + 1j * q, sample_rate=fs)
