"""The GalioT gateway: front end -> detect -> extract -> compress -> ship.

This is the orchestrator tying the gateway-side pieces together exactly
as Figure 2 of the paper draws them. One call to
:meth:`GalioTGateway.process` takes a clean scene capture and returns
everything downstream layers need: the shipped segments (optionally
after an edge decode pass), the backhaul accounting and the detection
events themselves.

For unbounded sample streams, :class:`repro.gateway.streaming.
StreamingGateway` drives the same pipeline chunk by chunk; the
per-segment ship path (:meth:`GalioTGateway.ship_segment`) is shared so
both fronts account identically.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..contracts import iq_contract
from ..errors import CapacityError
from ..guard import DecodeGuard
from ..phy.base import Modem
from ..sensing.jamming import JammingDetector, JammingEvent
from ..telemetry import NULL, Telemetry
from ..types import DecodeResult, DetectionEvent, Segment
from .backhaul import BackhaulLink
from .compression import SegmentCodec
from .detection import EnergyDetector, PreambleBankDetector
from .edge import EdgeDecoder
from .extractor import SegmentExtractor
from .resilience import DegradationLadder, ResilientBackhaul, SpillEntry
from .rtlsdr import RtlSdrModel
from .universal import UniversalPreamble, UniversalPreambleDetector

__all__ = ["GatewayReport", "GalioTGateway"]


@dataclass
class GatewayReport:
    """Everything a gateway pass produced.

    Attributes:
        events: Raw detection events.
        segments: Extracted segments (pre-compression).
        shipped: Segments destined for the cloud (post-edge filtering).
        edge_results: Frames the edge resolved locally.
        shipped_bits: Total bits placed on the backhaul.
        raw_bits: Bits a ship-everything design would have sent.
        dropped_segments: Segments lost to backhaul overload (with a
            :class:`~repro.gateway.resilience.ResilientBackhaul`, only
            explicit drop-policy evictions land here).
        degraded_segments: Segments shipped metadata-only by the
            degradation ladder (the cloud cannot joint-decode them).
        jamming_events: Spectrum anomalies the gateway's
            :class:`~repro.sensing.jamming.JammingDetector` flagged
            (empty when no detector is configured).
    """

    events: list[DetectionEvent] = field(default_factory=list)
    segments: list[Segment] = field(default_factory=list)
    shipped: list[Segment] = field(default_factory=list)
    edge_results: list[DecodeResult] = field(default_factory=list)
    shipped_bits: int = 0
    raw_bits: int = 0
    dropped_segments: int = 0
    degraded_segments: int = 0
    jamming_events: list[JammingEvent] = field(default_factory=list)

    @property
    def backhaul_saving(self) -> float:
        """Raw-stream bits divided by actually-shipped bits.

        An empty pass (no samples seen, nothing shipped) reports 1.0:
        no traffic existed, so nothing was saved or wasted.
        """
        if self.raw_bits <= 0:
            return 1.0
        if self.shipped_bits <= 0:
            return float("inf")
        return self.raw_bits / self.shipped_bits

    def absorb(self, other: GatewayReport) -> GatewayReport:
        """Fold another report's contents into this one, in place.

        Used by the streaming front to merge incremental chunk reports;
        the merged totals equal one monolithic pass over the same
        samples. Returns ``self`` for chaining.
        """
        self.events.extend(other.events)
        self.segments.extend(other.segments)
        self.shipped.extend(other.shipped)
        self.edge_results.extend(other.edge_results)
        self.shipped_bits += other.shipped_bits
        self.raw_bits += other.raw_bits
        self.dropped_segments += other.dropped_segments
        self.degraded_segments += other.degraded_segments
        self.jamming_events.extend(other.jamming_events)
        return self

    @staticmethod
    def merged(reports: list[GatewayReport]) -> GatewayReport:
        """A fresh report holding the sum of ``reports`` (in order)."""
        total = GatewayReport()
        for report in reports:
            total.absorb(report)
        return total


class GalioTGateway:
    """An inexpensive software-radio gateway with universal detection.

    Args:
        modems: Registered technologies (the "software update" surface).
        sample_rate_hz: Capture sample rate.
        detector: ``"universal"`` (GalioT), ``"bank"`` (optimal,
            per-technology) or ``"energy"`` (baseline).
        front_end: RTL-SDR model; ``None`` processes the clean stream.
        use_edge: Run the edge decode pass before shipping.
        codec: Segment compression codec.
        backhaul: Uplink model (``None`` for unlimited). Pass a
            :class:`~repro.gateway.resilience.ResilientBackhaul` for
            spill-and-retry shipping instead of drop-on-overload.
        degradation: Optional
            :class:`~repro.gateway.resilience.DegradationLadder`; under
            sustained backpressure (resilient backhaul only) shipping
            degrades full -> compressed -> metadata-only and recovers
            when the link heals.
        jamming: Optional
            :class:`~repro.sensing.jamming.JammingDetector` fed every
            front-end sample; its events land in the report and its
            pressure signal is folded into the degradation ladder, so
            jamming-induced backpressure degrades shipping early.
        guard: Optional :class:`~repro.guard.DecodeGuard` applied to
            edge-decoded frames (replay / duplicate admission control).
            Share the instance with the cloud service so a frame
            accepted on either side inoculates the other.
        telemetry: Metrics sink threaded through every stage (the
            shared no-op by default).
        detector_kwargs: Extra arguments for the chosen detector.
    """

    def __init__(
        self,
        modems: list[Modem],
        sample_rate_hz: float = 1e6,
        detector: str = "universal",
        front_end: RtlSdrModel | None = None,
        use_edge: bool = True,
        codec: SegmentCodec | None = None,
        backhaul: BackhaulLink | ResilientBackhaul | None = None,
        degradation: DegradationLadder | None = None,
        jamming: JammingDetector | None = None,
        guard: DecodeGuard | None = None,
        telemetry: Telemetry | None = None,
        **detector_kwargs,
    ):
        if "fs" in detector_kwargs:
            warnings.warn(
                "GalioTGateway(fs=...) is deprecated; use sample_rate_hz=...",
                DeprecationWarning,
                stacklevel=2,
            )
            sample_rate_hz = float(detector_kwargs.pop("fs"))
        self.modems = list(modems)
        self.sample_rate_hz = float(sample_rate_hz)
        self.front_end = front_end
        self.use_edge = use_edge
        self.telemetry = telemetry if telemetry is not None else NULL
        self.codec = codec or SegmentCodec(telemetry=self.telemetry)
        if self.codec.telemetry is NULL:
            self.codec.telemetry = self.telemetry
        self.backhaul = backhaul
        if self.backhaul is not None and self.backhaul.telemetry is NULL:
            self.backhaul.telemetry = self.telemetry
            if isinstance(self.backhaul, ResilientBackhaul):
                self.backhaul.link.telemetry = self.telemetry
        self.degradation = degradation
        if self.degradation is not None and self.degradation.telemetry is NULL:
            self.degradation.telemetry = self.telemetry
        self.jamming = jamming
        if self.jamming is not None and self.jamming.telemetry is NULL:
            self.jamming.telemetry = self.telemetry
        self.guard = guard
        if self.guard is not None and self.guard.telemetry is NULL:
            self.guard.telemetry = self.telemetry
        self._degraded_codec: SegmentCodec | None = None
        self.extractor = SegmentExtractor(
            self.modems, self.sample_rate_hz, telemetry=self.telemetry
        )
        self.edge = (
            EdgeDecoder(self.modems, self.sample_rate_hz, telemetry=self.telemetry)
            if use_edge
            else None
        )
        if detector == "universal":
            universal = UniversalPreamble.build(self.modems, self.sample_rate_hz)
            self.detector = UniversalPreambleDetector(
                universal, telemetry=self.telemetry, **detector_kwargs
            )
        elif detector == "bank":
            self.detector = PreambleBankDetector(
                self.modems, self.sample_rate_hz, telemetry=self.telemetry, **detector_kwargs
            )
        elif detector == "energy":
            self.detector = EnergyDetector(
                telemetry=self.telemetry, **detector_kwargs
            )
        else:
            raise ValueError(f"unknown detector {detector!r}")

    @property
    def fs(self) -> float:
        """Deprecated alias for :attr:`sample_rate_hz`."""
        warnings.warn(
            "GalioTGateway.fs is deprecated; use .sample_rate_hz",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.sample_rate_hz

    @iq_contract("capture")
    def capture_front_end(
        self, capture: np.ndarray, rng: np.random.Generator | None
    ) -> tuple[np.ndarray, int]:
        """Run the front-end model; returns ``(samples, raw_bits)``.

        ``raw_bits`` is what a ship-everything design would have put on
        the wire for these samples (ADC width when a front end models
        one, 8 bits per rail otherwise).
        """
        if self.front_end is not None:
            samples = self.front_end.capture(capture, rng)
            raw_bits = int(len(samples) * 2 * self.front_end.config.adc_bits)
        else:
            samples = capture
            raw_bits = len(samples) * 2 * 8
        if self.jamming is not None:
            # Shared choke point of the monolithic and streaming fronts:
            # feeding here keeps their jamming timelines identical.
            self.jamming.feed(samples)
        return samples, raw_bits

    def admit_event(self, event: DetectionEvent) -> bool:
        """Jam-gated detection admission.

        A wideband jammer raises the noise floor, and with it the
        matched-filter scores of pure noise — without a gate, every
        burst floods the extractor with spurious events whose segments
        then drown the backhaul (jamming-induced backpressure). During
        a block the jamming detector attributes to sustained
        interference, a detection must clear the calibrated threshold
        scaled by the measured floor's *amplitude* ratio — exactly the
        margin the raised floor hands to noise, and comfortably inside
        a real preamble's matched-filter headroom. Without a jamming
        detector, a frozen threshold, or a floor rise, every event is
        admitted unchanged.
        """
        if self.jamming is None:
            return True
        rise_db = self.jamming.rise_at(event.index / self.sample_rate_hz)
        if rise_db <= 0:
            return True
        threshold = getattr(self.detector, "threshold", None)
        if isinstance(threshold, dict):
            threshold = threshold.get(event.technology)
        if not threshold:
            return True
        if event.score >= threshold * 10 ** (rise_db / 20):
            return True
        self.telemetry.count("attack.gated_detections")
        return False

    # Fixed metadata-only wire cost: a 16-byte segment header plus one
    # 32-byte record (start, length, rate, score, technology tag) per
    # detection. No I/Q leaves the gateway at this degradation level.
    _METADATA_HEADER_BITS = 8 * 16
    _METADATA_EVENT_BITS = 8 * 32

    def ship_segment(self, segment: Segment, report: GatewayReport) -> None:
        """Run one segment through edge -> compress -> backhaul.

        Mutates ``report`` (edge results, shipped list, bit and drop
        counters). Shared by the monolithic and streaming fronts so
        their accounting is identical by construction.

        With a plain :class:`BackhaulLink`, overload drops the segment
        (counted). With a :class:`ResilientBackhaul`, refusals spill and
        retry; the only loss is an explicit drop-policy eviction, and
        deliveries (including older spilled segments that just got
        through) are folded into ``report`` as they happen.
        """
        ship = True
        if self.edge is not None:
            outcome = self.edge.try_decode(segment)
            results = outcome.results
            if self.guard is not None:
                # Edge starts are native-rate offsets inside the
                # segment; rebase onto capture time for the guard's
                # freshness window.
                base = segment.start / self.sample_rate_hz
                rates = {m.name: m.sample_rate for m in self.modems}
                results = [
                    r
                    for r in results
                    if self.guard.admit(r, base + r.start / rates[r.technology])
                ]
            report.edge_results.extend(results)
            ship = outcome.ship_to_cloud
        if not ship:
            return
        at_time = segment.start / self.sample_rate_hz
        resilient = isinstance(self.backhaul, ResilientBackhaul)
        level = DegradationLadder.FULL
        if self.degradation is not None and resilient:
            pressure = self.backhaul.pressure(at_time)
            if self.jamming is not None:
                jam = self.jamming.pressure_at(at_time)
                if jam > 0:
                    self.telemetry.gauge("attack.jam_pressure", jam)
                pressure = max(pressure, jam)
            level = self.degradation.observe(pressure)
        stats = None
        if level >= DegradationLadder.METADATA:
            n_bits = self._METADATA_HEADER_BITS + self._METADATA_EVENT_BITS * max(
                1, len(segment.detections)
            )
            payload = None
            metadata_only = True
        else:
            codec = self.codec if level == DegradationLadder.FULL else self._degraded()
            compressed, stats = codec.compress(segment)
            n_bits = compressed.n_bits
            payload = segment
            metadata_only = False
        if resilient:
            score = max((e.score for e in segment.detections), default=0.0)
            outcome = self.backhaul.ship(
                n_bits,
                at_time,
                score=score,
                payload=payload,
                metadata_only=metadata_only,
            )
            if outcome.status == "spilled":
                self.telemetry.count("gateway.spilled_segments")
            self.account_deliveries(outcome.delivered, outcome.evicted, report)
            if stats is not None and outcome.status == "delivered":
                self.telemetry.gauge("gateway.last_compression_ratio", stats.ratio)
            return
        if self.backhaul is not None:
            try:
                self.backhaul.ship(n_bits, at_time)
            except CapacityError:
                report.dropped_segments += 1
                self.telemetry.count("gateway.dropped_segments")
                return
        report.shipped_bits += n_bits
        report.shipped.append(segment)
        self.telemetry.count("gateway.shipped_segments")
        self.telemetry.count("gateway.shipped_bits", n_bits)
        if stats is not None:
            self.telemetry.gauge("gateway.last_compression_ratio", stats.ratio)

    def _degraded(self) -> SegmentCodec:
        """The ladder's level-1 codec: half the rails' bits, max effort."""
        if self._degraded_codec is None:
            self._degraded_codec = SegmentCodec(
                bits=min(self.codec.bits, 4), level=9, telemetry=self.telemetry
            )
        return self._degraded_codec

    def account_deliveries(
        self,
        delivered: tuple[SpillEntry, ...] | list[SpillEntry],
        evicted: tuple[SpillEntry, ...] | list[SpillEntry],
        report: GatewayReport,
    ) -> None:
        """Fold resilient-backhaul deliveries/evictions into a report.

        A delivered entry becomes a shipped segment (or a degraded,
        metadata-only ship); an evicted entry is the drop policy's
        explicit loss and lands in ``dropped_segments``.
        """
        for entry in delivered:
            report.shipped_bits += entry.n_bits
            if entry.metadata_only:
                report.degraded_segments += 1
                self.telemetry.count("gateway.degraded_segments")
                self.telemetry.count("gateway.shipped_bits", entry.n_bits)
            else:
                report.shipped.append(entry.payload)
                self.telemetry.count("gateway.shipped_segments")
                self.telemetry.count("gateway.shipped_bits", entry.n_bits)
        for _ in evicted:
            report.dropped_segments += 1
            self.telemetry.count("gateway.dropped_segments")

    @iq_contract("capture")
    def process(
        self, capture: np.ndarray, rng: np.random.Generator | None = None
    ) -> GatewayReport:
        """Run the full gateway pipeline over one capture."""
        report = GatewayReport()
        with self.telemetry.span("gateway"):
            if self.jamming is not None:
                self.jamming.reset()  # one capture = one stream
            samples, report.raw_bits = self.capture_front_end(capture, rng)
            self.telemetry.count("gateway.samples_in", len(samples))
            report.events = [
                e for e in self.detector.detect(samples) if self.admit_event(e)
            ]
            report.segments = self.extractor.extract(samples, report.events)
            for segment in report.segments:
                self.ship_segment(segment, report)
            if isinstance(self.backhaul, ResilientBackhaul):
                delivered = self.backhaul.drain(
                    len(samples) / self.sample_rate_hz
                )
                self.account_deliveries(delivered, (), report)
            if self.jamming is not None:
                self.jamming.flush()
                report.jamming_events = self.jamming.drain_events()
        return report
