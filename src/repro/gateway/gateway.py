"""The GalioT gateway: front end -> detect -> extract -> compress -> ship.

This is the orchestrator tying the gateway-side pieces together exactly
as Figure 2 of the paper draws them. One call to
:meth:`GalioTGateway.process` takes a clean scene capture and returns
everything downstream layers need: the shipped segments (optionally
after an edge decode pass), the backhaul accounting and the detection
events themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CapacityError
from ..phy.base import Modem
from ..types import DecodeResult, DetectionEvent, Segment
from .backhaul import BackhaulLink
from .compression import SegmentCodec
from .detection import EnergyDetector, PreambleBankDetector
from .edge import EdgeDecoder
from .extractor import SegmentExtractor
from .rtlsdr import RtlSdrModel
from .universal import UniversalPreamble, UniversalPreambleDetector

__all__ = ["GatewayReport", "GalioTGateway"]


@dataclass
class GatewayReport:
    """Everything a gateway pass produced.

    Attributes:
        events: Raw detection events.
        segments: Extracted segments (pre-compression).
        shipped: Segments destined for the cloud (post-edge filtering).
        edge_results: Frames the edge resolved locally.
        shipped_bits: Total bits placed on the backhaul.
        raw_bits: Bits a ship-everything design would have sent.
        dropped_segments: Segments lost to backhaul overload.
    """

    events: list[DetectionEvent] = field(default_factory=list)
    segments: list[Segment] = field(default_factory=list)
    shipped: list[Segment] = field(default_factory=list)
    edge_results: list[DecodeResult] = field(default_factory=list)
    shipped_bits: int = 0
    raw_bits: int = 0
    dropped_segments: int = 0

    @property
    def backhaul_saving(self) -> float:
        """Raw-stream bits divided by actually-shipped bits."""
        if self.shipped_bits <= 0:
            return float("inf")
        return self.raw_bits / self.shipped_bits


class GalioTGateway:
    """An inexpensive software-radio gateway with universal detection.

    Args:
        modems: Registered technologies (the "software update" surface).
        fs: Capture sample rate.
        detector: ``"universal"`` (GalioT), ``"bank"`` (optimal,
            per-technology) or ``"energy"`` (baseline).
        front_end: RTL-SDR model; ``None`` processes the clean stream.
        use_edge: Run the edge decode pass before shipping.
        codec: Segment compression codec.
        backhaul: Uplink model (``None`` for unlimited).
        detector_kwargs: Extra arguments for the chosen detector.
    """

    def __init__(
        self,
        modems: list[Modem],
        fs: float = 1e6,
        detector: str = "universal",
        front_end: RtlSdrModel | None = None,
        use_edge: bool = True,
        codec: SegmentCodec | None = None,
        backhaul: BackhaulLink | None = None,
        **detector_kwargs,
    ):
        self.modems = list(modems)
        self.fs = float(fs)
        self.front_end = front_end
        self.use_edge = use_edge
        self.codec = codec or SegmentCodec()
        self.backhaul = backhaul
        self.extractor = SegmentExtractor(self.modems, self.fs)
        self.edge = EdgeDecoder(self.modems, self.fs) if use_edge else None
        if detector == "universal":
            universal = UniversalPreamble.build(self.modems, self.fs)
            self.detector = UniversalPreambleDetector(universal, **detector_kwargs)
        elif detector == "bank":
            self.detector = PreambleBankDetector(
                self.modems, self.fs, **detector_kwargs
            )
        elif detector == "energy":
            self.detector = EnergyDetector(**detector_kwargs)
        else:
            raise ValueError(f"unknown detector {detector!r}")

    def process(
        self, capture: np.ndarray, rng: np.random.Generator | None = None
    ) -> GatewayReport:
        """Run the full gateway pipeline over one capture."""
        report = GatewayReport()
        samples = capture
        if self.front_end is not None:
            samples = self.front_end.capture(capture, rng)
            report.raw_bits = int(
                len(samples) * 2 * self.front_end.config.adc_bits
            )
        else:
            report.raw_bits = len(samples) * 2 * 8
        report.events = self.detector.detect(samples)
        report.segments = self.extractor.extract(samples, report.events)
        for segment in report.segments:
            ship = True
            if self.edge is not None:
                outcome = self.edge.try_decode(segment)
                report.edge_results.extend(outcome.results)
                ship = outcome.ship_to_cloud
            if not ship:
                continue
            compressed, stats = self.codec.compress(segment)
            if self.backhaul is not None:
                try:
                    self.backhaul.ship(
                        compressed.n_bits, segment.start / self.fs
                    )
                except CapacityError:
                    report.dropped_segments += 1
                    continue
            report.shipped_bits += compressed.n_bits
            report.shipped.append(segment)
        return report
