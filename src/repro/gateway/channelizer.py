"""FFT channelizer: watch every sub-channel of a wide band at once.

The dual of :mod:`repro.gateway.hopping`: instead of one tuner that
dwells, a gateway with enough compute can split the whole wideband
capture into all of its sub-channels simultaneously (the "replicated
front-ends" option of Sec. 6, implemented in DSP instead of hardware).

The implementation is a straightforward overlap-free critically-sampled
DFT filter bank: the capture is cut into blocks of ``n_channels``
samples, each block is DFT'd, and bin ``c`` across blocks is (after the
per-channel frequency alignment) the decimated baseband of channel
``c``. A windowed (weighted-overlap-add) prototype improves adjacent-
channel rejection over the rectangular bank.
"""

from __future__ import annotations

import numpy as np

from ..dsp.filters import fft_bandpass, frequency_shift
from ..errors import ConfigurationError
from .hopping import ChannelPlan

__all__ = ["Channelizer"]


class Channelizer:
    """Splits a wideband capture into all channels of a plan.

    Two quality modes:

    * ``mode="fft"`` — exact per-channel mix + brick-wall filter +
      decimate. O(n_channels · N log N); best fidelity, the default.
    * ``mode="bank"`` — critically-sampled DFT bank. One pass over the
      capture; faster for many channels, with the rectangular-window
      adjacent-channel leakage that implies.
    """

    def __init__(self, plan: ChannelPlan, mode: str = "fft"):
        if mode not in ("fft", "bank"):
            raise ConfigurationError(f"unknown channelizer mode {mode!r}")
        if mode == "bank":
            # The critically-sampled bank only extracts channels sitting
            # exactly on DFT bins (multiples of wide_fs / decimation).
            spacing = plan.wide_fs / plan.decimation
            for centre in plan.centers_hz:
                if abs(centre / spacing - round(centre / spacing)) > 1e-9:
                    raise ConfigurationError(
                        "bank mode needs on-bin channel centres "
                        f"(multiples of {spacing:g} Hz); got {centre:g}"
                    )
        self.plan = plan
        self.mode = mode

    def split(self, wide: np.ndarray) -> dict[int, np.ndarray]:
        """All channel basebands, keyed by channel index."""
        if self.mode == "fft":
            return {
                c: self._one_channel(wide, c)
                for c in range(self.plan.n_channels)
            }
        return self._bank(wide)

    def _one_channel(self, wide: np.ndarray, channel: int) -> np.ndarray:
        centre = self.plan.centers_hz[channel]
        mixed = frequency_shift(wide, -centre, self.plan.wide_fs)
        filtered = fft_bandpass(
            mixed,
            self.plan.wide_fs,
            (-self.plan.channel_bw / 2, self.plan.channel_bw / 2),
        )
        return filtered[:: self.plan.decimation]

    def _bank(self, wide: np.ndarray) -> dict[int, np.ndarray]:
        m = self.plan.decimation
        n_blocks = len(wide) // m
        if n_blocks == 0:
            return {c: np.zeros(0, complex) for c in range(self.plan.n_channels)}
        blocks = wide[: n_blocks * m].reshape(n_blocks, m)
        # DFT across each block: bin k holds the band centred at
        # k * wide_fs / m. fftshift-style mapping onto the plan's centres.
        spectra = np.fft.fft(blocks, axis=1) / m
        out: dict[int, np.ndarray] = {}
        bin_spacing = self.plan.wide_fs / m
        for c, centre in enumerate(self.plan.centers_hz):
            k = int(round(centre / bin_spacing)) % m
            # An on-bin unit tone comes out at unit amplitude; channels
            # whose centre is off-bin inherit the rectangular window's
            # scalloping (documented bank-mode trade-off).
            out[c] = spectra[:, k]
        return out

    def best_mapping(self) -> dict[int, int]:
        """Bank-mode DFT bin used for each channel (for diagnostics)."""
        m = self.plan.decimation
        bin_spacing = self.plan.wide_fs / m
        return {
            c: int(round(centre / bin_spacing)) % m
            for c, centre in enumerate(self.plan.centers_hz)
        }
