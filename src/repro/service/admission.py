"""Deterministic admission control for the ingestion tier.

Admission is the *control plane* of :mod:`repro.service` and runs
entirely on the modeled arrival-time axis — never the host clock — so
that two runs over the same generated workload make identical
accept/reject decisions no matter how fast the decode plane happens to
drain (the repo's seeded-determinism contract, extended to the service
tier). Three gates, applied in order:

1. **Score floor** — segments whose best detection score is below
   ``min_score`` are obvious noise the gateway shipped anyway; reject
   before they cost queue space (reason ``"score"``).
2. **Per-tenant quota** — a token bucket per tenant (sustained
   ``rate_hz`` + ``burst`` depth) refilled on modeled time. Tenants
   without a quota fall back to ``default_quota``; with no default they
   are rejected outright (reason ``"unknown-tenant"``).
3. **Global backlog bound** — a fluid model of the decode backlog:
   arrivals add one segment, the modeled service capacity
   (``drain_rate_hz``) drains it linearly between arrivals, and an
   arrival that would push the modeled backlog past ``max_backlog`` is
   shed (reason ``"backlog"``). Using the *modeled* drain rate instead
   of live queue depth is what keeps the ledger reproducible; the
   autoscaler reacts to the real queue, admission to the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..telemetry import NULL, Telemetry

__all__ = [
    "TenantQuota",
    "AdmissionPolicy",
    "AdmissionDecision",
    "AdmissionController",
]


@dataclass(frozen=True)
class TenantQuota:
    """Token-bucket quota for one tenant.

    Attributes:
        rate_hz: Sustained admitted-segment rate (tokens per modeled
            second).
        burst: Bucket depth — how many segments may be admitted
            back-to-back after an idle stretch.
    """

    rate_hz: float
    burst: int = 8

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ConfigurationError("rate_hz must be positive")
        if self.burst < 1:
            raise ConfigurationError("burst must be >= 1")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Everything the controller needs to decide accept/reject.

    Attributes:
        quotas: Per-tenant token buckets.
        default_quota: Bucket applied to tenants absent from ``quotas``
            (one bucket *per unknown tenant*, not shared); ``None``
            rejects unknown tenants outright.
        drain_rate_hz: Modeled decode capacity for the fluid backlog
            bound (segments per modeled second).
        max_backlog: Admitted-but-undrained segments the fluid model
            tolerates before shedding load.
        min_score: Detection-score floor; segments scoring below are
            rejected as noise.
    """

    quotas: dict[str, TenantQuota] = field(default_factory=dict)
    default_quota: TenantQuota | None = None
    drain_rate_hz: float = 50.0
    max_backlog: int = 256
    min_score: float = 0.0

    def __post_init__(self) -> None:
        if self.drain_rate_hz <= 0:
            raise ConfigurationError("drain_rate_hz must be positive")
        if self.max_backlog < 1:
            raise ConfigurationError("max_backlog must be >= 1")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one :meth:`AdmissionController.admit` call."""

    accepted: bool
    reason: str  # "ok" | "score" | "unknown-tenant" | "quota" | "backlog"
    tenant: str
    arrival_s: float


@dataclass
class _Bucket:
    """Mutable token-bucket state for one tenant."""

    tokens: float
    last_s: float


class AdmissionController:
    """Stateful, deterministic admission gate.

    Arrivals must be offered in non-decreasing modeled-time order (the
    load generator emits them sorted; interleaving tenants is fine) —
    token refill and backlog drain both integrate forward along that
    axis, and rewinding it would rewrite decisions already made.

    Args:
        policy: The admission policy.
        telemetry: Metrics sink; per-tenant accept/reject counters are
            recorded under ``service.tenant.<tenant>.*`` scoped views
            and totals under ``service.admission.*``.
    """

    def __init__(
        self, policy: AdmissionPolicy, telemetry: Telemetry = NULL
    ) -> None:
        self.policy = policy
        self.telemetry = telemetry
        self._buckets: dict[str, _Bucket] = {}
        self._backlog = 0.0
        self._last_s = float("-inf")
        self._tenant_sinks: dict[str, Telemetry] = {}

    def _sink(self, tenant: str) -> Telemetry:
        sink = self._tenant_sinks.get(tenant)
        if sink is None:
            sink = self.telemetry.scoped(f"service.tenant.{tenant}")
            self._tenant_sinks[tenant] = sink
        return sink

    def drained_backlog(self, at_s: float) -> float:
        """The fluid-model backlog after draining up to ``at_s``."""
        if self._last_s == float("-inf"):
            return self._backlog
        elapsed = max(0.0, at_s - self._last_s)
        return max(0.0, self._backlog - elapsed * self.policy.drain_rate_hz)

    def admit(
        self, tenant: str, arrival_s: float, score: float
    ) -> AdmissionDecision:
        """Decide one arrival; mutates quota and backlog state.

        Raises:
            ConfigurationError: when ``arrival_s`` precedes an arrival
                already decided (the modeled clock only moves forward).
        """
        if arrival_s < self._last_s:
            raise ConfigurationError(
                f"non-monotonic arrival: {arrival_s:.6f}s is before the "
                f"last decided arrival ({self._last_s:.6f}s)"
            )
        self._backlog = self.drained_backlog(arrival_s)
        self._last_s = arrival_s

        if score < self.policy.min_score:
            return self._reject(tenant, arrival_s, "score")

        quota = self.policy.quotas.get(tenant, self.policy.default_quota)
        if quota is None:
            return self._reject(tenant, arrival_s, "unknown-tenant")
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = _Bucket(
                tokens=float(quota.burst), last_s=arrival_s
            )
        else:
            bucket.tokens = min(
                float(quota.burst),
                bucket.tokens + (arrival_s - bucket.last_s) * quota.rate_hz,
            )
            bucket.last_s = arrival_s
        if bucket.tokens < 1.0:
            return self._reject(tenant, arrival_s, "quota")

        if self._backlog + 1.0 > self.policy.max_backlog:
            return self._reject(tenant, arrival_s, "backlog")

        bucket.tokens -= 1.0
        self._backlog += 1.0
        self.telemetry.count("service.admission.accepted")
        self._sink(tenant).count("accepted")
        return AdmissionDecision(True, "ok", tenant, arrival_s)

    def _reject(
        self, tenant: str, arrival_s: float, reason: str
    ) -> AdmissionDecision:
        self.telemetry.count(f"service.admission.rejected.{reason}")
        self._sink(tenant).count(f"rejected.{reason}")
        return AdmissionDecision(False, reason, tenant, arrival_s)
