"""Multi-tenant ingestion service tier in front of the decode farm.

The GalioT cloud, grown one layer outward: gateways ship detection
segments, and this package is the front door that decides — per tenant,
per band, deterministically — what the decode farm works on and when.

Modules:
    admission: Score/quota/backlog gates on the modeled time axis.
    queues: Per-(tenant, band) FIFOs under score-priority scheduling.
    autoscale: Queue-depth-driven worker-pool control law.
    loadgen: Fleet-scale (10^6-device) Poisson workload generator.
    ingest: The asyncio service orchestrating all of the above.
"""

from .admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    TenantQuota,
)
from .autoscale import AutoscaleDecision, AutoscalePolicy, AutoscalerModel
from .ingest import (
    CompletedSegment,
    IngestionService,
    QuarantinedEntry,
    ServiceLedger,
    ServiceReport,
)
from .loadgen import TenantWorkload, generate_workload, offered_rate_hz
from .queues import QueuedSegment, ShardedQueues

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "TenantQuota",
    "AutoscaleDecision",
    "AutoscalePolicy",
    "AutoscalerModel",
    "CompletedSegment",
    "IngestionService",
    "QuarantinedEntry",
    "ServiceLedger",
    "ServiceReport",
    "TenantWorkload",
    "generate_workload",
    "offered_rate_hz",
    "QueuedSegment",
    "ShardedQueues",
]
