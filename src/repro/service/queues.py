"""Per-tenant/band segment queues with score-priority scheduling.

Queue topology: one FIFO shard per ``(tenant, band)`` pair, under a
single scheduler. Within a shard, a tenant's segments stay in arrival
order (a tenant never sees its own traffic reordered); across shards,
the scheduler always serves the shard whose *head* segment carries the
highest detection score — the same score the backhaul's drop policy
(:mod:`repro.gateway.resilience`) already uses as its priority axis, so
a segment that survived the gateway's eviction pressure is also the
first one decoded.

Pop order is fully deterministic: ties on score break by ingest
sequence number (earlier first), so two runs over the same admitted
stream drain in the same order regardless of decode-plane speed.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..telemetry import NULL, Telemetry
from ..types import Segment

__all__ = ["QueuedSegment", "ShardedQueues"]


@dataclass(frozen=True)
class QueuedSegment:
    """One admitted segment waiting for (or finishing) decode.

    Attributes:
        seq: Ingest sequence number (unique, assigned at admission).
        tenant: Owning tenant.
        band: Frequency band / shard key component (e.g. ``"eu868"``).
        technology: Suspected technology (scheduling metadata only).
        score: Best gateway detection score — the priority axis.
        arrival_s: Modeled arrival time of the segment.
        segment: The I/Q payload shipped to the decode plane.
    """

    seq: int
    tenant: str
    band: str
    technology: str
    score: float
    arrival_s: float
    segment: Segment


@dataclass
class _Shard:
    """One (tenant, band) FIFO with its heap bookkeeping."""

    key: tuple[str, str]
    fifo: deque[QueuedSegment] = field(default_factory=deque)


class ShardedQueues:
    """FIFO-within-shard, score-priority-across-shards segment queues.

    A lazy heap indexes the shards by their head segment's
    ``(-score, seq)``; stale heap entries (the head changed since the
    entry was pushed) are skipped on pop. All operations are O(log n)
    in the number of shards.

    Args:
        telemetry: Metrics sink; per-shard depth gauges land under
            ``service.queue.<tenant>.<band>.depth`` and the global
            depth under ``service.queue.depth``.
    """

    def __init__(self, telemetry: Telemetry = NULL) -> None:
        self.telemetry = telemetry
        self._shards: dict[tuple[str, str], _Shard] = {}
        self._heap: list[tuple[float, int, tuple[str, str]]] = []
        self._depth = 0

    def __len__(self) -> int:
        return self._depth

    def depth(self, tenant: str, band: str) -> int:
        """Current depth of one shard (0 for an unknown shard)."""
        shard = self._shards.get((tenant, band))
        return len(shard.fifo) if shard is not None else 0

    def depths(self) -> dict[tuple[str, str], int]:
        """Snapshot of every shard's depth (includes drained shards)."""
        return {key: len(s.fifo) for key, s in self._shards.items()}

    def _index(self, shard: _Shard) -> None:
        head = shard.fifo[0]
        heapq.heappush(self._heap, (-head.score, head.seq, shard.key))

    def push(self, item: QueuedSegment) -> None:
        """Enqueue one admitted segment into its (tenant, band) shard."""
        key = (item.tenant, item.band)
        shard = self._shards.get(key)
        if shard is None:
            shard = self._shards[key] = _Shard(key=key)
        shard.fifo.append(item)
        if len(shard.fifo) == 1:
            self._index(shard)
        self._depth += 1
        self.telemetry.gauge("service.queue.depth", self._depth)
        self.telemetry.gauge(
            f"service.queue.{item.tenant}.{item.band}.depth",
            len(shard.fifo),
        )

    def pop(self) -> QueuedSegment | None:
        """Dequeue the highest-priority head segment (None when empty).

        Priority: highest head score first, ties by lowest sequence
        number — deterministic for any push history.
        """
        while self._heap:
            neg_score, seq, key = heapq.heappop(self._heap)
            shard = self._shards.get(key)
            if shard is None or not shard.fifo:
                continue
            head = shard.fifo[0]
            if -neg_score != head.score or seq != head.seq:
                continue  # stale entry; the live one is elsewhere
            shard.fifo.popleft()
            if shard.fifo:
                self._index(shard)
            self._depth -= 1
            self.telemetry.gauge("service.queue.depth", self._depth)
            self.telemetry.gauge(
                f"service.queue.{key[0]}.{key[1]}.depth", len(shard.fifo)
            )
            return head
        return None

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view for reports: global + per-shard depths."""
        return {
            "depth": self._depth,
            "shards": {
                f"{t}/{b}": d for (t, b), d in sorted(self.depths().items())
            },
        }
