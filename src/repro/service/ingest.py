"""The asyncio ingestion service in front of the decode farm.

``IngestionService`` is the production-shaped surface the ROADMAP asks
for: segments arrive as a stream (here: the fleet load generator; in a
deployment: gateway backhauls), pass deterministic admission control
(:mod:`.admission`), land in per-tenant/band priority queues
(:mod:`.queues`), and are drained by a pool of asyncio workers that
feed the :class:`~repro.cloud.parallel.ParallelCloudService` decode
farm one segment at a time (``submit_future``), so each segment's
ingest-to-decode latency is observable. A queue-depth-driven
:class:`~repro.service.autoscale.AutoscalerModel` grows and shrinks the
worker-task pool between bounds.

Two planes, two clocks — the determinism contract:

* The **control plane** (admission, quotas, priority order) runs on the
  *modeled* arrival-time axis. Its decisions are a pure function of the
  generated workload, so two same-seed runs produce identical
  accepted/rejected/quarantined/decoded ledgers no matter what the
  hardware does.
* The **execution plane** (worker tasks, the decode pool, latency
  measurement) runs on the host clock and is where throughput and tail
  latency come from. Decode results are absorbed into stats/telemetry
  in segment-sequence order after the drain, exactly like the farm's
  own ``drain()``, so aggregates are reproducible too.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any, Protocol

from concurrent.futures import Future

from ..errors import ConfigurationError
from ..telemetry import NULL, Telemetry
from ..types import DecodeResult, Segment
from .admission import AdmissionController
from .autoscale import AutoscalerModel
from .queues import QueuedSegment, ShardedQueues

__all__ = [
    "DecodeFarm",
    "ServiceLedger",
    "CompletedSegment",
    "QuarantinedEntry",
    "ServiceReport",
    "IngestionService",
]


class DecodeFarm(Protocol):
    """What the service needs from a decode backend.

    :class:`~repro.cloud.parallel.ParallelCloudService` satisfies this;
    tests substitute lightweight fakes.
    """

    def submit_future(self, payload: Segment) -> Future: ...

    def absorb_result(self, result: Any) -> list[DecodeResult]: ...


@dataclass
class ServiceLedger:
    """Deterministic outcome counts — the reproducibility contract.

    Two same-seed runs must produce equal ledgers (compare with ``==``
    or :meth:`as_dict`); wall-clock quantities live in
    :class:`ServiceReport`, never here.
    """

    offered: int = 0
    accepted: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    by_tenant: dict[str, dict[str, int]] = field(default_factory=dict)
    quarantined: int = 0
    decoded_segments: int = 0
    decoded_frames: int = 0
    ok_frames: int = 0

    def record_rejection(self, tenant: str, reason: str) -> None:
        """Count one shed arrival under its reason and tenant."""
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        per = self.by_tenant.setdefault(tenant, {})
        key = f"rejected.{reason}"
        per[key] = per.get(key, 0) + 1

    def record_accept(self, tenant: str) -> None:
        """Count one admitted arrival."""
        self.accepted += 1
        per = self.by_tenant.setdefault(tenant, {})
        per["accepted"] = per.get("accepted", 0) + 1

    def as_dict(self) -> dict[str, Any]:
        """Sorted plain-dict view (stable for JSON and assertions)."""
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": dict(sorted(self.rejected.items())),
            "by_tenant": {
                t: dict(sorted(v.items()))
                for t, v in sorted(self.by_tenant.items())
            },
            "quarantined": self.quarantined,
            "decoded_segments": self.decoded_segments,
            "decoded_frames": self.decoded_frames,
            "ok_frames": self.ok_frames,
        }


@dataclass(frozen=True)
class CompletedSegment:
    """One segment's trip through the service (execution-plane view)."""

    seq: int
    tenant: str
    band: str
    technology: str
    score: float
    frames: int
    ok_frames: int
    latency_s: float


@dataclass(frozen=True)
class QuarantinedEntry:
    """One segment the service gave up on after retries."""

    seq: int
    tenant: str
    reason: str
    attempts: int


@dataclass
class ServiceReport:
    """Everything one :meth:`IngestionService.run` produced."""

    ledger: ServiceLedger
    completed: list[CompletedSegment]
    quarantined: list[QuarantinedEntry]
    elapsed_s: float
    peak_workers: int
    scale_events: int

    @property
    def latencies_s(self) -> list[float]:
        """Ingest-to-decode latency of every completed segment."""
        return [c.latency_s for c in self.completed]

    def latency_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of the completion latencies (0 when
        nothing completed)."""
        lat = sorted(self.latencies_s)
        if not lat:
            return 0.0
        rank = min(len(lat) - 1, max(0, int(round(pct / 100 * len(lat))) - 1))
        return lat[rank]

    @property
    def sustained_rate_hz(self) -> float:
        """Decoded segments per wall-clock second over the whole run."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.ledger.decoded_segments / self.elapsed_s


class IngestionService:
    """Multi-tenant asyncio ingestion tier over a decode farm.

    Args:
        farm: Decode backend (``submit_future``/``absorb_result``).
        admission: Deterministic admission gate; ``None`` admits
            everything (the bench's admission-off arm).
        autoscaler: Worker-pool control law (defaults to a fresh model
            with its default policy). Pin ``min_workers ==
            max_workers`` for a fixed-size pool.
        telemetry: Metrics sink (``service.*`` namespace).
        max_retries: Decode-exception retries before quarantine.
        tick_s: Autoscaler sampling period and idle-worker poll
            timeout, in wall seconds.
        pace: Replay speed for the modeled arrival axis — ``None``
            (default) offers the whole stream as fast as possible
            (saturation test); ``x`` replays modeled time at ``x``
            times real time.
    """

    def __init__(
        self,
        farm: DecodeFarm,
        admission: AdmissionController | None = None,
        autoscaler: AutoscalerModel | None = None,
        telemetry: Telemetry = NULL,
        max_retries: int = 1,
        tick_s: float = 0.01,
        pace: float | None = None,
    ) -> None:
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if tick_s <= 0:
            raise ConfigurationError("tick_s must be positive")
        if pace is not None and pace <= 0:
            raise ConfigurationError("pace must be positive (or None)")
        self.farm = farm
        self.admission = admission
        self.autoscaler = (
            autoscaler if autoscaler is not None else AutoscalerModel()
        )
        self.telemetry = telemetry
        self.max_retries = int(max_retries)
        self.tick_s = float(tick_s)
        self.pace = pace
        self.queues = ShardedQueues(telemetry=telemetry)

    # -- public entry points ----------------------------------------------

    def run(self, arrivals: Iterable[QueuedSegment]) -> ServiceReport:
        """Synchronous wrapper: serve one workload to completion."""
        return asyncio.run(self.serve(arrivals))

    async def serve(self, arrivals: Iterable[QueuedSegment]) -> ServiceReport:
        """Ingest, schedule and decode one arrival stream; report."""
        ledger = ServiceLedger()
        raw_results: dict[int, Any] = {}
        meta: dict[int, QueuedSegment] = {}
        latencies: dict[int, float] = {}
        enqueued_wall: dict[int, float] = {}
        quarantined: list[QuarantinedEntry] = []
        self._inflight = 0
        self._producer_done = False
        self._wake = asyncio.Event()
        self._target = self.autoscaler.workers

        t0 = time.perf_counter()
        workers: dict[int, asyncio.Task] = {}
        loop = asyncio.get_running_loop()

        async def producer() -> None:
            for n, arrival in enumerate(arrivals):
                ledger.offered += 1
                self.telemetry.count("service.offered")
                if self.pace is not None:
                    due = t0 + arrival.arrival_s / self.pace
                    delay = due - time.perf_counter()
                    if delay > 0:
                        await asyncio.sleep(delay)
                if self.admission is not None:
                    decision = self.admission.admit(
                        arrival.tenant, arrival.arrival_s, arrival.score
                    )
                    if not decision.accepted:
                        ledger.record_rejection(
                            arrival.tenant, decision.reason
                        )
                        continue
                ledger.record_accept(arrival.tenant)
                meta[arrival.seq] = arrival
                enqueued_wall[arrival.seq] = time.perf_counter()
                self.queues.push(arrival)
                self._wake.set()
                if n % 128 == 127:
                    await asyncio.sleep(0)  # let workers breathe
            self._producer_done = True
            self._wake.set()

        async def worker(wid: int) -> None:
            while True:
                if wid >= self._target:
                    return  # retired by the autoscaler
                item = self.queues.pop()
                if item is None:
                    if self._producer_done and self._inflight == 0:
                        return
                    self._wake.clear()
                    try:
                        await asyncio.wait_for(
                            self._wake.wait(), timeout=self.tick_s
                        )
                    except TimeoutError:
                        pass
                    continue
                self._inflight += 1
                try:
                    await decode_one(item)
                finally:
                    self._inflight -= 1
                    self._wake.set()

        async def decode_one(item: QueuedSegment) -> None:
            attempts = 0
            while True:
                try:
                    with self.telemetry.span("service.decode_wait"):
                        raw = await asyncio.wrap_future(
                            self.farm.submit_future(item.segment)
                        )
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    attempts += 1
                    if attempts <= self.max_retries:
                        self.telemetry.count("service.retried")
                        continue
                    quarantined.append(
                        QuarantinedEntry(
                            seq=item.seq,
                            tenant=item.tenant,
                            reason=f"decode failure: {exc!r}",
                            attempts=attempts,
                        )
                    )
                    ledger.quarantined += 1
                    self.telemetry.count("service.quarantined")
                    return
                raw_results[item.seq] = raw
                latencies[item.seq] = (
                    time.perf_counter() - enqueued_wall[item.seq]
                )
                self.telemetry.count("service.decoded_segments")
                return

        async def autoscale_loop() -> None:
            while True:
                self._target = self.autoscaler.observe(len(self.queues))
                self.telemetry.gauge("service.workers", self._target)
                reconcile()
                await asyncio.sleep(self.tick_s)

        def reconcile() -> None:
            for wid in range(self._target):
                task = workers.get(wid)
                if task is None or task.done():
                    workers[wid] = loop.create_task(worker(wid))
            self._wake.set()

        reconcile()
        scaler = loop.create_task(autoscale_loop())
        try:
            await producer()
            # Drain: keep (re)spawning up to the current target until
            # the queues are empty and nothing is in flight.
            while len(self.queues) or self._inflight:
                reconcile()
                await asyncio.sleep(self.tick_s / 2)
        finally:
            scaler.cancel()
            self._producer_done = True
            self._wake.set()
            await asyncio.gather(*workers.values(), return_exceptions=True)
            try:
                await scaler
            except asyncio.CancelledError:
                pass
        elapsed = time.perf_counter() - t0

        # Deterministic rollup: absorb in sequence order, like drain().
        completed: list[CompletedSegment] = []
        for seq in sorted(raw_results):
            results = self.farm.absorb_result(raw_results[seq])
            item = meta[seq]
            ledger.decoded_segments += 1
            ledger.decoded_frames += len(results)
            ledger.ok_frames += sum(1 for r in results if r.ok)
            completed.append(
                CompletedSegment(
                    seq=seq,
                    tenant=item.tenant,
                    band=item.band,
                    technology=item.technology,
                    score=item.score,
                    frames=len(results),
                    ok_frames=sum(1 for r in results if r.ok),
                    latency_s=latencies[seq],
                )
            )
        self.telemetry.count("service.decoded_frames", ledger.decoded_frames)
        return ServiceReport(
            ledger=ledger,
            completed=completed,
            quarantined=sorted(quarantined, key=lambda q: q.seq),
            elapsed_s=elapsed,
            peak_workers=self.autoscaler.peak_workers,
            scale_events=self.autoscaler.scale_events,
        )
