"""Queue-depth-driven autoscaling model for the decode worker pool.

A deliberately small control law, kept as a *pure model* (observe a
depth, return a target) so it can be unit-tested deterministically and
reasoned about separately from the asyncio plumbing that applies it:

* scale **up** one worker when the backlog per active worker exceeds
  ``high_watermark`` segments;
* scale **down** one worker when it falls below ``low_watermark``;
* never outside ``[min_workers, max_workers]``;
* at most one step per ``cooldown_ticks`` observations (hysteresis —
  a bursty queue must not make the pool flap).

The asymmetric watermarks are the standard queue-control trick: the
up threshold reflects decode cost (a deep backlog means latency is
already compounding), the down threshold leaves headroom so a brief
lull does not tear down capacity the next burst will need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["AutoscalePolicy", "AutoscaleDecision", "AutoscalerModel"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Bounds and watermarks for the worker-pool control law."""

    min_workers: int = 1
    max_workers: int = 4
    high_watermark: float = 8.0
    low_watermark: float = 2.0
    cooldown_ticks: int = 2

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ConfigurationError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ConfigurationError("max_workers must be >= min_workers")
        if self.low_watermark < 0 or self.high_watermark <= self.low_watermark:
            raise ConfigurationError(
                "watermarks must satisfy 0 <= low < high"
            )
        if self.cooldown_ticks < 0:
            raise ConfigurationError("cooldown_ticks must be >= 0")


@dataclass(frozen=True)
class AutoscaleDecision:
    """One observation's outcome (kept for the scaling trace)."""

    tick: int
    queue_depth: int
    workers: int  # target after this observation
    action: str  # "up" | "down" | "hold"


@dataclass
class AutoscalerModel:
    """Deterministic worker-target controller.

    Feed it queue-depth observations (one per tick); read
    :attr:`workers` as the current target. The decision trace in
    :attr:`decisions` records every scale event for reports and tests.
    """

    policy: AutoscalePolicy = field(default_factory=AutoscalePolicy)
    workers: int = 0  # 0 -> start at policy.min_workers
    decisions: list[AutoscaleDecision] = field(default_factory=list)
    _cooldown: int = 0
    _tick: int = 0

    def __post_init__(self) -> None:
        if self.workers == 0:
            self.workers = self.policy.min_workers
        if not (
            self.policy.min_workers <= self.workers <= self.policy.max_workers
        ):
            raise ConfigurationError("workers outside the policy bounds")

    def observe(self, queue_depth: int) -> int:
        """Ingest one depth sample; returns the (new) worker target."""
        action = "hold"
        if self._cooldown > 0:
            self._cooldown -= 1
        else:
            per_worker = queue_depth / self.workers
            if (
                per_worker > self.policy.high_watermark
                and self.workers < self.policy.max_workers
            ):
                self.workers += 1
                action = "up"
                self._cooldown = self.policy.cooldown_ticks
            elif (
                per_worker < self.policy.low_watermark
                and self.workers > self.policy.min_workers
            ):
                self.workers -= 1
                action = "down"
                self._cooldown = self.policy.cooldown_ticks
        if action != "hold" or not self.decisions:
            self.decisions.append(
                AutoscaleDecision(
                    tick=self._tick,
                    queue_depth=queue_depth,
                    workers=self.workers,
                    action=action,
                )
            )
        self._tick += 1
        return self.workers

    @property
    def peak_workers(self) -> int:
        """Largest target ever reached (min_workers before any scale)."""
        if not self.decisions:
            return self.workers
        return max(d.workers for d in self.decisions)

    @property
    def scale_events(self) -> int:
        """How many up/down steps the model has taken."""
        return sum(1 for d in self.decisions if d.action != "hold")
