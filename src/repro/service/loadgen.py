"""Fleet-scale load generator for the ingestion service.

Turns a list of :class:`TenantWorkload` specs — tenant, band, and a
:class:`~repro.net.traffic.DutyCycleProfile` population — into a sorted
stream of :class:`~repro.service.queues.QueuedSegment` arrivals:

* The **arrival process** is the superposition of every population's
  Poisson process, drawn as one merged stream at the summed aggregate
  rate (:func:`~repro.net.traffic.fleet_arrival_times`) and attributed
  to workloads by their rate share. Cost is O(arrivals), so a 10^6
  device fleet generates as fast as a ten-device one: only the *rate*
  remembers the population.
* The **I/Q payloads** come from a small pre-rendered pool per workload
  (rendering is the expensive part; decode cost per segment is what the
  service benchmark measures, so a pool of distinct-payload frames per
  technology keeps the workload honest without re-rendering per
  arrival). Each arrival wraps the pooled samples in its own
  :class:`~repro.types.Segment` carrying a fresh
  :class:`~repro.types.DetectionEvent` with that arrival's drawn score
  — the same zero-copy trick the shared-memory farm uses.
* The **scores** model the gateway detector's confidence spread
  (1 + a gamma tail), giving the priority scheduler something real to
  sort on.

Everything is driven by one seeded RNG: same seed, same workload list,
same arrivals — the determinism contract the service ledger test pins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..net.scene import SceneBuilder
from ..net.traffic import DutyCycleProfile, fleet_arrival_times
from ..phy import create_modem
from ..phy.base import Modem
from ..types import DetectionEvent, Segment
from .queues import QueuedSegment

__all__ = ["TenantWorkload", "generate_workload", "offered_rate_hz"]


@dataclass(frozen=True)
class TenantWorkload:
    """One tenant's device population on one band.

    Attributes:
        tenant: Tenant identifier (the admission/quota key).
        band: Band / queue-shard key (e.g. ``"eu868"``).
        profile: Population + duty-cycle traffic model.
        snr_db: In-band SNR the pooled fixture frames are rendered at.
    """

    tenant: str
    band: str
    profile: DutyCycleProfile
    snr_db: float = 15.0


def offered_rate_hz(
    workloads: list[TenantWorkload], modems: dict[str, Modem]
) -> float:
    """Total offered segment rate (per second) across every workload."""
    total = 0.0
    for w in workloads:
        modem = modems[w.profile.technology]
        airtime = modem.frame_airtime(w.profile.payload_len)
        total += w.profile.aggregate_rate_hz(airtime)
    return total


def generate_workload(
    workloads: list[TenantWorkload],
    sample_rate_hz: float,
    duration_s: float,
    rng: np.random.Generator,
    max_requests: int = 2000,
    pool_size: int = 2,
) -> list[QueuedSegment]:
    """Draw one sorted arrival stream over every workload's population.

    Args:
        workloads: The tenant populations (at least one).
        sample_rate_hz: Capture rate the fixture segments are rendered
            at.
        duration_s: Modeled horizon; arrivals beyond it are not drawn.
        rng: Seeded random source (arrivals, attribution, payloads,
            scores).
        max_requests: Event budget — at fleet scale the offered load
            vastly exceeds what any benchmark run can decode, so the
            stream is truncated here (the modeled horizon shrinks
            accordingly; admission quotas see the same early-time
            density either way).
        pool_size: Pre-rendered fixture frames per workload.

    Returns:
        Arrivals sorted by modeled time, ``seq`` numbered in that
        order.

    Raises:
        ConfigurationError: on an empty workload list or an unknown
            technology name.
    """
    if not workloads:
        raise ConfigurationError("at least one workload is required")
    modems: dict[str, Modem] = {}
    for w in workloads:
        if w.profile.technology not in modems:
            modems[w.profile.technology] = create_modem(w.profile.technology)

    rates = []
    for w in workloads:
        modem = modems[w.profile.technology]
        airtime = modem.frame_airtime(w.profile.payload_len)
        rates.append(w.profile.aggregate_rate_hz(airtime))
    total_rate = float(sum(rates))

    times = fleet_arrival_times(
        total_rate, duration_s, rng, max_events=max_requests
    )
    # Attribute each merged arrival to a workload by rate share (the
    # standard thinning of a superposed Poisson process).
    shares = np.asarray(rates) / total_rate
    picks = rng.choice(len(workloads), size=len(times), p=shares)
    # Detector-confidence model: most detections sit just above
    # threshold, a long tail is very confident.
    scores = 1.0 + rng.gamma(shape=2.0, scale=1.0, size=len(times))

    pools = [
        _render_pool(w, modems[w.profile.technology], sample_rate_hz,
                     pool_size, rng)
        for w in workloads
    ]
    pool_picks = rng.integers(0, pool_size, size=len(times))

    arrivals: list[QueuedSegment] = []
    for seq, (t, pick, score) in enumerate(
        zip(times.tolist(), picks.tolist(), scores.tolist(), strict=True)
    ):
        w = workloads[pick]
        samples = pools[pick][int(pool_picks[seq])]
        arrivals.append(
            QueuedSegment(
                seq=seq,
                tenant=w.tenant,
                band=w.band,
                technology=w.profile.technology,
                score=float(score),
                arrival_s=float(t),
                segment=Segment(
                    start=int(t * sample_rate_hz),
                    samples=samples,
                    sample_rate=sample_rate_hz,
                    detections=[
                        DetectionEvent(
                            index=0,
                            score=float(score),
                            detector="fleet-loadgen",
                            technology=w.profile.technology,
                        )
                    ],
                ),
            )
        )
    return arrivals


def _render_pool(
    workload: TenantWorkload,
    modem: Modem,
    sample_rate_hz: float,
    pool_size: int,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Render ``pool_size`` distinct fixture frames for one workload."""
    airtime = modem.frame_airtime(workload.profile.payload_len)
    # 5 ms of noise either side: the cloud classifier needs real noise
    # context around the frame; tighter pads starve it and frames that
    # decode fine in situ come back empty.
    pad_s = 5e-3
    duration = airtime + 2 * pad_s
    pool = []
    for _ in range(pool_size):
        payload = rng.integers(
            0, 256, workload.profile.payload_len, dtype=np.uint8
        ).tobytes()
        builder = SceneBuilder(sample_rate_hz, duration)
        builder.add_packet(
            modem,
            payload,
            start=int(pad_s * sample_rate_hz),
            snr_db=workload.snr_db,
            rng=rng,
        )
        capture, _truth = builder.render(rng)
        pool.append(capture)
    return pool
