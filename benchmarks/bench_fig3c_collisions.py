"""F3c — regenerate Figure 3(c): collision throughput, SIC vs GalioT.

Shape checks:
* GalioT's kill-filter decoding beats the classic SIC strawman by a
  multi-x factor in every SNR bucket (paper: x5.3 low, x8.2 high);
* the decoder actually used kill filters (not just reordering).
"""

from repro.experiments import format_table, run_fig3c


def test_fig3c_collision_throughput(once):
    result = once(run_fig3c, episodes_per_bucket=10)
    print()
    print(format_table(result.table()))
    for bucket in result.buckets:
        sic = result.throughput_bps[bucket]["sic"]
        galiot = result.throughput_bps[bucket]["galiot"]
        assert galiot > sic, bucket  # GalioT wins every bucket
    # Pooled gain is a multi-x factor (paper reports x7.46; the shape
    # contract is "multiple-x", not the absolute).
    assert result.average_gain() >= 1.5
    # Kill filters contributed, beyond mere decode-order fallback.
    kills = sum(v for k, v in result.methods.items() if k.startswith("kill-"))
    assert kills >= 1
