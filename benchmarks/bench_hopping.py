"""Ablation — frequency-hopping front ends (Sec. 6 design space)."""

from repro.experiments import format_table, run_hopping


def test_hopping_scheduler(once):
    table = once(run_hopping, n_packets=24, duration_s=3.0)
    print()
    print(format_table(table))
    rows = {row[0]: row for row in table.rows}
    rr = rows["round-robin"]
    learned = rows["learned"]
    # The learner concentrates dwells on the busy channels and catches
    # at least as many packets as blind scanning.
    assert learned[1] >= rr[1]
    assert learned[3] >= rr[3]
