#!/usr/bin/env python
"""Resilience overhead and chaos survival: faults off vs 10 % outages.

Three end-to-end gateway-to-cloud runs over the same scene:

* **off** — plain :class:`~repro.gateway.backhaul.BackhaulLink`, the
  pre-resilience pipeline.
* **off (wrapped)** — :class:`~repro.gateway.resilience.
  ResilientBackhaul` with no fault plan: measures the wrapper's
  off-mode overhead, which the resilience PR promises stays under ~2 %
  (recorded, machine-dependent).
* **outage-10** — the same wrapper under a
  :func:`~repro.faults.periodic_outages` plan with a 10 % duty cycle:
  measures end-to-end frame *survival* (fraction of the fault-free
  frames still decoded) plus spill/eviction accounting.

Unlike the pytest-benchmark files next to it, this is a standalone
script: it emits a machine-readable ``BENCH_resilience.json`` so
successive PRs accumulate a trajectory (see the README note on
``BENCH_*.json`` files).

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py          # full
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cloud import CloudService  # noqa: E402
from repro.faults import FaultPlan, periodic_outages  # noqa: E402
from repro.gateway import (  # noqa: E402
    BackhaulLink,
    GalioTGateway,
    ResilientBackhaul,
    StreamingGateway,
    iter_chunks,
)
from repro.net.scene import SceneBuilder  # noqa: E402
from repro.phy import create_modem  # noqa: E402
from repro.telemetry import Telemetry  # noqa: E402

FS = 1e6
CHUNK = 65_536


def build_scene(n_packets: int, duration_s: float, rng):
    """Evenly spaced xbee/zwave packets over ``duration_s`` seconds."""
    modems = [create_modem("xbee"), create_modem("zwave")]
    builder = SceneBuilder(FS, duration_s)
    spacing = int((duration_s * FS - 60_000) / max(n_packets, 1))
    for i in range(n_packets):
        builder.add_packet(
            modems[i % 2], b"pkt%03d" % i, 30_000 + i * spacing, 15, rng
        )
    capture, truth = builder.render(rng)
    noise = (rng.normal(size=60_000) + 1j * rng.normal(size=60_000)) * np.sqrt(
        truth.noise_power / 2
    )
    return modems, capture, noise


def run_pipeline(modems, capture, noise, backhaul):
    """Stream the capture, decode everything shipped; time the whole path."""
    telemetry = Telemetry()
    gateway = GalioTGateway(
        modems, FS, use_edge=False, backhaul=backhaul, telemetry=telemetry
    )
    gateway.detector.calibrate(noise)
    cloud = CloudService(modems, FS)
    frames = set()
    t0 = time.perf_counter()
    stream = StreamingGateway(gateway)
    report = stream.process_stream(iter_chunks(capture, CHUNK))
    for segment in report.shipped:
        frames |= {
            (r.technology, r.payload)
            for r in cloud.process_segment(segment)
            if r.ok
        }
    elapsed = time.perf_counter() - t0
    return frames, report, telemetry, elapsed


def timed_runs(repeats, modems, capture, noise, make_backhaul):
    """Best-of-N wall time (fresh backhaul per run; frames from the last)."""
    best = float("inf")
    for _ in range(repeats):
        frames, report, telemetry, elapsed = run_pipeline(
            modems, capture, noise, make_backhaul()
        )
        best = min(best, elapsed)
    return frames, report, telemetry, best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny scene, one timing pass: CI plumbing check",
    )
    parser.add_argument("--packets", type=int, default=None)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per configuration (best-of)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_resilience.json")
    )
    args = parser.parse_args(argv)
    n_packets = args.packets or (6 if args.smoke else 24)
    duration_s = args.duration or (0.35 if args.smoke else 1.2)
    repeats = args.repeats or (1 if args.smoke else 3)

    rng = np.random.default_rng(0xFA117)
    modems, capture, noise = build_scene(n_packets, duration_s, rng)
    print(
        f"fixture: {n_packets} packets / {duration_s:.2f} s capture, "
        f"cpu_count={os.cpu_count()}"
    )

    link = lambda: BackhaulLink(rate_bps=20e6, max_queue_s=0.5)  # noqa: E731

    base_frames, base_report, _, t_off = timed_runs(
        repeats, modems, capture, noise, link
    )
    rate_off = len(base_frames) / t_off if t_off else 0.0
    print(
        f"off          : {t_off:6.2f} s  {len(base_frames)} frames "
        f"({rate_off:.2f} frames/s)"
    )

    wrapped_frames, wrapped_report, _, t_wrapped = timed_runs(
        repeats, modems, capture, noise, lambda: ResilientBackhaul(link())
    )
    overhead = (t_wrapped - t_off) / t_off if t_off else 0.0
    identical = wrapped_frames == base_frames and (
        wrapped_report.shipped_bits == base_report.shipped_bits
    )
    print(
        f"off (wrapped): {t_wrapped:6.2f} s  overhead {overhead * 100:+.2f} % "
        f"identical={identical}"
    )

    plan = FaultPlan(outages=periodic_outages(duration_s, duration_s / 4, 0.10))
    chaos_frames, chaos_report, chaos_telemetry, t_chaos = timed_runs(
        repeats,
        modems,
        capture,
        noise,
        lambda: ResilientBackhaul(link(), faults=plan, base_backoff_s=0.01),
    )
    survival = (
        len(chaos_frames & base_frames) / len(base_frames)
        if base_frames
        else 1.0
    )
    counters = chaos_telemetry.counters
    print(
        f"outage-10%   : {t_chaos:6.2f} s  survival {survival * 100:.1f} % "
        f"(spilled={counters.get('backhaul.spilled', 0)}, "
        f"recovered={counters.get('backhaul.recovered', 0)}, "
        f"evicted={counters.get('backhaul.evicted', 0)}, "
        f"dropped={chaos_report.dropped_segments})"
    )

    payload = {
        "bench": "resilience",
        "schema": 1,
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "n_packets": n_packets,
        "duration_s": duration_s,
        "off": {
            "seconds": t_off,
            "frames": len(base_frames),
            "frames_per_sec": rate_off,
        },
        "off_wrapped": {
            "seconds": t_wrapped,
            "overhead_fraction": overhead,
            "identical_to_off": identical,
        },
        "outage10": {
            "seconds": t_chaos,
            "frames": len(chaos_frames),
            "survival": survival,
            "outage_duty_cycle": plan.outage_duty_cycle(duration_s),
            "spilled": counters.get("backhaul.spilled", 0),
            "recovered": counters.get("backhaul.recovered", 0),
            "evicted": counters.get("backhaul.evicted", 0),
            "dropped_segments": chaos_report.dropped_segments,
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not identical:
        print("ERROR: off-mode wrapper changed the results", file=sys.stderr)
        return 1
    if survival < 0.95:
        print(
            f"ERROR: outage survival {survival:.3f} below 0.95",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
