"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the paper-vs-measured rows. Experiment bodies are expensive
Monte-Carlos, so each runs exactly once per benchmark
(``benchmark.pedantic(rounds=1, iterations=1)``) — the timing recorded
is the cost of regenerating the artifact, and the printed table is the
scientific output.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
