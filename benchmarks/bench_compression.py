"""Ablation — Sec. 6 backhaul question: compute, compress or ship?"""

from repro.experiments import format_table, run_compression


def test_backhaul_strategies(once):
    table = once(run_compression)
    print()
    print(format_table(table))
    strategies = {row[0]: row[1] for row in table.rows}
    raw = strategies["ship raw stream"]
    shipped = strategies["detect-and-ship (2x max frame)"]
    compressed = strategies["detect + requantize + zlib"]
    # Detect-and-ship must beat raw streaming on duty-cycled traffic,
    # and entropy coding must not cost anything.
    assert shipped < raw
    assert compressed <= shipped
