"""Ablation — Shannon feasibility vs measured joint decoding (Sec. 5)."""

from repro.experiments import format_table, run_boundary


def test_shannon_boundary(once):
    table = once(run_boundary, trials=3)
    print()
    print(format_table(table))
    rows = {row[0]: row for row in table.rows}
    # Below the Shannon wall the decoder must recover (almost) nothing.
    for snr, row in rows.items():
        _snr, feasible, _margin, decoded, total = row
        if feasible == "no":
            assert decoded <= total * 0.2, row
    # Comfortably above the wall, joint decoding succeeds mostly.
    top = max(rows)
    assert rows[top][1] == "yes"
    assert rows[top][3] >= rows[top][4] * 0.6
