"""Contract-layer overhead: the ``off`` fast path must stay invisible.

Runs one gateway scene end to end in every sanitize mode and times the
decorator dispatch in isolation. The printed table is the artifact; the
only assertions are semantic (identical reports across modes on clean
input), so the benchmark never flakes on machine speed.
"""

import time

import numpy as np

from repro.contracts import get_sanitize_mode, iq_contract, sanitize
from repro.gateway import GalioTGateway
from repro.net.scene import SceneBuilder
from repro.phy import create_modem

FS = 1e6


def _scene(rng):
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    builder = SceneBuilder(FS, 0.5)
    for i, (modem, start) in enumerate(
        zip(modems, (40_000, 200_000, 360_000), strict=True)
    ):
        builder.add_packet(
            modem, f"bench-{i}".encode(), start, 12, rng, snr_mode="capture"
        )
    capture, _truth = builder.render(rng)
    return modems, capture


def _time_process(gateway, capture, repeats=3):
    best = float("inf")
    report = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        report = gateway.process(capture)
        best = min(best, time.perf_counter() - t0)
    return best, report


def test_contract_overhead(once):
    rng = np.random.default_rng(0xC0FFEE)
    modems, capture = _scene(rng)
    gateway = GalioTGateway(modems, FS, use_edge=False)

    def _run():
        rows = []
        baseline = None
        reports = {}
        for mode in ("off", "warn", "raise"):
            with sanitize(mode):
                assert get_sanitize_mode().value == mode
                seconds, report = _time_process(gateway, capture)
            reports[mode] = report
            if baseline is None:
                baseline = seconds
            rows.append((mode, seconds, seconds / baseline - 1.0))
        return rows, reports

    rows, reports = once(_run)

    # Semantic invariant: on clean input the mode must not change results.
    off, warn, raise_ = (reports[m] for m in ("off", "warn", "raise"))
    assert len(off.events) == len(warn.events) == len(raise_.events)
    assert off.shipped_bits == warn.shipped_bits == raise_.shipped_bits

    # Decorator dispatch cost in isolation (the per-call 'off' tax).
    @iq_contract("iq")
    def _guarded(iq):
        return iq

    def _bare(iq):
        return iq

    buf = np.zeros(16, dtype=np.complex128)
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        _bare(buf)
    bare_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(n):
        _guarded(buf)
    guarded_s = time.perf_counter() - t0

    print("\nsanitize-mode overhead on GalioTGateway.process (best of 3):")
    for mode, seconds, rel in rows:
        print(f"  {mode:<6} {1e3 * seconds:8.2f} ms   {100 * rel:+6.2f} %")
    print(
        f"  off-mode dispatch: {1e9 * (guarded_s - bare_s) / n:6.1f} ns/call "
        f"({guarded_s / bare_s:.2f}x a bare call)"
    )
