"""Ablation — multi-gateway coherent combining (the Charm direction).

The paper's own prior work (reference [11]) recovers packets below any
single gateway's sensitivity by combining I/Q across gateways in the
cloud — a capability GalioT's ship-I/Q architecture gets for free. The
bench sweeps the gateway count at a fixed per-gateway SNR below the
single-copy decode threshold.
"""

import numpy as np

from repro.cloud.sic import try_decode
from repro.net.multigateway import (
    combine_segments,
    receive_at_gateways,
    selection_diversity,
)
from repro.phy import create_modem


def _campaign(n_gateways: int, trials: int, snr_db: float, seed: int):
    lora = create_modem("lora")
    fs = lora.sample_rate
    rng = np.random.default_rng(seed)
    single_ok = 0
    combined_ok = 0
    for t in range(trials):
        payload = bytes([t]) * 8
        copies = receive_at_gateways(lora, payload, [snr_db] * n_gateways, rng)
        if selection_diversity(copies, lora, fs) is not None:
            single_ok += 1
        combined = combine_segments(copies, lora.sync_waveform())
        frame = try_decode(lora, combined, fs)
        combined_ok += frame is not None and frame.payload == payload
    return single_ok, combined_ok


def test_combining_gain(once):
    def run():
        rows = []
        for n in (1, 2, 4):
            single, combined = _campaign(
                n_gateways=n, trials=4, snr_db=-13.0, seed=7
            )
            rows.append((n, single, combined, 4))
        return rows

    rows = once(run)
    print()
    print("gateways  best-single ok  combined ok  of")
    for n, single, combined, total in rows:
        print(f"{n:8d}  {single:14d}  {combined:11d}  {total}")
    by_n = {n: (s, c) for n, s, c, _ in rows}
    # Four combined gateways decode what singles cannot.
    assert by_n[4][1] >= 3
    assert by_n[4][1] >= by_n[1][1]
    # Combining never hurts vs one gateway.
    assert by_n[2][1] >= by_n[1][1]
