"""Ablation — raw modem encode/decode speed per technology.

Answers the engineering question behind the paper's cost argument: can
a cheap CPU run these DSP chains in (near) real time? The benchmark
reports wall-clock per modulate/demodulate of a representative frame.
"""

import numpy as np
import pytest

from repro.phy import create_modem

TECHS = ["lora", "xbee", "zwave", "ble", "sigfox", "oqpsk154"]


@pytest.mark.parametrize("tech", TECHS)
def test_modulate_speed(benchmark, tech):
    modem = create_modem(tech)
    payload = b"benchmark-payload"[: modem.max_payload]
    wave = benchmark(modem.modulate, payload)
    assert len(wave) > 0


@pytest.mark.parametrize("tech", TECHS)
def test_demodulate_speed(benchmark, tech):
    modem = create_modem(tech)
    payload = b"benchmark-payload"[: modem.max_payload]
    segment = np.concatenate(
        [np.zeros(256, complex), modem.modulate(payload), np.zeros(256, complex)]
    )
    frame = benchmark(modem.demodulate, segment)
    assert frame.crc_ok
    assert frame.payload == payload
