"""H1-H3 — regenerate the paper's headline numbers.

* H1: universal preamble detects far more packets than energy detection
  below -10 dB (paper: +50.89%).
* H2: kill-filter decoding improves throughput over SIC by a multi-x
  factor (paper: x7.46).
* H3: energy collapse below 0 dB; universal survives at the lowest band;
  per-bucket gains.
"""

from repro.experiments import format_table, run_headline


def test_headline_claims(once):
    result = once(run_headline, detection_trials=2, episodes_per_bucket=8)
    print()
    print(format_table(result.table()))
    # H1: a large detection advantage below -10 dB.
    assert result.h1_extra_detection >= 0.3
    # H2: a multi-x average throughput gain.
    assert result.h2_throughput_gain >= 1.5
    # H3 pieces.
    assert result.fig3b.ratios["energy"][3] >= 0.6     # 84% above 0 dB
    assert result.fig3b.ratios["energy"][0] <= 0.05    # 0.04% below
    assert result.fig3b.ratios["universal"][0] >= 0.3  # alive at -30 dB
