"""Ablation — detector cost vs number of registered technologies.

The Sec.-4 scalability argument: the universal preamble needs ONE
correlation per capture no matter how many technologies are registered;
the optimal bank needs one per technology.
"""

from repro.experiments import format_table, run_scaling


def test_detector_scaling(once):
    table = once(run_scaling, repeats=2)
    print()
    print(format_table(table))
    for row in table.rows:
        n, uni_corr, bank_corr, _uni_ms, _bank_ms = row
        assert uni_corr == 1
        assert bank_corr == n
    # Wall-clock: the bank's cost grows with n; universal's does not
    # grow linearly (compare largest vs smallest bank).
    first = table.rows[0]
    last = table.rows[-1]
    assert last[4] > 1.5 * first[4]          # bank time grew
    assert last[3] < 2.5 * max(first[3], 1e-3)  # universal roughly flat
