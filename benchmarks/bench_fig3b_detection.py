"""F3b — regenerate Figure 3(b): packets detected vs SNR band.

Shape checks (the reproduction contract):
* energy detection works above 0 dB and collapses below it;
* the universal preamble keeps detecting down to the -30 dB band;
* the universal preamble tracks the optimal bank with a bounded gap.
"""

from repro.experiments import format_table, run_fig3b


def test_fig3b_detection(once):
    result = once(run_fig3b, trials_per_band=3)
    print()
    print(format_table(result.table()))
    energy = result.ratios["energy"]
    universal = result.ratios["universal"]
    optimal = result.ratios["optimal"]
    # Energy detection: fine at high SNR, dead below 0 dB (paper: 84% -> 0.04%).
    assert energy[3] >= 0.6 and energy[4] >= 0.6
    assert energy[0] <= 0.05 and energy[1] <= 0.05
    # Universal maintains detection in the lowest band (paper: 62% at -30 dB).
    assert universal[0] >= 0.3
    # Universal is close to optimal at high SNR and never wildly behind.
    assert universal[4] >= optimal[4] - 0.1
    for u, o in zip(universal, optimal):
        assert u <= o + 0.15  # optimal is the upper curve
    # Monotone-ish improvement with SNR for the correlation detectors.
    assert universal[-1] >= universal[0]
