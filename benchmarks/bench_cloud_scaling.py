#!/usr/bin/env python
"""Cloud decode-farm scaling: segments/sec vs worker count.

Measures the serial :class:`~repro.cloud.pipeline.CloudService` against
:class:`~repro.cloud.parallel.ParallelCloudService` at several pool
sizes over one fixture batch of shipped segments (clean frames plus
two-technology collisions), checks that every parallel run is
result-identical to the serial run, and A/B-tests the serial path with
the resample-plan cache disabled.

Unlike the pytest-benchmark files next to it, this is a standalone
script: it emits a machine-readable ``BENCH_cloud_scaling.json`` so
successive PRs accumulate a throughput trajectory (see the README note
on ``BENCH_*.json`` files).

Honesty note: the recorded speedup is whatever this machine produced —
``cpu_count`` is in the JSON, and on a single-core runner a process pool
cannot beat serial. Run on a multi-core host for the scaling headline.

Usage::

    PYTHONPATH=src python benchmarks/bench_cloud_scaling.py          # full
    PYTHONPATH=src python benchmarks/bench_cloud_scaling.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cloud import CloudService, ParallelCloudService  # noqa: E402
from repro.dsp.backend import set_backend  # noqa: E402
from repro.dsp.fastcorr import set_fastcorr  # noqa: E402
from repro.dsp.resample import (  # noqa: E402
    clear_resample_plan_cache,
    resample_plan_builds,
    resample_plan_cache_info,
    reset_resample_plan_builds,
    set_resample_plan_cache,
)
from repro.net.scene import SceneBuilder  # noqa: E402
from repro.net.traffic import collision_scene  # noqa: E402
from repro.phy import create_modem  # noqa: E402
from repro.telemetry import Telemetry  # noqa: E402
from repro.types import Segment  # noqa: E402

FS = 1e6


def build_segments(
    n_segments: int, payload_len: int, rng: np.random.Generator
) -> tuple[list, list[Segment]]:
    """A fixture batch: alternating clean frames and 2-deep collisions.

    The modem set includes sigfox (16 kHz native) alongside the paper's
    trio (1 MHz native), so every classify pass exercises the cross-rate
    resampling the plan cache exists for.
    """
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave", "sigfox")]
    by = {m.name: m for m in modems}
    trio = [by["lora"], by["xbee"], by["zwave"]]
    segments: list[Segment] = []
    for i in range(n_segments):
        if i % 2 == 0:
            solo = trio[(i // 2) % len(trio)]
            builder = SceneBuilder(FS, 0.05)
            builder.add_packet(
                solo, f"seg-{i}".encode()[:payload_len], 3000, 15, rng
            )
            capture, _ = builder.render(rng)
        else:
            pair = [trio[i % len(trio)], trio[(i + 1) % len(trio)]]
            capture, _ = collision_scene(
                pair, [12, 12], FS, rng, payload_len=payload_len
            )
        segments.append(
            Segment(start=i * 100_000, samples=capture, sample_rate=FS)
        )
    return modems, segments


def run_serial(modems: list, segments: list[Segment]) -> tuple[list, object, float]:
    service = CloudService(modems, FS, telemetry=Telemetry())
    t0 = time.perf_counter()
    results = [r for s in segments for r in service.process_segment(s)]
    return results, service.stats, time.perf_counter() - t0


def run_parallel(
    modems: list, segments: list[Segment], workers: int, executor: str
) -> tuple[list, object, float]:
    warmup = Segment(
        start=0,
        samples=np.zeros(4096, dtype=complex) + 1e-6,
        sample_rate=FS,
    )
    with ParallelCloudService(
        modems, FS, workers=workers, telemetry=Telemetry(), executor=executor
    ) as farm:
        # Touch every worker once so pool spin-up and module import cost
        # is not billed to the measured batch.
        for _ in range(workers):
            farm.submit(warmup)
        farm.drain()
        farm.stats = type(farm.stats)()
        t0 = time.perf_counter()
        results = farm.process_segments(segments)
        elapsed = time.perf_counter() - t0
        stats = farm.stats
    return results, stats, elapsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny scene + 2 workers: CI plumbing check, not a measurement",
    )
    parser.add_argument(
        "--workers", type=int, nargs="*", default=None,
        help="pool sizes to sweep (default: 1 2 4, smoke: 1 2)",
    )
    parser.add_argument(
        "--segments", type=int, default=None,
        help="fixture segments (default: 8, smoke: 2)",
    )
    parser.add_argument(
        "--executor", choices=["process", "thread"], default="process",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_cloud_scaling.json"),
    )
    args = parser.parse_args(argv)
    n_segments = args.segments or (2 if args.smoke else 8)
    worker_counts = args.workers or ([1, 2] if args.smoke else [1, 2, 4])
    payload_len = 6 if args.smoke else 10

    rng = np.random.default_rng(0xC0FFEE)
    modems, segments = build_segments(n_segments, payload_len, rng)
    cpu_count = os.cpu_count() or 1
    underprovisioned = cpu_count < max(worker_counts)
    print(
        f"fixture: {n_segments} segments, {len(modems)} technologies, "
        f"cpu_count={cpu_count}"
    )
    if underprovisioned:
        print(
            f"WARNING: cpu_count={cpu_count} < max workers "
            f"{max(worker_counts)} — parallel 'speedups' below are "
            "scheduling noise, not scaling; rerun on a bigger box "
            "for the headline numbers",
            file=sys.stderr,
        )

    # Serial reference (plan cache on — the shipping configuration).
    clear_resample_plan_cache()
    ref_results, ref_stats, _warm = run_serial(modems, segments)
    reset_resample_plan_builds()
    ref_results2, _stats2, t_serial = run_serial(modems, segments)
    serial_plan_builds = resample_plan_builds()
    assert ref_results2 == ref_results, "serial decode is not deterministic"
    cache_info = resample_plan_cache_info()
    serial_rate = n_segments / t_serial
    print(f"serial           : {t_serial:7.2f} s  {serial_rate:6.3f} seg/s "
          f"(plan cache: {cache_info.hits} hits / {cache_info.misses} misses)")

    # Serial with the vectorized PHY kernels off (the pre-backend hot
    # path). Like the engine leg below, decode results must match — the
    # backend is a performance lever, never a behaviour change.
    set_backend("off")
    try:
        bk_results, _bk_stats, t_backend_off = run_serial(modems, segments)
    finally:
        set_backend("numpy")
    backend_equivalent = bk_results == ref_results
    backend_speedup = t_backend_off / t_serial
    print(f"serial (bknd off): {t_backend_off:7.2f} s  "
          f"{n_segments / t_backend_off:6.3f} seg/s "
          f"-> backend speedup {backend_speedup:.3f}x, "
          f"identical={backend_equivalent}")

    # Serial with the shared-FFT engine off (the pre-engine hot path).
    # Decode results must be equivalent — the engine is a performance
    # lever, never a behaviour change — and this assertion is what the
    # CI smoke job runs under GALIOT_SANITIZE=raise.
    set_fastcorr(False)
    try:
        eng_results, _eng_stats, t_engine_off = run_serial(modems, segments)
    finally:
        set_fastcorr(True)
    engine_equivalent = eng_results == ref_results
    fastcorr_speedup = t_engine_off / t_serial
    print(f"serial (eng. off): {t_engine_off:7.2f} s  "
          f"{n_segments / t_engine_off:6.3f} seg/s "
          f"-> fastcorr speedup {fastcorr_speedup:.3f}x, "
          f"identical={engine_equivalent}")

    # Serial with the plan cache bypassed (the pre-cache hot path).
    # Expect ~1.0x here, and that is honest, not a warming accident:
    # since the per-buffer NativeRateCache collapsed per-call resampling
    # (PR 6), a decode pass re-derives only a handful of plans, so the
    # plan cache saves milliseconds per batch. The build counters below
    # quantify exactly how much work the cache dodges.
    set_resample_plan_cache(False)
    reset_resample_plan_builds()
    try:
        nc_results, _nc_stats, t_nocache = run_serial(modems, segments)
    finally:
        set_resample_plan_cache(True)
    no_cache_plan_builds = resample_plan_builds()
    plan_cache_speedup = t_nocache / t_serial
    cache_equivalent = nc_results == ref_results
    print(f"serial (no cache): {t_nocache:7.2f} s  {n_segments / t_nocache:6.3f} seg/s "
          f"-> plan-cache speedup {plan_cache_speedup:.3f}x, "
          f"identical={cache_equivalent} "
          f"(plan builds: {no_cache_plan_builds} uncached "
          f"vs {serial_plan_builds} cached)")

    parallel_rows = []
    equivalence_ok = cache_equivalent and engine_equivalent and backend_equivalent
    for workers in worker_counts:
        results, stats, elapsed = run_parallel(
            modems, segments, workers, args.executor
        )
        identical = results == ref_results and stats == ref_stats
        equivalence_ok = equivalence_ok and identical
        rate = n_segments / elapsed
        parallel_rows.append(
            {
                "workers": workers,
                "executor": args.executor,
                "seconds": elapsed,
                "segments_per_sec": rate,
                "speedup_vs_serial": rate / serial_rate,
                "identical_to_serial": identical,
            }
        )
        print(
            f"parallel w={workers:<2d}    : {elapsed:7.2f} s  {rate:6.3f} seg/s "
            f"({rate / serial_rate:.2f}x serial, identical={identical})"
        )

    payload = {
        "bench": "cloud_scaling",
        "schema": 3,
        "smoke": bool(args.smoke),
        "cpu_count": cpu_count,
        "underprovisioned": underprovisioned,
        "n_segments": n_segments,
        "technologies": [m.name for m in modems],
        "serial": {"seconds": t_serial, "segments_per_sec": serial_rate},
        "serial_engine_off": {
            "seconds": t_engine_off,
            "segments_per_sec": n_segments / t_engine_off,
        },
        "fastcorr_speedup": fastcorr_speedup,
        "serial_backend_off": {
            "seconds": t_backend_off,
            "segments_per_sec": n_segments / t_backend_off,
        },
        "backend_speedup": backend_speedup,
        "serial_no_plan_cache": {
            "seconds": t_nocache,
            "segments_per_sec": n_segments / t_nocache,
        },
        "plan_cache_speedup": plan_cache_speedup,
        "plan_builds": {
            "cached_leg": serial_plan_builds,
            "uncached_leg": no_cache_plan_builds,
        },
        "plan_cache_note": (
            "plan_cache_speedup ~ 1.0 is expected: the per-buffer "
            "NativeRateCache already collapses per-call resampling, so "
            "a decode pass re-derives only plan_builds.uncached_leg "
            "plans (~ms of firwin work); the plan cache is retained for "
            "code paths that bypass NativeRateCache, not for this one"
        ),
        "parallel": parallel_rows,
        "engine_equivalence_ok": engine_equivalent,
        "backend_equivalence_ok": backend_equivalent,
        "equivalence_ok": equivalence_ok,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not engine_equivalent:
        print(
            "ERROR: engine-on/off decode results diverged", file=sys.stderr
        )
        return 1
    if not backend_equivalent:
        print(
            "ERROR: backend-on/off decode results diverged", file=sys.stderr
        )
        return 1
    if not equivalence_ok:
        print("ERROR: parallel/serial results diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
