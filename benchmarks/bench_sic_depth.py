"""Ablation — SIC cancellation depth vs transmitter crystal offset.

This is the mechanism behind the Figure 3(c) gap: reconstruction-based
cancellation collapses with ppm-scale CFO while the kill filters are
estimation-free.
"""

from repro.experiments import format_table, run_sic_depth


def test_sic_cancellation_depth(once):
    table = once(run_sic_depth)
    print()
    print(format_table(table))
    depths = {row[0]: row[2] for row in table.rows}
    assert depths[0.0] > 25.0          # ideal SIC is deep
    assert depths[2.0] < depths[0.0] - 10.0  # ppm CFO wrecks it
