"""Ablation — Sec. 5 kill-filter design: suppression vs collateral."""

from repro.experiments import format_table, run_kill_filters


def test_kill_filter_suppression(once):
    table = once(run_kill_filters)
    print()
    print(format_table(table))
    for row in table.rows:
        name, target, bystander, suppressed_db, lost_db, decodes = row
        # Each filter removes most of its target's energy...
        assert suppressed_db > 7.0, row
        # ...while the bystander keeps most of its own.
        assert lost_db < suppressed_db - 3.0, row
    # The functional outcome: at high SNR the bystander decodes after
    # the filter in every pairing.
    assert all(row[5] for row in table.rows)
