"""Parameter-sweep ablations: ROC, codec depth, collision overlap."""

from repro.experiments import (
    format_table,
    run_compression_depth,
    run_overlap,
    run_roc,
)


def test_detection_roc(once):
    table = once(run_roc, trials=2)
    print()
    print(format_table(table))
    rows = {row[0]: row for row in table.rows}
    loosest = rows[min(rows)]
    strictest = rows[max(rows)]
    # Lower k detects at least as much but pays in false alarms;
    # the strict end is (near) false-alarm free.
    assert loosest[1] >= strictest[1]
    assert strictest[3] <= loosest[3]
    assert strictest[3] <= 1


def test_compression_depth(once):
    table = once(run_compression_depth, trials=2)
    print()
    print(format_table(table))
    rows = {row[0]: row for row in table.rows}
    # 8-bit and 5-bit decode everything; bits shrink monotonically.
    assert rows[8][3] == rows[8][4]
    assert rows[5][3] >= rows[5][4] - 1
    assert rows[4][1] < rows[8][1]
    # At some depth the decode success finally degrades vs 8-bit.
    assert rows[2][3] <= rows[8][3]


def test_collision_overlap(once):
    table = once(run_overlap, trials=3)
    print()
    print(format_table(table))
    by_overlap = {row[0]: row for row in table.rows}
    # No overlap: GalioT decodes everything; strict SIC may still drop a
    # frame (it stops at the first failure even for disjoint packets in
    # one segment — part of why it is the strawman).
    assert by_overlap[0.0][2] == by_overlap[0.0][3]
    assert by_overlap[0.0][1] >= by_overlap[0.0][3] - 2
    # Full overlap (the paper's case): GalioT >= SIC.
    assert by_overlap[1.0][2] >= by_overlap[1.0][1]
    # GalioT never loses to SIC at any overlap.
    for row in table.rows:
        assert row[2] >= row[1], row
