"""Ablation — Sec. 4 edge-vs-cloud split of detected segments."""

from repro.experiments import format_table, run_edge_cloud


def test_edge_cloud_split(once):
    table = once(run_edge_cloud, rounds=2)
    print()
    print(format_table(table))
    segments, edge_only, shipped, edge_frames = table.rows[0]
    assert segments >= 2
    assert edge_only + shipped == segments
    # Clean single-technology segments resolve locally; collisions ship.
    assert edge_frames >= 1
    assert shipped >= 1
