"""Streaming front — chunked throughput with the stage breakdown.

Runs the same multi-packet scene through the monolithic gateway and the
chunked :class:`~repro.gateway.streaming.StreamingGateway`, asserts the
totals are identical (the streaming front's contract), and prints the
telemetry stage breakdown plus the realtime throughput margin.
"""

import numpy as np

from repro.gateway import GalioTGateway, StreamingGateway, iter_chunks
from repro.net.scene import SceneBuilder
from repro.phy import create_modem
from repro.telemetry import Telemetry, format_snapshot

FS = 1e6
CHUNK = 262_144  # one RTL-SDR USB buffer's worth of complex samples


def _scene(rng):
    modems = [create_modem(n) for n in ("lora", "xbee", "zwave")]
    builder = SceneBuilder(FS, 1.0)
    for i, (modem, start) in enumerate(
        zip(modems * 2, (40_000, 200_000, 360_000, 520_000, 680_000, 840_000))
    ):
        builder.add_packet(
            modem, f"bench-{i}".encode(), start, 12, rng, snr_mode="capture"
        )
    capture, truth = builder.render(rng)
    return modems, capture, truth


def test_streaming_throughput(once):
    rng = np.random.default_rng(0xC0FFEE)
    modems, capture, truth = _scene(rng)
    noise = (
        rng.normal(size=200_000) + 1j * rng.normal(size=200_000)
    ) * np.sqrt(truth.noise_power / 2)

    probe = GalioTGateway(modems, FS, use_edge=False)
    threshold = probe.detector.calibrate(noise)
    mono = GalioTGateway(modems, FS, use_edge=False, threshold=threshold)
    reference = mono.process(capture)

    telemetry = Telemetry()
    gateway = GalioTGateway(
        modems, FS, use_edge=False, threshold=threshold, telemetry=telemetry
    )
    stream = StreamingGateway(gateway)

    merged = once(
        stream.process_stream, iter_chunks(capture, CHUNK)
    )

    # The streaming contract: identical events, segments and bits.
    assert [e.index for e in merged.events] == [
        e.index for e in reference.events
    ]
    assert [(s.start, s.length) for s in merged.segments] == [
        (s.start, s.length) for s in reference.segments
    ]
    assert merged.shipped_bits == reference.shipped_bits
    assert merged.raw_bits == reference.raw_bits

    snapshot = telemetry.snapshot()
    chunk_timer = snapshot["timers"]["stream.chunk.seconds"]
    assert chunk_timer["count"] == -(-len(capture) // CHUNK)
    assert chunk_timer["total_s"] > 0
    processed_s = len(capture) / FS
    busy_s = chunk_timer["total_s"] + snapshot["timers"][
        "stream.finalize.seconds"
    ]["total_s"]
    print()
    print(
        f"streamed {len(capture)} samples ({processed_s:.2f} s of air) in "
        f"{busy_s:.3f} s -> {processed_s / busy_s:.2f}x realtime, "
        f"{len(merged.events)} events, {len(merged.segments)} segments, "
        f"{merged.backhaul_saving:.1f}x backhaul saving"
    )
    print(format_snapshot(snapshot))
