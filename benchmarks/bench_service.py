#!/usr/bin/env python
"""Ingestion-service throughput and latency under fleet-scale load.

Offers a simulated 10^6-device, three-tenant workload (Poisson
superposition over :class:`~repro.net.traffic.DutyCycleProfile`
populations) to the :class:`~repro.service.IngestionService` and
records, per worker-pool size:

* sustained decoded segments/sec over the whole run;
* p50/p99 ingest-to-decode latency;
* the deterministic admission ledger — and an A/B pair with admission
  control on vs. off, so the shedding policy's effect on tail latency
  is visible in one file.

Two same-seed runs must produce identical
accepted/rejected/quarantined/decoded ledgers (asserted below: the
service's control plane runs on modeled time, so the ledger cannot
depend on host speed). Wall-clock numbers are whatever this machine
produced — ``cpu_count`` is in the JSON and ``underprovisioned`` flags
runs where the sweep outgrew the host.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py          # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cloud import ParallelCloudService  # noqa: E402
from repro.net.traffic import DutyCycleProfile  # noqa: E402
from repro.phy import create_modem  # noqa: E402
from repro.service import (  # noqa: E402
    AdmissionController,
    AdmissionPolicy,
    AutoscalePolicy,
    AutoscalerModel,
    IngestionService,
    TenantQuota,
    TenantWorkload,
    generate_workload,
    offered_rate_hz,
)
from repro.types import Segment  # noqa: E402

FS = 250e3
DEVICES = 1_000_000


def build_workloads(devices: int) -> list[TenantWorkload]:
    """Three tenants sharing the fleet (LoRa-heavy, like the paper)."""
    return [
        TenantWorkload(
            "metering", "eu868",
            DutyCycleProfile("lora", int(devices * 0.6), 0.001, 12),
        ),
        TenantWorkload(
            "sensors", "us915",
            DutyCycleProfile("xbee", int(devices * 0.3), 0.005, 16),
        ),
        TenantWorkload(
            "alarms", "eu868",
            DutyCycleProfile("zwave", int(devices * 0.1), 0.0005, 10),
        ),
    ]


def make_admission() -> AdmissionController:
    """The bench's admission arm: per-tenant quotas + backlog bound."""
    return AdmissionController(
        AdmissionPolicy(
            default_quota=TenantQuota(rate_hz=2000.0, burst=48),
            drain_rate_hz=5000.0,
            max_backlog=256,
        )
    )


def run_once(
    arrivals: list,
    modems: list,
    workers: int,
    admission: bool,
    executor: str,
) -> dict:
    """One service run; returns the row dict (ledger + wall metrics)."""
    if workers > 0:
        policy = AutoscalePolicy(min_workers=workers, max_workers=workers)
    else:
        policy = AutoscalePolicy()
    warmup = Segment(
        start=0,
        samples=np.zeros(4096, dtype=complex) + 1e-6,
        sample_rate=FS,
    )
    with ParallelCloudService(
        modems, FS, workers=max(policy.max_workers, 1), executor=executor
    ) as farm:
        # Touch every worker once so pool spin-up and module import cost
        # is not billed to the measured run.
        for _ in range(max(policy.max_workers, 1)):
            farm.submit(warmup)
        farm.drain()
        farm.stats = type(farm.stats)()
        service = IngestionService(
            farm,
            admission=make_admission() if admission else None,
            autoscaler=AutoscalerModel(policy=policy),
        )
        t0 = time.perf_counter()
        report = service.run(arrivals)
        elapsed = time.perf_counter() - t0
    return {
        "workers": workers if workers > 0 else "auto",
        "admission": admission,
        "seconds": elapsed,
        "segments_per_sec": report.sustained_rate_hz,
        "latency_p50_ms": report.latency_percentile(50) * 1e3,
        "latency_p99_ms": report.latency_percentile(99) * 1e3,
        "peak_workers": report.peak_workers,
        "scale_events": report.scale_events,
        "ledger": report.ledger.as_dict(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny stream + 1-2 workers: CI plumbing check, not a "
        "measurement",
    )
    parser.add_argument(
        "--workers", type=int, nargs="*", default=None,
        help="fixed pool sizes to sweep (default: 1 2 4, smoke: 1 2)",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="arrival-stream budget (default: 120, smoke: 12)",
    )
    parser.add_argument(
        "--executor", choices=["process", "thread"], default="thread",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_service.json"),
    )
    args = parser.parse_args(argv)
    n_requests = args.requests or (12 if args.smoke else 120)
    worker_counts = args.workers or ([1, 2] if args.smoke else [1, 2, 4])

    workloads = build_workloads(DEVICES)
    modems = [
        create_modem(w.profile.technology) for w in workloads
    ]
    offered = offered_rate_hz(
        workloads, {m.name: m for m in modems}
    )
    cpu_count = os.cpu_count() or 1
    underprovisioned = cpu_count < max(worker_counts)
    rng = np.random.default_rng(0xC0FFEE)
    arrivals = generate_workload(
        workloads, FS, 30.0, rng, max_requests=n_requests
    )
    print(
        f"fleet: {DEVICES:,} devices, offered {offered:,.0f} seg/s "
        f"(modeled); drawn {len(arrivals)} arrivals, cpu_count={cpu_count}"
    )
    if underprovisioned:
        print(
            f"WARNING: cpu_count={cpu_count} < max workers "
            f"{max(worker_counts)} — scaling numbers below are "
            "scheduling noise; rerun on a bigger box",
            file=sys.stderr,
        )

    # Determinism gate: two same-seed runs, identical ledgers. This is
    # the acceptance bar for the whole service tier and what the CI
    # smoke job asserts under GALIOT_SANITIZE=raise.
    ledger_a = run_once(
        arrivals, modems, worker_counts[0], True, args.executor
    )["ledger"]
    ledger_b = run_once(
        arrivals, modems, worker_counts[0], True, args.executor
    )["ledger"]
    deterministic = ledger_a == ledger_b
    print(f"determinism: same-seed ledgers identical={deterministic}")

    rows = []
    for admission in (True, False):
        for workers in worker_counts:
            row = run_once(
                arrivals, modems, workers, admission, args.executor
            )
            rows.append(row)
            ledger = row["ledger"]
            print(
                f"w={row['workers']!s:<4} admission={str(admission):<5} : "
                f"{row['seconds']:6.2f} s  "
                f"{row['segments_per_sec']:6.2f} seg/s  "
                f"p50 {row['latency_p50_ms']:8.2f} ms  "
                f"p99 {row['latency_p99_ms']:8.2f} ms  "
                f"({ledger['accepted']}/{ledger['offered']} admitted, "
                f"{ledger['decoded_segments']} decoded)"
            )
    # One adaptive row showing the autoscaler's trace.
    adaptive = run_once(arrivals, modems, 0, True, args.executor)
    rows.append(adaptive)
    print(
        f"w=auto admission=True  : {adaptive['seconds']:6.2f} s  "
        f"{adaptive['segments_per_sec']:6.2f} seg/s  "
        f"peak={adaptive['peak_workers']} "
        f"({adaptive['scale_events']} scale events)"
    )

    payload = {
        "bench": "service",
        "schema": 2,
        "smoke": bool(args.smoke),
        "cpu_count": cpu_count,
        "underprovisioned": underprovisioned,
        "devices": DEVICES,
        "tenants": [w.tenant for w in workloads],
        "offered_rate_hz": offered,
        "n_requests": len(arrivals),
        "executor": args.executor,
        "deterministic_ledger": deterministic,
        "runs": rows,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not deterministic:
        print(
            "ERROR: same-seed runs produced different ledgers",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
