#!/usr/bin/env python
"""Per-modem PHY fast-path benchmark: vectorized kernels vs legacy loops.

For every implemented technology this script times ``demodulate`` (serial
walk) and ``demodulate_many`` (batch API) on a fixture of clean
native-rate frames, A/B-ing ``GALIOT_BACKEND=numpy`` (vectorized
kernels, the default) against ``GALIOT_BACKEND=off`` (the historical
per-element loops), and asserts the decode results are identical in the
reference profile. It then measures the end-to-end serial cloud decode
A/B on the same fixture batch ``bench_cloud_scaling.py`` uses, and
finally runs the opt-in ``complex64`` fast profile, recording its
speedup *and* its accuracy cost (per-modem decode agreement plus the
worst-case derotation kernel error) — the evidence gating that profile.

Like ``bench_cloud_scaling.py`` this is a standalone script emitting a
machine-readable ``BENCH_phy.json`` so successive PRs accumulate a
trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_phy.py          # full
    PYTHONPATH=src python benchmarks/bench_phy.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_cloud_scaling import build_segments, run_serial  # noqa: E402

from repro.dsp.backend import derotate, set_backend  # noqa: E402
from repro.phy import create_modem  # noqa: E402
from repro.phy.base import FrameResult, Modem  # noqa: E402

#: The six PHY families (oqpsk154 is the base PHY that thread /
#: wirelesshart / weightless ride).
MODEM_NAMES = ["lora", "xbee", "zwave", "ble", "sigfox", "oqpsk154"]


def build_buffers(
    modem: Modem, n_frames: int, payload_len: int, rng: np.random.Generator
) -> tuple[list[np.ndarray], list[bytes]]:
    """Clean native-rate frames with leading/trailing noise padding."""
    payload_len = min(payload_len, modem.max_payload)
    buffers: list[np.ndarray] = []
    payloads: list[bytes] = []
    for i in range(n_frames):
        payload = bytes((i + j) % 256 for j in range(payload_len))
        wave = modem.modulate(payload)
        pad = max(int(2e-3 * modem.sample_rate), 16)
        buf = np.zeros(pad + len(wave) + pad, dtype=complex)
        buf[pad : pad + len(wave)] = wave
        buf += 0.01 * (
            rng.normal(size=len(buf)) + 1j * rng.normal(size=len(buf))
        )
        buffers.append(buf)
        payloads.append(payload)
    return buffers, payloads


def _key(frame: FrameResult | None) -> tuple | None:
    """Comparison key: the decode outcome, not float score dust."""
    if frame is None:
        return None
    return (bytes(frame.payload), bool(frame.crc_ok), int(frame.start))


def time_modem(
    modem: Modem, buffers: list[np.ndarray]
) -> tuple[float, float, list]:
    """(serial_seconds, batch_seconds, decode_keys) for one profile."""
    modem.demodulate_many(buffers[:1])  # warm the sync-reference cache
    t0 = time.perf_counter()
    serial = modem.demodulate_many(buffers)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch = modem.demodulate_many(buffers)
    t_batch = time.perf_counter() - t0
    keys = [_key(f) for f in serial]
    assert keys == [_key(f) for f in batch], (
        f"{modem.name}: batch decode diverged from serial"
    )
    return t_serial, t_batch, keys


def derotate_fast_error() -> float:
    """Worst-case |Δ| of the complex64 derotation vs complex128."""
    rng = np.random.default_rng(7)
    iq = rng.normal(size=4096) + 1j * rng.normal(size=4096)
    set_backend("numpy")
    ref = derotate(iq, 1234.5, 1e6)
    set_backend("fast")
    try:
        fast = derotate(iq, 1234.5, 1e6)
    finally:
        set_backend("numpy")
    return float(np.max(np.abs(ref - fast)))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny fixture: CI plumbing/equivalence check, not a measurement",
    )
    parser.add_argument("--frames", type=int, default=None)
    parser.add_argument("--out", type=Path, default=Path("BENCH_phy.json"))
    args = parser.parse_args(argv)
    n_frames = args.frames or (2 if args.smoke else 6)
    payload_len = 6 if args.smoke else 12
    n_segments = 2 if args.smoke else 8

    rng = np.random.default_rng(0xBEEF)
    fixtures = {}
    for name in MODEM_NAMES:
        modem = create_modem(name)
        buffers, payloads = build_buffers(modem, n_frames, payload_len, rng)
        fixtures[name] = (modem, buffers, payloads)

    modem_rows: dict[str, dict] = {}
    equivalence_ok = True
    for name, (modem, buffers, payloads) in fixtures.items():
        set_backend("numpy")
        t_on, t_batch_on, keys_on = time_modem(modem, buffers)
        set_backend("off")
        try:
            t_off, t_batch_off, keys_off = time_modem(modem, buffers)
        finally:
            set_backend("numpy")
        decoded = sum(
            1
            for key, payload in zip(keys_on, payloads)
            if key is not None and key[0] == payload and key[1]
        )
        identical = keys_on == keys_off
        equivalence_ok = equivalence_ok and identical
        set_backend("fast")
        try:
            t_fast, _t_batch_fast, keys_fast = time_modem(modem, buffers)
        finally:
            set_backend("numpy")
        agreement = sum(
            1 for a, b in zip(keys_on, keys_fast) if a == b
        ) / max(len(keys_on), 1)
        modem_rows[name] = {
            "n_frames": n_frames,
            "payload_len": min(payload_len, modem.max_payload),
            "decoded_ok": decoded,
            "serial": {
                "backend_on_s": t_on,
                "backend_off_s": t_off,
                "speedup": t_off / t_on if t_on > 0 else float("nan"),
            },
            "batch": {
                "backend_on_s": t_batch_on,
                "backend_off_s": t_batch_off,
                "speedup": (
                    t_batch_off / t_batch_on
                    if t_batch_on > 0
                    else float("nan")
                ),
            },
            "frames_per_sec_on": n_frames / t_on if t_on > 0 else 0.0,
            "identical_on_off": identical,
            "fast_profile": {
                "seconds": t_fast,
                "speedup_vs_reference": (
                    t_on / t_fast if t_fast > 0 else float("nan")
                ),
                "decode_agreement": agreement,
            },
        }
        print(
            f"{name:<9s}: on {t_on:6.3f}s  off {t_off:6.3f}s "
            f"({t_off / t_on:4.2f}x)  fast {t_fast:6.3f}s  "
            f"decoded {decoded}/{n_frames}  identical={identical} "
            f"fast-agreement={agreement:.2f}"
        )
        if decoded != n_frames:
            print(
                f"WARNING: {name} decoded {decoded}/{n_frames} fixture "
                "frames — the A/B still compares like with like, but "
                "the fixture should be clean",
                file=sys.stderr,
            )

    # End-to-end serial cloud decode A/B on the scaling-bench fixture.
    e2e_rng = np.random.default_rng(0xC0FFEE)
    modems, segments = build_segments(n_segments, payload_len, e2e_rng)
    set_backend("numpy")
    ref_results, _stats, _warm = run_serial(modems, segments)
    _r, _s, t_e2e_on = run_serial(modems, segments)
    set_backend("off")
    try:
        off_results, _stats2, t_e2e_off = run_serial(modems, segments)
    finally:
        set_backend("numpy")
    e2e_identical = off_results == ref_results
    equivalence_ok = equivalence_ok and e2e_identical
    print(
        f"end-to-end: on {t_e2e_on:6.3f}s ({n_segments / t_e2e_on:.3f} "
        f"seg/s)  off {t_e2e_off:6.3f}s "
        f"({n_segments / t_e2e_off:.3f} seg/s)  "
        f"speedup {t_e2e_off / t_e2e_on:.2f}x  identical={e2e_identical}"
    )

    payload = {
        "bench": "phy",
        "schema": 1,
        "smoke": bool(args.smoke),
        "modems": modem_rows,
        "end_to_end": {
            "n_segments": n_segments,
            "backend_on": {
                "seconds": t_e2e_on,
                "segments_per_sec": n_segments / t_e2e_on,
            },
            "backend_off": {
                "seconds": t_e2e_off,
                "segments_per_sec": n_segments / t_e2e_off,
            },
            "speedup": t_e2e_off / t_e2e_on,
            "identical": e2e_identical,
        },
        "fast_profile": {
            "note": (
                "complex64 kernels are opt-in (GALIOT_BACKEND=fast); "
                "decode_agreement per modem and the derotation error "
                "below are the accuracy evidence gating that profile"
            ),
            "derotate_max_abs_err": derotate_fast_error(),
        },
        "equivalence_ok": equivalence_ok,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not equivalence_ok:
        print(
            "ERROR: backend-on/off decode results diverged",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
