"""T1 — regenerate Table 1 from the technology registry."""

from repro.experiments import format_table, run_table1


def test_table1(once):
    table = once(run_table1)
    print()
    print(format_table(table))
    # Shape assertions: the paper's rows, in order.
    technologies = [row[0] for row in table.rows]
    assert technologies[:4] == ["LoRa", "Z-Wave", "XBee", "BLE"]
    assert len(table.rows) == 11
    implemented = [row for row in table.rows if row[4] == "yes"]
    assert len(implemented) >= 8
