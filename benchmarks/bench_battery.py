"""The paper's motivation, quantified: collisions -> retransmissions ->
battery drain, and what joint decoding buys back."""

from repro.experiments import format_table
from repro.experiments.battery import run_battery


def test_battery_drain(once):
    table = once(run_battery, rounds=2)
    print()
    print(format_table(table))
    rows = {row[0]: row for row in table.rows}
    sic, galiot = rows["sic"], rows["galiot"]
    # GalioT delivers at least as many frames from the same traffic...
    assert galiot[1] >= sic[1]
    # ...with no more transmissions per delivery...
    assert galiot[3] <= sic[3] + 1e-9
    # ...and spends no more energy per delivered bit.
    assert galiot[4] <= sic[4] + 1e-9
