"""Universal-preamble growth — the Sec. 7 future-work question."""

from repro.experiments.growth import run_universal_growth
from repro.experiments import format_table


def test_universal_growth(once):
    table = once(run_universal_growth, trials=2)
    print()
    print(format_table(table))
    rows = {row[0]: row for row in table.rows}
    # The trio's packets are all detectable while only the trio is
    # registered...
    assert rows[3][2] >= rows[3][3] - 1
    # ...and adding unrelated technologies never *increases* detection
    # of the same traffic.
    assert rows[6][2] <= rows[3][2]
    # Groups grow with the registry (no spurious coalescing).
    assert rows[6][1] > rows[3][1]
