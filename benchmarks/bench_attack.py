#!/usr/bin/env python
"""Adversarial robustness: per-scenario survival and acceptance hygiene.

Runs every named :data:`~repro.net.adversary.ATTACK_SCENARIOS` scenario
through :func:`~repro.net.attackdrill.run_attack_drill` — one clean
baseline plus one attacked, hardened pass each — and records, per
scenario:

* **survival** — fraction of baseline frames still accepted (gate:
  >= 95 %, same bar the ``galiot attack`` CLI enforces);
* **false-decode rate** — accepted frames matching no honest
  transmission (gate: <= 1 %);
* **replay accepts** — replayed frames accepted beyond the legitimate
  original (gate: 0);
* **detection latency** — first jammer on-air to first jamming event.

The ``none`` scenario doubles as the overhead probe: the same scene is
also run with the hardening layer disabled, and the wall-clock delta is
the price of the jamming detector + decode guard + resilient backhaul
on clean air (recorded, machine-dependent; correctness gate is that the
accepted frame sets are identical).

Like ``bench_resilience.py`` this is a standalone script emitting a
machine-readable ``BENCH_attack.json`` so successive PRs accumulate a
trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_attack.py          # full
    PYTHONPATH=src python benchmarks/bench_attack.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.net.adversary import ATTACK_SCENARIOS  # noqa: E402
from repro.net.attackdrill import run_attack_drill  # noqa: E402

SEED = 0xC0FFEE
SURVIVAL_FLOOR = 0.95
FALSE_DECODE_CEILING = 0.01


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="short scene, jam/replay scenarios only: CI plumbing check",
    )
    parser.add_argument("--packets", type=int, default=None)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--out", type=Path, default=Path("BENCH_attack.json"))
    args = parser.parse_args(argv)
    n_packets = args.packets or (16 if args.smoke else 48)
    duration_s = args.duration or (0.8 if args.smoke else 2.0)
    scenarios = (
        ("none", "pulse_jam", "replay") if args.smoke else ATTACK_SCENARIOS
    )

    print(
        f"fixture: {n_packets} packets / {duration_s:.2f} s capture, "
        f"seed {args.seed:#x}, cpu_count={os.cpu_count()}"
    )

    rows = []
    failed = []
    t_none_hardened = None
    for scenario in scenarios:
        t0 = time.perf_counter()
        report = run_attack_drill(
            scenario,
            seed=args.seed,
            duration_s=duration_s,
            packets=n_packets,
        )
        elapsed = time.perf_counter() - t0
        if scenario == "none":
            t_none_hardened = elapsed
        ok = report.passed(
            survival_floor=SURVIVAL_FLOOR,
            false_decode_ceiling=FALSE_DECODE_CEILING,
        )
        if not ok:
            failed.append(scenario)
        latency = report.detection_latency_s
        rows.append(
            {
                "scenario": scenario,
                "seconds": elapsed,
                "baseline_frames": report.baseline_frames,
                "accepted_frames": report.accepted_frames,
                "survival": report.survival,
                "false_decode_rate": report.false_decode_rate,
                "false_decodes": report.false_decodes,
                "replay_accepts": report.replay_accepts,
                "replays_rejected": report.guard.replays_rejected,
                "jamming_events": report.jamming_events,
                "detection_latency_s": latency,
                "degraded_segments": report.degraded_segments,
                "dropped_segments": report.dropped_segments,
                "passed": ok,
            }
        )
        latency_str = (
            "-" if latency is None
            else "undetected" if latency == float("inf")
            else f"{latency * 1e3:6.1f} ms"
        )
        print(
            f"{scenario:10s}: {elapsed:6.2f} s  "
            f"survival {report.survival * 100:5.1f} %  "
            f"false {report.false_decode_rate * 100:.2f} %  "
            f"replay_accepts {report.replay_accepts}  "
            f"latency {latency_str}  "
            f"{'ok' if ok else 'FAIL'}"
        )

    # Overhead probe: same clean scene, hardening layer off. Reusing
    # the root seed is deliberate — the A/B needs the bit-identical
    # capture, not an independent draw.
    t0 = time.perf_counter()
    unhardened = run_attack_drill(  # noqa: GL104
        "none",
        seed=args.seed,
        duration_s=duration_s,
        packets=n_packets,
        hardened=False,
    )
    t_none_plain = time.perf_counter() - t0
    hardened_none = next(r for r in rows if r["scenario"] == "none")
    overhead = (
        (t_none_hardened - t_none_plain) / t_none_plain
        if t_none_plain
        else 0.0
    )
    identical = (
        hardened_none["accepted_frames"] == unhardened.accepted_frames
        and hardened_none["survival"] == unhardened.survival
    )
    if not identical:
        failed.append("none-overhead")
    print(
        f"clean-air overhead: {overhead * 100:+.2f} % "
        f"(hardened {t_none_hardened:.2f} s vs plain {t_none_plain:.2f} s), "
        f"identical={identical}"
    )

    payload = {
        "bench": "attack",
        "schema": 1,
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "seed": args.seed,
        "n_packets": n_packets,
        "duration_s": duration_s,
        "gates": {
            "survival_floor": SURVIVAL_FLOOR,
            "false_decode_ceiling": FALSE_DECODE_CEILING,
            "replay_ceiling": 0,
        },
        "scenarios": rows,
        "overhead": {
            "hardened_seconds": t_none_hardened,
            "plain_seconds": t_none_plain,
            "overhead_fraction": overhead,
            "identical_to_plain": identical,
        },
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if failed:
        print(f"GATE FAILURES: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
